//! `diffcond` — serve differential-constraint implication queries over a
//! line-oriented protocol (one request per line on stdin, one machine-readable
//! response per line on stdout).
//!
//! See `diffcon_engine::protocol` for the full request/response grammar,
//! including the `session new/use/close/list` verbs that manage multiple
//! independent sessions in one process.
//!
//! ```text
//! Usage: diffcond [--answer-cache N] [--lattice-cache N] [--prop-cache N]
//!                 [--bound-cache N] [--cache-shards N] [--lattice-budget N]
//!                 [--bound-budget N] [--threads N] [--slow-query-us N]
//!                 [--profile] [--profile-hz N] [--help]
//!        diffcond serve [--addr HOST:PORT] [--max-conns N]
//!                       [--max-request-bytes N] [--metrics-addr HOST:PORT]
//!                       [same engine flags]
//!        diffcond top [--metrics-addr HOST:PORT] [--interval-ms N] [--once]
//!        diffcond check FILE...
//! ```
//!
//! `diffcond check` lints protocol scripts without executing them: each
//! file is parsed line by line with the protocol's own parser and run
//! through the flow-sensitive script linter (`diffcon_analyze::script`),
//! which simulates session-registry state and reports requests that would
//! fail or mislead at run time as `file:line:col: warn|error: message`
//! diagnostics.  Exits nonzero when any file has an error-severity finding.
//!
//! `diffcond serve` serves the identical protocol over TCP
//! (`diffcon_engine::net`): one connection = one private session namespace,
//! newline framing with a per-request length limit, error replies for
//! malformed frames, and a concurrent-connection admission cap.  With
//! `--metrics-addr HOST:PORT` a second listener serves the process-wide
//! engine metrics (`diffcon_engine::EngineMetrics`) as Prometheus text
//! exposition plus operational endpoints, routed by path
//! (`diffcon_engine::metrics::http_routes`): `/metrics` for the scrape,
//! `/healthz` for a liveness probe, `/buildinfo` for the build stamp, and
//! `/profile?seconds=S` for an on-demand CPU profile in collapsed-stack
//! form.  With `--slow-query-us N`, queries whose evaluation takes at least
//! `N` microseconds are logged to stderr with their reconstructed request
//! line (applies to `serve` and `--threads` pipelined serving; the stderr
//! log is token-bucket rate limited, with drops counted in `stats`).  With
//! `--profile`, the cooperative CPU sampler (`diffcon_obs::profile`) runs
//! continuously at `--profile-hz` (default 97) and the sampled stacks are
//! published on the metrics endpoint and the `debug profile dump` verb.
//!
//! `diffcond top` is the matching client-side dashboard: it polls a
//! `--metrics-addr` exposition endpoint and renders request/stage/cost
//! summaries — including the per-session and per-connection attribution
//! series — refreshing in place every `--interval-ms` (or printing one
//! snapshot with `--once`).
//!
//! With `--threads N` (N > 1) the server scans requests serially but
//! evaluates the read-only query verbs (`implies`, `batch`, `bound`,
//! `witness`, `derive`) concurrently on a pool of `N` workers, each against
//! the session snapshot captured at its position in the request order —
//! answers are identical to serial execution, replies stay in input order,
//! and interleaved traffic against multiple sessions overlaps.  Replies are
//! released in waves (at 256 pending queries, at `stats`/`quit`, and at end
//! of input), so `--threads` suits piped workloads where the request stream
//! does not wait on individual replies; a strict request/response client
//! must use the default serial mode (or send `stats` to force a flush).

use diffcon_engine::{Pipeline, Server, SessionConfig};
use std::io::{BufRead, Write};

const USAGE: &str = "\
diffcond — differential-constraint implication server

Reads one request per line from stdin, writes one response per line to stdout.
Start with `universe <n>` (or `universe <name>...`), then `assert`, `implies`,
`batch`, `witness`, `derive`, `explain`, `analyze`, `known`, `forget`,
`bound`, `load`, `mine`, `adopt`, `dataset`, `premises`, `knowns`, `stats`,
`reset`, `help`, `quit`.
Multiple independent sessions: `session new`, `session use <id>`,
`session close [<id>]`, `session list`.

Options:
  --answer-cache N    bound on memoized query answers     (default 65536)
  --lattice-cache N   bound on memoized goal lattices     (default 4096)
  --prop-cache N      bound on memoized translations      (default 4096)
  --bound-cache N     bound on memoized bound intervals   (default 4096)
  --cache-shards N    shards per concurrent cache         (default 16)
  --intern-limit N    distinct constraints kept before the intern table is
                      compacted                           (default 262144)
  --lattice-budget N  max lattice-procedure cost before a query is routed
                      to the SAT procedure                (default 4194304)
  --bound-budget N    max bound-derivation cost before a bound query is
                      routed to the sound relaxation      (default 67108864)
  --threads N         worker threads evaluating read-only queries
                      concurrently against their snapshots (default 1:
                      classic serial line-by-line serving; under `serve`,
                      per connection)
  --slow-query-us N   log queries whose evaluation takes at least N µs to
                      stderr, with their reconstructed request line
                      (pipelined serving only: `serve` or `--threads` > 1;
                      rate limited to 8 lines/s with bursts of 8; drops are
                      counted in `stats` as slow_log_dropped; default: off)
  --profile           run the cooperative CPU sampler continuously; sampled
                      stage stacks surface in `debug profile dump`, the
                      metrics exposition, and /profile (default: off)
  --profile-hz N      sampling rate for --profile and `debug profile start`
                      (default 97, max 1000)
  --help              print this text

Network serving:
  diffcond serve [--addr HOST:PORT] [--max-conns N] [--max-request-bytes N]
                 [--reactors N] [--binary] [--metrics-addr HOST:PORT]
                 [engine flags as above]

  Serves the same line protocol over TCP: each connection gets a private
  session namespace (all slots close on disconnect), requests are
  newline-framed with a per-request byte limit (oversized or non-UTF-8
  lines get `err` replies, never a dropped connection), and at most
  --max-conns connections are admitted at once.  Connections are served by
  --reactors readiness-driven event-loop threads (nonblocking sockets over
  epoll), not a thread per connection.  With --binary, a connection whose
  first bytes are the binary magic switches to the compact length-prefixed
  framing (see the protocol docs); everything else stays line-framed.
  Defaults: --addr 127.0.0.1:7878, --max-conns 64,
  --max-request-bytes 65536, --reactors 1.

  With --metrics-addr a second listener serves GETs routed by path:
    /metrics    Prometheus text exposition: request/reply/connection
                counters, per-stage latency summaries, per-route planner
                latency, cache counters, per-session and per-connection
                cost attribution, allocation accounting, and sampled
                profile stacks
    /healthz    liveness probe (200 `ok queue_depth=N`)
    /buildinfo  name, version, and build flavor
    /profile    profile the process for ?seconds=S (default 2, max 30) at
                ?hz=N and return flamegraph-collapsed stacks

Script linting:
  diffcond check FILE...

  Parses each protocol script with the server's own parser and lints it
  without executing anything: use of mine/adopt/dataset before load,
  forget of never-set knowns, session use/close of unknown slots,
  duplicate and redundant asserts, mining past the wedge thresholds, and
  dead lines after quit.  Diagnostics print as
  `file:line:col: warn|error: message`; the exit status is nonzero when
  any error-severity diagnostic was reported.

Live dashboard:
  diffcond top [--metrics-addr HOST:PORT] [--interval-ms N] [--once]

  Polls the Prometheus exposition a `diffcond serve --metrics-addr`
  process publishes and renders totals, per-stage p50/p99 latencies, the
  busiest sessions and connections by attributed cost, allocation
  accounting (global and per profiling stage), and the hottest sampled
  profile stacks when the server runs with --profile.  Refreshes in place
  every --interval-ms (default 1000); with --once, prints a single
  snapshot and exits (scriptable).  Default --metrics-addr 127.0.0.1:9100.";

struct Options {
    config: SessionConfig,
    threads: usize,
    slow_query_us: Option<u64>,
    profile: bool,
    profile_hz: u32,
    serve: Option<ServeOptions>,
    top: Option<TopOptions>,
}

struct TopOptions {
    metrics_addr: String,
    interval_ms: u64,
    once: bool,
}

impl Default for TopOptions {
    fn default() -> Self {
        TopOptions {
            metrics_addr: "127.0.0.1:9100".into(),
            interval_ms: 1000,
            once: false,
        }
    }
}

struct ServeOptions {
    addr: String,
    max_connections: usize,
    max_request_bytes: usize,
    metrics_addr: Option<String>,
    reactors: usize,
    binary: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7878".into(),
            max_connections: diffcon_engine::NetConfig::DEFAULT_MAX_CONNECTIONS,
            max_request_bytes: diffcon_engine::protocol::MAX_REQUEST_BYTES,
            metrics_addr: None,
            reactors: 1,
            binary: false,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut config = SessionConfig::default();
    let mut threads = 1usize;
    let mut slow_query_us: Option<u64> = None;
    let mut profile = false;
    let mut profile_hz = 0u32;
    let mut serve: Option<ServeOptions> = None;
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("serve") {
        args.next();
        serve = Some(ServeOptions::default());
    } else if args.peek().map(String::as_str) == Some("top") {
        args.next();
        let mut top = TopOptions::default();
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--metrics-addr" => {
                    top.metrics_addr = args.next().ok_or("--metrics-addr expects HOST:PORT")?;
                }
                "--interval-ms" => {
                    let value = args
                        .next()
                        .ok_or("--interval-ms expects a number of milliseconds")?;
                    let n: u64 = value
                        .parse()
                        .map_err(|_| format!("--interval-ms expects a number, got `{value}`"))?;
                    if n == 0 {
                        return Err("--interval-ms must be at least 1".into());
                    }
                    top.interval_ms = n;
                }
                "--once" => top.once = true,
                "--help" | "-h" => {
                    let _ = writeln!(std::io::stdout(), "{USAGE}");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown `top` option `{other}` (try --help)")),
            }
        }
        return Ok(Options {
            config,
            threads,
            slow_query_us,
            profile,
            profile_hz,
            serve: None,
            top: Some(top),
        });
    }
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => {
                let serve = serve
                    .as_mut()
                    .ok_or("--addr is only valid after the `serve` subcommand")?;
                serve.addr = args.next().ok_or("--addr expects HOST:PORT")?;
            }
            "--metrics-addr" => {
                let serve = serve
                    .as_mut()
                    .ok_or("--metrics-addr is only valid after the `serve` subcommand")?;
                serve.metrics_addr = Some(args.next().ok_or("--metrics-addr expects HOST:PORT")?);
            }
            "--slow-query-us" => {
                let value = args
                    .next()
                    .ok_or("--slow-query-us expects a number of microseconds")?;
                let n: u64 = value
                    .parse()
                    .map_err(|_| format!("--slow-query-us expects a number, got `{value}`"))?;
                slow_query_us = Some(n);
            }
            "--profile" => profile = true,
            "--profile-hz" => {
                let value = args.next().ok_or("--profile-hz expects a sampling rate")?;
                let n: u32 = value
                    .parse()
                    .map_err(|_| format!("--profile-hz expects a number, got `{value}`"))?;
                if n == 0 || n > 1000 {
                    return Err("--profile-hz must be between 1 and 1000".into());
                }
                profile_hz = n;
            }
            "--max-conns" | "--max-request-bytes" | "--reactors" => {
                let target = serve
                    .as_mut()
                    .ok_or_else(|| format!("{flag} is only valid after the `serve` subcommand"))?;
                let value = args
                    .next()
                    .ok_or_else(|| format!("{flag} expects a number"))?;
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("{flag} expects a number, got `{value}`"))?;
                if n == 0 {
                    return Err(format!("{flag} must be at least 1"));
                }
                match flag.as_str() {
                    "--max-conns" => target.max_connections = n,
                    "--max-request-bytes" => target.max_request_bytes = n,
                    _ => target.reactors = n,
                }
            }
            "--binary" => {
                serve
                    .as_mut()
                    .ok_or("--binary is only valid after the `serve` subcommand")?
                    .binary = true;
            }
            "--help" | "-h" => {
                // Ignore write errors (e.g. `diffcond --help | head` closing
                // the pipe early) instead of panicking.
                let _ = writeln!(std::io::stdout(), "{USAGE}");
                std::process::exit(0);
            }
            "--answer-cache" | "--lattice-cache" | "--prop-cache" | "--bound-cache"
            | "--cache-shards" | "--intern-limit" | "--lattice-budget" | "--bound-budget"
            | "--threads" => {
                let value = args
                    .next()
                    .ok_or_else(|| format!("{flag} expects a number"))?;
                let n: u128 = value
                    .parse()
                    .map_err(|_| format!("{flag} expects a number, got `{value}`"))?;
                let as_capacity = |n: u128| -> Result<usize, String> {
                    usize::try_from(n)
                        .map_err(|_| format!("{flag} value {n} does not fit this platform"))
                };
                match flag.as_str() {
                    "--answer-cache" => config.answer_cache_capacity = as_capacity(n)?,
                    "--lattice-cache" => config.lattice_cache_capacity = as_capacity(n)?,
                    "--prop-cache" => config.prop_cache_capacity = as_capacity(n)?,
                    "--bound-cache" => config.bound_cache_capacity = as_capacity(n)?,
                    "--cache-shards" => {
                        let shards = as_capacity(n)?;
                        if shards == 0 {
                            return Err("--cache-shards must be at least 1".into());
                        }
                        config.cache_shards = shards;
                    }
                    "--intern-limit" => config.interner_compaction_threshold = as_capacity(n)?,
                    "--lattice-budget" => config.planner.lattice_budget = n,
                    "--threads" => {
                        let t = as_capacity(n)?;
                        if t == 0 {
                            return Err("--threads must be at least 1".into());
                        }
                        threads = t;
                    }
                    _ => config.planner.bound_budget = n,
                }
            }
            other => return Err(format!("unknown option `{other}` (try --help)")),
        }
    }
    Ok(Options {
        config,
        threads,
        slow_query_us,
        profile,
        profile_hz,
        serve,
        top: None,
    })
}

/// Classic serving loop: one request, one immediate reply.
fn serve_serial(config: SessionConfig) {
    let mut server = Server::new(config);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            // A non-UTF-8 line is a malformed request, not the end of the
            // conversation: the reader already consumed it, so answer
            // `err` and keep serving (the bugfix the fuzz suite pins).
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                if writeln!(out, "err request is not valid UTF-8")
                    .and_then(|_| out.flush())
                    .is_err()
                {
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        let reply = server.handle_line(&line);
        if !reply.text.is_empty()
            && writeln!(out, "{}", reply.text)
                .and_then(|_| out.flush())
                .is_err()
        {
            break;
        }
        if reply.quit {
            break;
        }
    }
}

/// Concurrent serving loop: serial scan, parallel query waves, in-order
/// replies (see `diffcon_engine::server_state::Pipeline`).
fn serve_concurrent(config: SessionConfig, threads: usize, slow_query_us: Option<u64>) {
    let mut pipeline = Pipeline::new(config, threads);
    pipeline.set_slow_query_us(slow_query_us);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let emit = |out: &mut dyn Write, replies: Vec<diffcon_engine::Reply>| -> bool {
        for reply in &replies {
            if !reply.text.is_empty() && writeln!(out, "{}", reply.text).is_err() {
                return false;
            }
        }
        out.flush().is_ok()
    };
    let mut quit = false;
    for line in stdin.lock().lines() {
        let (replies, should_quit) = match line {
            Ok(line) => pipeline.push_line(&line),
            // Same recovery as the serial loop, routed through the queue so
            // the error cannot overtake earlier deferred queries.
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                pipeline.push_reply(diffcon_engine::Reply::err("request is not valid UTF-8"))
            }
            Err(_) => break,
        };
        if !emit(&mut out, replies) {
            return;
        }
        if should_quit {
            quit = true;
            break;
        }
    }
    if !quit {
        let replies = pipeline.finish();
        emit(&mut out, replies);
    }
}

/// Network serving loop: bind, announce on stderr, accept until killed.
/// With `--metrics-addr`, a second listener serves the process-wide engine
/// metrics as Prometheus text exposition on its own thread.
fn serve_net(
    config: SessionConfig,
    threads: usize,
    slow_query_us: Option<u64>,
    options: ServeOptions,
) {
    let net_config = diffcon_engine::NetConfig {
        session: config,
        threads,
        max_connections: options.max_connections,
        max_request_bytes: options.max_request_bytes,
        slow_query_us,
        reactors: options.reactors,
        binary: options.binary,
    };
    let server = match diffcon_engine::NetServer::bind(options.addr.as_str(), net_config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("diffcond: cannot bind {}: {e}", options.addr);
            std::process::exit(1);
        }
    };
    if let Some(metrics_addr) = &options.metrics_addr {
        let metrics_server = match diffcon_obs::TextServer::bind(metrics_addr.as_str()) {
            Ok(metrics_server) => metrics_server,
            Err(e) => {
                eprintln!("diffcond: cannot bind metrics address {metrics_addr}: {e}");
                std::process::exit(1);
            }
        };
        eprintln!(
            "diffcond: metrics on http://{}/metrics (also /healthz /buildinfo /profile)",
            metrics_server.local_addr()
        );
        std::thread::spawn(move || {
            // Scrape-listener failures must never take down the serving
            // loop; the exposition endpoint is best-effort by design.
            let _ = metrics_server.run_routes(diffcon_engine::metrics::http_routes);
        });
    }
    eprintln!(
        "diffcond: serving on {} ({} reactor thread{}, {} worker thread{} per connection, up to {} connections{})",
        server.local_addr(),
        options.reactors,
        if options.reactors == 1 { "" } else { "s" },
        threads,
        if threads == 1 { "" } else { "s" },
        options.max_connections,
        if options.binary {
            ", binary framing enabled"
        } else {
            ""
        }
    );
    if let Err(e) = server.run() {
        eprintln!("diffcond: accept loop failed: {e}");
        std::process::exit(1);
    }
}

/// Live dashboard: poll the exposition endpoint and render cost summaries.
/// `--once` prints a single snapshot and exits; otherwise the terminal is
/// cleared and redrawn every interval until killed.
fn run_top(options: TopOptions) {
    loop {
        let frame = diffcon_obs::fetch(&options.metrics_addr)
            .map_err(|e| format!("cannot scrape {}: {e}", options.metrics_addr))
            .and_then(|text| {
                diffcon_obs::parse_exposition(&text)
                    .map_err(|e| format!("malformed exposition from {}: {e}", options.metrics_addr))
            })
            .map(|series| render_top(&options.metrics_addr, &series));
        match frame {
            Ok(frame) if options.once => {
                print!("{frame}");
                return;
            }
            Ok(frame) => {
                // ANSI clear + home so the dashboard redraws in place.
                print!("\x1b[2J\x1b[H{frame}");
                let _ = std::io::stdout().flush();
            }
            Err(message) if options.once => {
                eprintln!("diffcond: {message}");
                std::process::exit(1);
            }
            // A transient scrape failure must not kill a live dashboard:
            // report it and keep polling.
            Err(message) => eprintln!("diffcond: {message}"),
        }
        std::thread::sleep(std::time::Duration::from_millis(options.interval_ms));
    }
}

/// Formats one dashboard frame from a parsed exposition scrape.
fn render_top(addr: &str, series: &[diffcon_obs::Series]) -> String {
    let find = |name: &str, labels: &[(&str, &str)]| -> Option<f64> {
        series
            .iter()
            .find(|s| {
                s.name == name
                    && labels
                        .iter()
                        .all(|(key, value)| s.labels.iter().any(|(k, v)| k == key && v == value))
            })
            .map(|s| s.value)
    };
    let total = |name: &str| find(name, &[]).unwrap_or(0.0);
    let label_of = |s: &diffcon_obs::Series, key: &str| -> String {
        s.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    };
    let mut out = format!("diffcond top — {addr}\n");
    out.push_str(&format!(
        "requests={} replies={} parse_errors={} connections={} flight_records={} queue_depth={}\n",
        total("diffcond_requests_total"),
        total("diffcond_replies_total"),
        total("diffcond_parse_errors_total"),
        total("diffcond_connections_total"),
        total("diffcond_flight_records_total"),
        total("diffcond_queue_depth"),
    ));
    out.push_str(&format!(
        "bytes read={} written={}\n",
        find("diffcond_bytes_total", &[("direction", "read")]).unwrap_or(0.0),
        find("diffcond_bytes_total", &[("direction", "written")]).unwrap_or(0.0),
    ));
    out.push_str("stage latency us (p50/p99):");
    for stage in ["frame", "queue", "plan", "reply"] {
        let quantile = |q: &str| {
            find(
                "diffcond_stage_latency_us",
                &[("stage", stage), ("quantile", q)],
            )
            .unwrap_or(0.0)
        };
        out.push_str(&format!(
            " {stage} {}/{}",
            quantile("0.5"),
            quantile("0.99")
        ));
    }
    out.push('\n');
    // Reactor panel: readiness-loop health.  Ready-batch size shows how much
    // work each epoll wakeup amortizes; writev bytes per flush shows output
    // coalescing; per-reactor connection counts show accept distribution.
    let reactor_quantile = |name: &str, q: &str| find(name, &[("quantile", q)]).unwrap_or(0.0);
    out.push_str(&format!(
        "reactor wakeups={} ready_batch p50/p99={}/{} writev_bytes p50/p99={}/{}\n",
        total("diffcond_reactor_wakeups_total"),
        reactor_quantile("diffcond_reactor_ready_batch", "0.5"),
        reactor_quantile("diffcond_reactor_ready_batch", "0.99"),
        reactor_quantile("diffcond_reactor_writev_bytes", "0.5"),
        reactor_quantile("diffcond_reactor_writev_bytes", "0.99"),
    ));
    let mut reactors: Vec<(String, f64)> = series
        .iter()
        .filter(|s| s.name == "diffcond_reactor_connections")
        .map(|s| (label_of(s, "reactor"), s.value))
        .collect();
    reactors.sort_by(|a, b| a.0.cmp(&b.0));
    if !reactors.is_empty() {
        out.push_str("reactor connections:");
        for (reactor, conns) in &reactors {
            out.push_str(&format!(" r{reactor}={conns}"));
        }
        out.push('\n');
    }
    // Busiest sessions by attributed query count.
    let mut sessions: Vec<(String, String, f64)> = series
        .iter()
        .filter(|s| s.name == "diffcond_session_queries_total")
        .map(|s| (label_of(s, "conn"), label_of(s, "slot"), s.value))
        .collect();
    sessions.sort_by(|a, b| b.2.total_cmp(&a.2));
    out.push_str("sessions (conn:slot queries decide_us queue_us cache_hits):\n");
    for (conn, slot, queries) in sessions.iter().take(10) {
        let labels = [("conn", conn.as_str()), ("slot", slot.as_str())];
        out.push_str(&format!(
            "  {conn}:{slot}  {queries}  {}  {}  {}\n",
            find("diffcond_session_decide_us_total", &labels).unwrap_or(0.0),
            find("diffcond_session_queue_us_total", &labels).unwrap_or(0.0),
            find("diffcond_session_cache_hits_total", &labels).unwrap_or(0.0),
        ));
    }
    // Busiest connections by attributed request count.
    let mut conns: Vec<(String, f64)> = series
        .iter()
        .filter(|s| s.name == "diffcond_connection_requests_total")
        .map(|s| (label_of(s, "conn"), s.value))
        .collect();
    conns.sort_by(|a, b| b.1.total_cmp(&a.1));
    out.push_str("connections (conn requests bytes_read bytes_written):\n");
    for (conn, requests) in conns.iter().take(10) {
        let read = [("conn", conn.as_str()), ("direction", "read")];
        let written = [("conn", conn.as_str()), ("direction", "written")];
        out.push_str(&format!(
            "  {conn}  {requests}  {}  {}\n",
            find("diffcond_connection_bytes_total", &read).unwrap_or(0.0),
            find("diffcond_connection_bytes_total", &written).unwrap_or(0.0),
        ));
    }
    // Allocation accounting: global op/byte totals, then the stages (beacon
    // tags) charged with the most allocator traffic.
    out.push_str(&format!(
        "alloc ops={}/{} bytes={}/{} (alloc/free)\n",
        find("diffcond_alloc_ops_total", &[("op", "alloc")]).unwrap_or(0.0),
        find("diffcond_alloc_ops_total", &[("op", "free")]).unwrap_or(0.0),
        find("diffcond_alloc_bytes_total", &[("op", "alloc")]).unwrap_or(0.0),
        find("diffcond_alloc_bytes_total", &[("op", "free")]).unwrap_or(0.0),
    ));
    let mut stages: Vec<(String, f64, f64)> = series
        .iter()
        .filter(|s| s.name == "diffcond_stage_allocs_total")
        .map(|s| {
            let stage = label_of(s, "stage");
            let bytes = find(
                "diffcond_stage_alloc_bytes_total",
                &[("stage", stage.as_str())],
            )
            .unwrap_or(0.0);
            (stage, s.value, bytes)
        })
        .collect();
    stages.sort_by(|a, b| b.1.total_cmp(&a.1));
    out.push_str("allocs by stage (stage ops bytes):\n");
    for (stage, ops, bytes) in stages.iter().take(10) {
        out.push_str(&format!("  {stage}  {ops}  {bytes}\n"));
    }
    // Hottest sampled stacks (populated when the server profiles, via
    // --profile or `debug profile start`).
    let mut stacks: Vec<(String, f64)> = series
        .iter()
        .filter(|s| s.name == "diffcond_profile_stack_samples_total")
        .map(|s| (label_of(s, "stack"), s.value))
        .collect();
    stacks.sort_by(|a, b| b.1.total_cmp(&a.1));
    out.push_str(&format!(
        "profile (running={} samples={}):\n",
        total("diffcond_profile_running"),
        total("diffcond_profile_samples_total"),
    ));
    for (stack, count) in stacks.iter().take(10) {
        out.push_str(&format!("  {count}  {stack}\n"));
    }
    out
}

/// Source positions of one script line's verb and first-argument tokens.
fn line_span(line: &str, number: usize) -> diffcon_analyze::Span {
    let indent = line.len() - line.trim_start().len();
    let verb_col = line[..indent].chars().count() + 1;
    let rest = &line[indent..];
    let verb_len = rest.find(char::is_whitespace).unwrap_or(rest.len());
    let after = &rest[verb_len..];
    let arg_col = if after.trim_start().is_empty() {
        verb_col
    } else {
        let arg_offset = indent + verb_len + (after.len() - after.trim_start().len());
        line[..arg_offset].chars().count() + 1
    };
    diffcon_analyze::Span {
        line: number,
        verb_col,
        arg_col,
    }
}

/// The `max |𝒴|` budget a `mine`/`adopt` request resolves to (the miner's
/// crate default when the request names none) — what the linter's wedge
/// checks must judge.
fn resolved_max_rhs(budgets: Option<(usize, usize)>) -> usize {
    budgets
        .map(|(_, rhs)| rhs)
        .unwrap_or(diffcon_discover::MinerConfig::default().max_rhs)
}

/// Maps a parsed protocol request onto the linter's state-machine alphabet
/// (`None` for silent lines).  Kept exhaustive on purpose: a new verb fails
/// to compile until its lint semantics are decided.
fn script_op(request: diffcon_engine::protocol::Request) -> Option<diffcon_analyze::ScriptOp> {
    use diffcon_analyze::ScriptOp;
    use diffcon_engine::protocol::{Request, UniverseSpec};
    Some(match request {
        Request::Empty => return None,
        Request::Universe(UniverseSpec::Size(n)) => ScriptOp::UniverseSize(n),
        Request::Universe(UniverseSpec::Names(names)) => ScriptOp::UniverseNames(names),
        Request::SessionNew => ScriptOp::SessionNew,
        Request::SessionUse(id) => ScriptOp::SessionUse(id),
        Request::SessionClose(id) => ScriptOp::SessionClose(id),
        Request::SessionList => ScriptOp::Global,
        Request::Assert(text) => ScriptOp::Assert(text),
        Request::Retract(text) => ScriptOp::Retract(text),
        Request::Implies(text)
        | Request::Witness(text)
        | Request::Derive(text)
        | Request::Explain(text) => ScriptOp::Goal(text),
        Request::Batch(goals) => ScriptOp::Batch(goals),
        Request::Trace(_) => ScriptOp::Global,
        Request::Known(set, value) => ScriptOp::Known(set, value),
        Request::Forget(set) => ScriptOp::Forget(set),
        Request::Bound(set) => ScriptOp::Bound(set),
        Request::Load(records) => ScriptOp::Load(records),
        Request::Mine(budgets) => ScriptOp::Mine {
            max_rhs: resolved_max_rhs(budgets),
            adopt: false,
        },
        Request::Adopt(budgets) => ScriptOp::Mine {
            max_rhs: resolved_max_rhs(budgets),
            adopt: true,
        },
        Request::Dataset => ScriptOp::Dataset,
        Request::Premises | Request::Knowns | Request::Stats | Request::Analyze { .. } => {
            ScriptOp::Inspect
        }
        Request::StatsRecent
        | Request::DebugRecent(_)
        | Request::DebugTrace(_)
        | Request::DebugProfile(_)
        | Request::Help => ScriptOp::Global,
        Request::Reset => ScriptOp::Reset,
        Request::Quit => ScriptOp::Quit,
    })
}

/// `diffcond check FILE...`: lint protocol scripts without executing them.
/// Exits 0 when every file is error-free, 1 when any error-severity
/// diagnostic was reported, 2 on usage or IO failure.
fn run_check(paths: &[String]) -> ! {
    use diffcon_analyze::{Linter, Severity};
    if paths.is_empty() {
        eprintln!("diffcond: check expects one or more script files (try --help)");
        std::process::exit(2);
    }
    let mut any_error = false;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("diffcond: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        let mut linter = Linter::new();
        for (i, line) in text.lines().enumerate() {
            let number = i + 1;
            if diffcon_engine::protocol::is_silent(line) {
                continue;
            }
            let span = line_span(line, number);
            match diffcon_engine::protocol::parse_request(line) {
                // The parser's own messages already carry offending-token
                // columns; anchor the diagnostic at the verb.
                Err(message) => linter.report(number, span.verb_col, Severity::Error, message),
                Ok(request) => {
                    if let Some(op) = script_op(request) {
                        linter.check(span, &op);
                    }
                }
            }
        }
        any_error |= linter.has_errors();
        for diagnostic in linter.finish() {
            let _ = writeln!(out, "{path}:{diagnostic}");
        }
    }
    let _ = out.flush();
    std::process::exit(if any_error { 1 } else { 0 });
}

fn main() {
    let mut args = std::env::args().skip(1);
    if args.next().as_deref() == Some("check") {
        let paths: Vec<String> = args.collect();
        if paths.iter().any(|p| p == "--help" || p == "-h") {
            let _ = writeln!(std::io::stdout(), "{USAGE}");
            std::process::exit(0);
        }
        run_check(&paths);
    }
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("diffcond: {message}");
            std::process::exit(2);
        }
    };
    if let Some(top) = options.top {
        run_top(top);
        return;
    }
    if options.profile_hz != 0 {
        diffcon_obs::profile::set_default_hz(options.profile_hz);
    }
    if options.profile {
        let hz = diffcon_obs::profile::sampler_start(0);
        eprintln!("diffcond: profiling at {hz} hz (dump with `debug profile dump` or /profile)");
    }
    // The stdin loops and the accept loop both run here; tag the thread so
    // sampled stacks attribute main-thread time to its class.
    diffcon_obs::profile::set_thread_class("main");
    if let Some(serve) = options.serve {
        serve_net(
            options.config,
            options.threads,
            options.slow_query_us,
            serve,
        );
    } else if options.threads > 1 {
        serve_concurrent(options.config, options.threads, options.slow_query_us);
    } else {
        serve_serial(options.config);
    }
}
