//! E1 — Figure 1: cost of producing and verifying explicit derivations with the
//! completeness engine, plus the proof-size count table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diffcon::inference;
use diffcon_bench::workloads;

fn bench_inference(c: &mut Criterion) {
    workloads::table_proof_sizes(&[4, 6, 8]).eprint();

    let mut group = c.benchmark_group("E1_inference");
    group.sample_size(15);
    for &n in &[5usize, 7, 9] {
        let w = workloads::implication_workload(11, n, 5, 8);
        group.bench_with_input(BenchmarkId::new("derive", n), &w, |b, w| {
            b.iter(|| {
                let mut total_size = 0usize;
                for goal in &w.goals {
                    if let Some(proof) = inference::derive(&w.universe, &w.premises, goal) {
                        total_size += proof.size();
                    }
                }
                total_size
            })
        });
        group.bench_with_input(BenchmarkId::new("derive_and_verify", n), &w, |b, w| {
            b.iter(|| {
                let mut verified = 0usize;
                for goal in &w.goals {
                    if let Some(proof) = inference::derive(&w.universe, &w.premises, goal) {
                        proof.verify(&w.universe, &w.premises).unwrap();
                        verified += 1;
                    }
                }
                verified
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
