//! E4 — Proposition 5.5: the coNP frontier.  Compares the lattice procedure and
//! the SAT-backed procedure on DNF-tautology-derived instances (worst case) and
//! contrasts them with the polynomial FD fragment (E9's counterpart).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diffcon::{fd_fragment, implication, prop_bridge};
use diffcon_bench::workloads;
use setlat::Universe;

fn bench_conp_frontier(c: &mut Criterion) {
    workloads::table_procedure_agreement(&[1, 2, 3, 4], 6).eprint();

    let mut group = c.benchmark_group("E4_conp_frontier");
    group.sample_size(15);
    for &n in &[6usize, 9, 12, 15] {
        let universe = Universe::of_size(n);
        let dnf = workloads::covering_dnf(n);
        let (premises, goal) = prop_bridge::dnf_tautology_to_implication(&dnf);
        group.bench_with_input(BenchmarkId::new("tautology_lattice", n), &n, |b, _| {
            b.iter(|| implication::implies(&universe, &premises, &goal))
        });
        group.bench_with_input(BenchmarkId::new("tautology_sat", n), &n, |b, _| {
            b.iter(|| prop_bridge::implies_sat(&universe, &premises, &goal))
        });
    }
    for &n in &[8usize, 16, 32, 48] {
        let w = workloads::fd_chain_workload(n);
        group.bench_with_input(BenchmarkId::new("fd_fragment_poly", n), &w, |b, w| {
            b.iter(|| fd_fragment::implies_polynomial(&w.premises, &w.goals[0]))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conp_frontier);
criterion_main!(benches);
