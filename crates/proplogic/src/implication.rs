//! Implication constraints `X ⇒prop 𝒴` (Definition 5.2 of the paper) and the
//! logical implication problem for them.
//!
//! The implication constraint associated with a differential constraint
//! `X → 𝒴` is the propositional formula `⋀X ⇒ ⋁_{Y ∈ 𝒴} ⋀Y`.  Proposition 5.3
//! states that its negative minset is exactly the lattice decomposition
//! `L(X, 𝒴)`, and Proposition 5.4 that differential implication coincides with
//! logical implication of the translated constraints.
//!
//! Two decision procedures are provided for `Φ ⊨ φ`:
//!
//! * [`crate::minterm::implies_exhaustive`] (re-exported via
//!   [`ImplicationConstraint::implied_by_exhaustive`]) — enumerate all
//!   assignments; the reference implementation;
//! * [`ImplicationConstraint::implied_by_sat`] — refutation via the DPLL
//!   solver: `Φ ⊨ φ` iff `Φ ∧ ¬φ` is unsatisfiable.  This is the procedure whose
//!   scaling the coNP experiments measure.

use crate::cnf::{Clause, Cnf, Lit};
use crate::dpll::DpllSolver;
use crate::formula::Formula;
use crate::minterm;
use setlat::{AttrSet, Family, Universe};

/// An implication constraint `X ⇒prop 𝒴`, denoting `⋀X ⇒ ⋁_{Y∈𝒴} ⋀Y`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ImplicationConstraint {
    /// The antecedent set `X`.
    pub lhs: AttrSet,
    /// The consequent family `𝒴`.
    pub rhs: Family,
}

impl ImplicationConstraint {
    /// Creates the constraint `X ⇒prop 𝒴`.
    pub fn new(lhs: AttrSet, rhs: Family) -> Self {
        ImplicationConstraint { lhs, rhs }
    }

    /// The constraint as a propositional [`Formula`].
    ///
    /// Note the empty family yields the consequent `false` (the empty
    /// disjunction), and an empty member of `𝒴` yields the disjunct `true`
    /// (the empty conjunction) — matching the conventions of the paper.
    pub fn to_formula(&self) -> Formula {
        Formula::implies(
            Formula::conj_of_set(self.lhs),
            Formula::or(self.rhs.iter().map(Formula::conj_of_set)),
        )
    }

    /// Evaluates the constraint under a single assignment.
    pub fn eval(&self, assignment: AttrSet) -> bool {
        !self.lhs.is_subset(assignment) || self.rhs.iter().any(|y| y.is_subset(assignment))
    }

    /// The negative minset of the constraint, computed by enumeration.
    ///
    /// By Proposition 5.3 this equals `L(X, 𝒴)`.
    pub fn negminset(&self, universe: &Universe) -> Vec<AttrSet> {
        minterm::negminset(&self.to_formula(), universe)
    }

    /// Clauses asserting the constraint (it is already nearly clausal):
    /// `¬x₁ ∨ … ∨ ¬xₖ ∨ ⋁_Y ⋀Y` is converted by distribution, which stays small
    /// because only the consequent needs distributing.
    pub fn to_cnf(&self, num_vars: usize) -> Cnf {
        Cnf::from_formula_distributive(&self.to_formula(), num_vars)
    }

    /// Decides `Φ ⊨ self` by exhaustive enumeration over the universe.
    pub fn implied_by_exhaustive(
        &self,
        premises: &[ImplicationConstraint],
        universe: &Universe,
    ) -> bool {
        let premise_formulas: Vec<Formula> = premises
            .iter()
            .map(ImplicationConstraint::to_formula)
            .collect();
        minterm::implies_exhaustive(&premise_formulas, &self.to_formula(), universe)
    }

    /// Decides `Φ ⊨ self` by SAT refutation: `Φ ∧ ¬self` unsatisfiable.
    ///
    /// The negation `¬(⋀X ⇒ ⋁_Y ⋀Y)` is `⋀X ∧ ⋀_Y ¬⋀Y`, which is encoded
    /// directly as unit clauses for `X` plus one clause `⋁_{y ∈ Y} ¬y` per
    /// member `Y ∈ 𝒴` — no auxiliary variables are needed anywhere, so the
    /// whole refutation formula is linear in the input.
    pub fn implied_by_sat(&self, premises: &[ImplicationConstraint], universe: &Universe) -> bool {
        let n = universe.len();
        let mut cnf = Cnf::empty(n);
        // Premises.
        for p in premises {
            for clause in p.to_cnf(n).clauses {
                cnf.push(clause);
            }
        }
        // ¬conclusion: X all true…
        for v in self.lhs.iter() {
            cnf.push(Clause::new([Lit::pos(v)]));
        }
        // …and for each Y ∈ 𝒴, not all of Y true.
        for y in self.rhs.iter() {
            if y.is_empty() {
                // ¬(empty conjunction) = false: the negated conclusion is
                // unsatisfiable, so the implication holds vacuously.
                return true;
            }
            cnf.push(Clause::new(y.iter().map(Lit::neg)));
        }
        !DpllSolver::new(cnf).solve().is_sat()
    }

    /// Pretty-prints the constraint over a universe, e.g. `"A ⇒ B ∨ (C ∧ D)"`.
    pub fn format(&self, universe: &Universe) -> String {
        self.to_formula().format(universe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlat::lattice;

    fn abcd() -> Universe {
        Universe::of_size(4)
    }

    fn fam(u: &Universe, members: &[&str]) -> Family {
        Family::from_sets(members.iter().map(|m| u.parse_set(m).unwrap()))
    }

    #[test]
    fn proposition_5_3_negminset_equals_lattice() {
        let u = abcd();
        let cases: Vec<(&str, Vec<&str>)> = vec![
            ("A", vec!["B", "CD"]),
            ("A", vec!["BC", "BD"]),
            ("", vec![]),
            ("AB", vec!["C"]),
            ("A", vec![]),
            ("A", vec!["A"]), // trivial: negminset must be empty
        ];
        for (x, members) in cases {
            let xv = u.parse_set(x).unwrap();
            let f = fam(&u, &members);
            let c = ImplicationConstraint::new(xv, f.clone());
            let mut neg = c.negminset(&u);
            neg.sort();
            let lat = lattice::lattice_decomposition(&u, xv, &f);
            assert_eq!(neg, lat, "Proposition 5.3 failed for {x} ⇒ {members:?}");
        }
    }

    #[test]
    fn eval_matches_formula() {
        let u = abcd();
        let c = ImplicationConstraint::new(u.parse_set("A").unwrap(), fam(&u, &["B", "CD"]));
        let f = c.to_formula();
        for x in u.all_subsets() {
            assert_eq!(c.eval(x), f.eval(x));
        }
    }

    #[test]
    fn sat_procedure_agrees_with_exhaustive() {
        let u = Universe::of_size(3);
        let premises = vec![
            ImplicationConstraint::new(u.parse_set("A").unwrap(), fam(&u, &["B"])),
            ImplicationConstraint::new(u.parse_set("B").unwrap(), fam(&u, &["C"])),
        ];
        let goals = vec![
            (
                ImplicationConstraint::new(u.parse_set("A").unwrap(), fam(&u, &["C"])),
                true,
            ),
            (
                ImplicationConstraint::new(u.parse_set("C").unwrap(), fam(&u, &["A"])),
                false,
            ),
            (
                ImplicationConstraint::new(u.parse_set("A").unwrap(), fam(&u, &["BC"])),
                true,
            ),
            (
                ImplicationConstraint::new(u.parse_set("B").unwrap(), fam(&u, &["A"])),
                false,
            ),
        ];
        for (goal, expected) in goals {
            assert_eq!(goal.implied_by_exhaustive(&premises, &u), expected);
            assert_eq!(goal.implied_by_sat(&premises, &u), expected);
        }
    }

    #[test]
    fn empty_rhs_member_makes_conclusion_tautological() {
        // X ⇒ (… ∨ ⊤): always implied.
        let u = abcd();
        let goal = ImplicationConstraint::new(
            u.parse_set("A").unwrap(),
            Family::from_sets([AttrSet::EMPTY, u.parse_set("B").unwrap()]),
        );
        assert!(goal.implied_by_sat(&[], &u));
        assert!(goal.implied_by_exhaustive(&[], &u));
    }

    #[test]
    fn empty_family_conclusion() {
        // X ⇒ ⊥ is not implied by nothing (unless the universe forces ⋀X false,
        // which it never does), but it is implied by itself.
        let u = abcd();
        let goal = ImplicationConstraint::new(u.parse_set("A").unwrap(), Family::empty());
        assert!(!goal.implied_by_sat(&[], &u));
        assert!(!goal.implied_by_exhaustive(&[], &u));
        assert!(goal.implied_by_sat(std::slice::from_ref(&goal), &u));
        assert!(goal.implied_by_exhaustive(std::slice::from_ref(&goal), &u));
    }

    #[test]
    fn formatting() {
        let u = abcd();
        let c = ImplicationConstraint::new(u.parse_set("A").unwrap(), fam(&u, &["B", "CD"]));
        assert_eq!(c.format(&u), "A ⇒ (B ∨ (C ∧ D))");
    }
}
