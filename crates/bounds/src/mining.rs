//! Constraint-aware non-derivable-itemset mining: plug the interval engine
//! into [`fis::ndi::NdiRepresentation::build_pruned`] as its bounds oracle.
//!
//! Classic NDI mining deduces each itemset's support interval from the
//! supports of *all* of its proper subsets.  When differential constraints
//! satisfied by the database are also asserted (`X → 𝒴` zeroes the density —
//! the basket multiset counts — on `L(X, 𝒴)`), whole deduction-rule regions
//! vanish and their rules become equalities, so strictly more itemsets are
//! pinned exactly and strictly fewer candidate supports are ever counted
//! against the database.
//!
//! ```
//! use diffcon::DiffConstraint;
//! use diffcon_bounds::mining;
//! use diffcon_bounds::problem::BoundsConfig;
//! use fis::basket::BasketDb;
//! use fis::ndi::NdiRepresentation;
//! use setlat::Universe;
//!
//! let u = Universe::of_size(3);
//! // Every basket containing A contains B, i.e. the database satisfies
//! // the differential constraint A → {B}.
//! let db = BasketDb::parse(&u, "AB\nABC\nB\nC\nBC").unwrap();
//! let constraints = vec![DiffConstraint::parse("A -> {B}", &u).unwrap()];
//! let (ndi, stats) =
//!     mining::ndi_under_constraints(&db, &constraints, 1, &BoundsConfig::mining()).unwrap();
//! // The representation is still lossless for frequent itemsets…
//! assert_eq!(ndi.kappa, 1);
//! // …but σ(AB) = σ(A) is pinned by the constraint, so AB was never scanned.
//! let (_, unconstrained) =
//!     mining::ndi_under_constraints(&db, &[], 1, &BoundsConfig::mining()).unwrap();
//! assert!(stats.support_scans < unconstrained.support_scans);
//! ```

use crate::derive;
use crate::problem::{BoundsConfig, BoundsProblem, DeriveError, SideConditions};
use diffcon::DiffConstraint;
use fis::basket::BasketDb;
use fis::ndi::{BoundsOracle, NdiRepresentation, PruneStats, SupportBounds};
use setlat::{powerset, AttrSet, Universe};

impl BoundsConfig {
    /// The preset used for levelwise mining: deduction rules plus
    /// constraint-killed regions only.  Propagation sweeps and the pairwise
    /// pass cannot tighten anything beyond the (complete) deduction rules
    /// when every proper subset is known, so the preset skips them.
    pub fn mining() -> BoundsConfig {
        BoundsConfig {
            rounds: 0,
            pairwise: false,
            ..BoundsConfig::default()
        }
    }
}

/// A [`BoundsOracle`] backed by the constraint-aware interval engine: each
/// query derives over the asserted constraints plus the recorded supports of
/// the itemset's proper subsets, under the support-function side conditions.
#[derive(Debug)]
pub struct ConstraintOracle<'a> {
    universe: Universe,
    constraints: &'a [DiffConstraint],
    config: BoundsConfig,
    /// Mask-indexed recorded supports (NaN = not yet determined).
    supports: Vec<f64>,
    /// Set when a derivation reports infeasibility: the constraints do not
    /// actually hold on the database, so derived values are meaningless.
    infeasible: bool,
}

impl<'a> ConstraintOracle<'a> {
    /// An oracle over a universe of `n` items asserting `constraints`.
    pub fn new(n: usize, constraints: &'a [DiffConstraint], config: BoundsConfig) -> Self {
        ConstraintOracle {
            universe: Universe::of_size(n),
            constraints,
            config,
            supports: vec![f64::NAN; 1 << n],
            infeasible: false,
        }
    }

    /// Whether any derivation reported infeasible knowns (the constraints
    /// are violated by the recorded supports).
    pub fn infeasible(&self) -> bool {
        self.infeasible
    }
}

fn to_support_bounds(lo: f64, hi: f64) -> SupportBounds {
    // Supports are integers: snap the sound real interval inward.
    let lower = if lo <= i64::MIN as f64 {
        i64::MIN
    } else {
        lo.ceil() as i64
    };
    let upper = if hi >= i64::MAX as f64 {
        i64::MAX
    } else {
        hi.floor() as i64
    };
    SupportBounds { lower, upper }
}

impl BoundsOracle for ConstraintOracle<'_> {
    fn bounds(&mut self, itemset: AttrSet) -> SupportBounds {
        let knowns: Vec<(AttrSet, f64)> = powerset::proper_subsets(itemset)
            .filter_map(|j| {
                let v = self.supports[j.bits() as usize];
                if v.is_nan() {
                    None
                } else {
                    Some((j, v))
                }
            })
            .collect();
        let problem = BoundsProblem {
            universe: &self.universe,
            constraints: self.constraints,
            knowns: &knowns,
            side: SideConditions::support(),
        };
        // Always the full propagation path, never the budget router: mining
        // correctness (classic-NDI equivalence, constraint pruning) depends
        // on the deduction pass running, and `build_pruned` already caps the
        // universe at 20 items — exactly the propagation cap.
        match derive::derive_propagated(&problem, itemset, &self.config) {
            Ok(bound) => to_support_bounds(bound.interval.lo, bound.interval.hi),
            Err(DeriveError::Infeasible) => {
                self.infeasible = true;
                // A maximally wide (vacuous) answer keeps the builder moving;
                // the caller checks `infeasible()` afterwards.
                SupportBounds {
                    lower: 0,
                    upper: i64::MAX,
                }
            }
        }
    }

    fn record(&mut self, itemset: AttrSet, support: usize) {
        self.supports[itemset.bits() as usize] = support as f64;
    }
}

/// Mines the non-derivable-itemset representation of `db` at threshold
/// `kappa` under a set of differential constraints known to hold on the
/// database, scanning only the itemsets the constraint-aware intervals fail
/// to pin.
///
/// With `constraints` empty this reproduces
/// [`NdiRepresentation::build`] (see the crate's property tests); with
/// constraints it evaluates strictly fewer candidate supports whenever a
/// constraint pins an otherwise non-derivable itemset.
///
/// # Errors
/// [`DeriveError::Infeasible`] when the constraints do **not** hold on `db`,
/// in which case any "derived" support would be unsound.  The check is
/// direct and cheap: the density of a support function is the multiset count
/// of exactly-equal baskets, so `X → 𝒴` holds iff no basket lies in
/// `L(X, 𝒴)` — `O(|B| · Σ|𝒴|)` bitset work, no support evaluation.
pub fn ndi_under_constraints(
    db: &BasketDb,
    constraints: &[DiffConstraint],
    kappa: usize,
    config: &BoundsConfig,
) -> Result<(NdiRepresentation, PruneStats), DeriveError> {
    for constraint in constraints {
        if db.baskets().iter().any(|&b| constraint.lattice_contains(b)) {
            return Err(DeriveError::Infeasible);
        }
    }
    let mut oracle = ConstraintOracle::new(db.universe_size(), constraints, *config);
    let (ndi, stats) = NdiRepresentation::build_pruned(db, kappa, &mut oracle);
    if oracle.infeasible() {
        return Err(DeriveError::Infeasible);
    }
    Ok((ndi, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_mining_matches_classic_ndi() {
        let u = Universe::of_size(5);
        let db = BasketDb::parse(&u, "ABC\nABD\nAB\nACD\nBCD\nABCD\nAE\nBE\nABE\nC\nAB").unwrap();
        for kappa in [1usize, 2, 4] {
            let classic = NdiRepresentation::build(&db, kappa);
            let (mined, stats) =
                ndi_under_constraints(&db, &[], kappa, &BoundsConfig::mining()).unwrap();
            assert_eq!(mined, classic, "mismatch at κ = {kappa}");
            assert_eq!(stats.support_scans + stats.derived_exact, stats.considered);
        }
    }

    #[test]
    fn constraints_prune_strictly_more_scans() {
        // Every basket containing A contains B ⇒ the database satisfies
        // A → {B}; σ(AB) = σ(A) is then pinned without scanning.
        let u = Universe::of_size(4);
        let db = BasketDb::parse(&u, "AB\nABC\nABD\nB\nC\nCD\nABCD").unwrap();
        let constraints = vec![DiffConstraint::parse("A -> {B}", &u).unwrap()];
        let (with, with_stats) =
            ndi_under_constraints(&db, &constraints, 1, &BoundsConfig::mining()).unwrap();
        let (without, without_stats) =
            ndi_under_constraints(&db, &[], 1, &BoundsConfig::mining()).unwrap();
        assert!(
            with_stats.support_scans < without_stats.support_scans,
            "constraint awareness must save scans: {with_stats:?} vs {without_stats:?}"
        );
        // Everything stored is a frequent itemset with its true support.
        for (&itemset, &support) in &with.itemsets {
            assert_eq!(support, db.support(itemset));
            assert!(support >= 1);
        }
        // The constrained representation is a subset of the unconstrained
        // one: constraint-pinned itemsets drop out, nothing is added.
        for itemset in with.itemsets.keys() {
            assert!(without.itemsets.contains_key(itemset));
        }
    }

    #[test]
    fn oracle_stays_exact_past_the_derive_budget() {
        // On 13+ items an all-proper-subsets knowns set overflows the
        // default ops budget; the oracle must still take the propagation
        // path (never the relaxation), or derivable itemsets would silently
        // be stored/scanned and the classic-NDI equivalence would break.
        let n = 13;
        let full = AttrSet::full(n);
        let db = BasketDb::from_baskets(n, std::iter::repeat_n(full, 5));
        let mut oracle = ConstraintOracle::new(n, &[], BoundsConfig::mining());
        oracle.record(AttrSet::EMPTY, db.len());
        for size in 1..n {
            for itemset in powerset::subsets_of_size(n, size) {
                oracle.record(itemset, db.support(itemset));
            }
        }
        let bounds = oracle.bounds(full);
        assert_eq!(
            bounds,
            fis::ndi::deduction_bounds(&db, full),
            "oracle must match the deduction rules regardless of budget"
        );
        assert!(bounds.is_exact(), "five identical baskets pin the top set");
    }

    #[test]
    fn violated_constraints_are_reported() {
        let u = Universe::of_size(3);
        // A occurs without B, so A → {B} does not hold.
        let db = BasketDb::parse(&u, "A\nB\nAB").unwrap();
        let constraints = vec![DiffConstraint::parse("A -> {B}", &u).unwrap()];
        assert_eq!(
            ndi_under_constraints(&db, &constraints, 1, &BoundsConfig::mining()),
            Err(DeriveError::Infeasible)
        );
    }
}
