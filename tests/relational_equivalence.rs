//! E7/E9 — Section 7 and the conclusion: the relational bridge on generated
//! relations, and the polynomial FD fragment.

use diffcon::random::{ConstraintGenerator, ConstraintShape};
use diffcon::{fd_fragment, implication, rel_bridge, DiffConstraint};
use relational::boolean_dep::BooleanDependency;
use relational::distribution::ProbabilisticRelation;
use relational::fd::{self, FunctionalDependency};
use relational::generator;
use relational::{shannon, simpson};
use setlat::{AttrSet, Family, Universe};

/// Proposition 7.2 on random probabilistic relations: the Simpson density is
/// nonnegative and matches its closed form.
#[test]
fn proposition_7_2_on_random_relations() {
    let u = Universe::of_size(5);
    for seed in 0..10u64 {
        let relation = generator::random_relation(seed, 5, 25, 3);
        if relation.is_empty() {
            continue;
        }
        let pr = generator::random_distribution(seed + 100, relation);
        assert!(simpson::simpson_is_frequency_function(&pr));
        let density = simpson::simpson_density(&pr);
        for x in u.all_subsets() {
            let closed = simpson::simpson_density_at_closed_form(&pr, x);
            assert!((density.get(x) - closed).abs() < 1e-8);
            assert!(closed >= -1e-9);
        }
    }
}

/// Proposition 7.3 on random relations and random constraints: Simpson
/// satisfaction ⇔ boolean-dependency satisfaction, for uniform and skewed
/// distributions alike.
#[test]
fn proposition_7_3_on_random_relations() {
    let u = Universe::of_size(5);
    let shape = ConstraintShape {
        max_lhs: 2,
        max_members: 2,
        max_member_size: 2,
        allow_trivial: true,
    };
    for seed in 0..10u64 {
        let relation = generator::random_relation(seed, 5, 15, 2);
        if relation.is_empty() {
            continue;
        }
        let uniform = ProbabilisticRelation::uniform(relation.clone());
        let skewed = generator::random_distribution(seed + 7, relation.clone());
        let mut gen = ConstraintGenerator::new(seed * 3 + 1, &u);
        for _ in 0..6 {
            let c = gen.constraint(&shape);
            let via_relation = BooleanDependency::new(c.lhs, c.rhs.clone()).satisfied_by(&relation);
            assert_eq!(via_relation, rel_bridge::simpson_satisfies(&uniform, &c));
            assert_eq!(via_relation, rel_bridge::simpson_satisfies(&skewed, &c));
        }
    }
}

/// Corollary 7.4 on random instances: implication over Simpson functions
/// (via the Armstrong-style witness relation) coincides with plain implication.
#[test]
fn corollary_7_4_on_random_instances() {
    let u = Universe::of_size(5);
    let shape = ConstraintShape::default();
    for seed in 0..25u64 {
        let mut gen = ConstraintGenerator::new(seed, &u);
        let premises = gen.constraint_set(3, &shape);
        let goal = if seed % 2 == 0 {
            gen.implied_goal(&premises)
        } else {
            gen.constraint(&shape)
        };
        let general = implication::implies(&u, &premises, &goal);
        let simpson = rel_bridge::implies_over_simpson(&u, &premises, &goal);
        if rel_bridge::vacuous_over_relations(&premises) {
            // Some premise has an empty right-hand side: no Simpson model exists,
            // so the simpson(S) implication is vacuously true (see EXPERIMENTS.md).
            assert!(simpson);
        } else {
            assert_eq!(general, simpson);
        }
        let bool_premises: Vec<_> = premises
            .iter()
            .map(rel_bridge::to_boolean_dependency)
            .collect();
        assert_eq!(
            general,
            rel_bridge::boolean_implies(
                &u,
                &bool_premises,
                &rel_bridge::to_boolean_dependency(&goal)
            )
        );
    }
}

/// Functional dependencies are the single-member special case: on relations
/// with planted FDs, FD satisfaction, boolean-dependency satisfaction and
/// Simpson satisfaction of the translated constraint all agree; and FD
/// implication (closure) agrees with general implication.
#[test]
fn fd_special_case_end_to_end() {
    let u = Universe::of_size(6);
    let planted = vec![
        FunctionalDependency::new(u.parse_set("A").unwrap(), u.parse_set("B").unwrap()),
        FunctionalDependency::new(u.parse_set("BC").unwrap(), u.parse_set("D").unwrap()),
        FunctionalDependency::new(u.parse_set("D").unwrap(), u.parse_set("E").unwrap()),
    ];
    let relation = generator::relation_with_fds(3, 6, 60, 4, &planted);
    let pr = ProbabilisticRelation::uniform(relation.clone());

    // Satisfaction agreement for every candidate FD with singleton dependent.
    for lhs_mask in 0u64..64 {
        let lhs = AttrSet::from_bits(lhs_mask);
        for a in 0..6 {
            let fd = FunctionalDependency::new(lhs, AttrSet::singleton(a));
            let c = rel_bridge::from_functional_dependency(&fd);
            let via_fd = fd.satisfied_by(&relation);
            let via_bool =
                BooleanDependency::from_fd(lhs, AttrSet::singleton(a)).satisfied_by(&relation);
            let via_simpson = rel_bridge::simpson_satisfies(&pr, &c);
            assert_eq!(via_fd, via_bool);
            assert_eq!(via_fd, via_simpson);
        }
    }

    // Implication agreement: closure-based FD implication vs the general lattice
    // procedure on the translated constraints vs the fragment procedure.
    let premises: Vec<DiffConstraint> = planted
        .iter()
        .map(rel_bridge::from_functional_dependency)
        .collect();
    for lhs_mask in 0u64..64 {
        let lhs = AttrSet::from_bits(lhs_mask);
        for rhs_mask in 1u64..64 {
            let rhs = AttrSet::from_bits(rhs_mask);
            let fd_goal = FunctionalDependency::new(lhs, rhs);
            let constraint_goal = DiffConstraint::new(lhs, Family::single(rhs));
            let via_closure = fd::implies(&planted, &fd_goal);
            let via_general = implication::implies(&u, &premises, &constraint_goal);
            let via_fragment = fd_fragment::implies_polynomial(&premises, &constraint_goal);
            assert_eq!(
                via_closure,
                via_general,
                "closure vs general at {}",
                constraint_goal.format(&u)
            );
            assert_eq!(via_closure, via_fragment);
        }
    }
}

/// The Shannon comparison point: conditional entropy vanishes exactly on the
/// satisfied FDs (like the Simpson criterion), but its density is not
/// sign-definite — the empirical face of the paper's open problem.
#[test]
fn shannon_comparison() {
    let u = Universe::of_size(4);
    let planted = vec![FunctionalDependency::new(
        u.parse_set("A").unwrap(),
        u.parse_set("B").unwrap(),
    )];
    let relation = generator::relation_with_fds(9, 4, 40, 4, &planted);
    let pr = ProbabilisticRelation::uniform(relation.clone());
    for lhs_mask in 0u64..16 {
        let lhs = AttrSet::from_bits(lhs_mask);
        for a in 0..4 {
            let rhs = AttrSet::singleton(a);
            let fd = FunctionalDependency::new(lhs, rhs);
            let zero_cond_entropy = shannon::conditional_entropy(&pr, lhs, rhs).abs() < 1e-9;
            assert_eq!(fd.satisfied_by(&relation), zero_cond_entropy);
        }
    }
    // The entropy density of a generic relation takes negative values.
    let generic = ProbabilisticRelation::uniform(generator::random_relation(1, 4, 10, 3));
    let density = shannon::entropy_density(&generic);
    assert!(density.values().iter().any(|&v| v < -1e-9));
}
