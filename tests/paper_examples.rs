//! E10 — every worked example of the paper, reproduced end-to-end through the
//! public API of the workspace crates.

use diffcon::{implication, inference, DiffConstraint};
use proplogic::formula::Formula;
use proplogic::minterm;
use setlat::{differential, lattice, mobius, AttrSet, Family, SetFunction, Universe};

fn u4() -> Universe {
    Universe::of_size(4)
}

fn fam(u: &Universe, members: &[&str]) -> Family {
    Family::from_sets(members.iter().map(|m| u.parse_set(m).unwrap()))
}

/// Example 2.2: the expansion of D^{B,CD}_f(A) and the density points.
#[test]
fn example_2_2() {
    let u = u4();
    let f = SetFunction::from_fn(4, |x| ((x.bits() * 31 + 5) % 11) as f64);
    let g = |names: &str| f.get(u.parse_set(names).unwrap());
    let expanded = g("A") - g("AB") - g("ACD") + g("ABCD");
    let direct =
        differential::differential_at(&f, u.parse_set("A").unwrap(), &fam(&u, &["B", "CD"]));
    assert!((expanded - direct).abs() < 1e-9);

    let d = mobius::density_function(&f);
    assert!(
        (d.get(u.parse_set("A").unwrap())
            - differential::differential_at(
                &f,
                u.parse_set("A").unwrap(),
                &fam(&u, &["B", "C", "D"])
            ))
        .abs()
            < 1e-9
    );
    assert!(
        (d.get(u.parse_set("AC").unwrap())
            - differential::differential_at(&f, u.parse_set("AC").unwrap(), &fam(&u, &["B", "D"])))
        .abs()
            < 1e-9
    );
    assert!(
        (d.get(u.parse_set("AD").unwrap())
            - differential::differential_at(&f, u.parse_set("AD").unwrap(), &fam(&u, &["B", "C"])))
        .abs()
            < 1e-9
    );
}

/// Example 2.4: explicit Möbius inversion / zeta reconstruction identities at A, AC, AD.
#[test]
fn example_2_4() {
    let u = u4();
    let f = SetFunction::from_fn(4, |x| (x.bits() as f64).cos() * 3.0 + x.len() as f64);
    let d = mobius::density_function(&f);
    let fv = |names: &str| f.get(u.parse_set(names).unwrap());
    let dv = |names: &str| d.get(u.parse_set(names).unwrap());

    let expected_d_a =
        fv("A") - fv("AB") - fv("AC") - fv("AD") + fv("ABC") + fv("ABD") + fv("ACD") - fv("ABCD");
    assert!((dv("A") - expected_d_a).abs() < 1e-9);

    let expected_d_ac = fv("AC") - fv("ABC") - fv("ACD") + fv("ABCD");
    assert!((dv("AC") - expected_d_ac).abs() < 1e-9);

    let expected_d_ad = fv("AD") - fv("ABD") - fv("ACD") + fv("ABCD");
    assert!((dv("AD") - expected_d_ad).abs() < 1e-9);

    let expected_f_a =
        dv("A") + dv("AB") + dv("AC") + dv("AD") + dv("ABC") + dv("ABD") + dv("ACD") + dv("ABCD");
    assert!((fv("A") - expected_f_a).abs() < 1e-9);

    let expected_f_ac = dv("AC") + dv("ABC") + dv("ACD") + dv("ABCD");
    assert!((fv("AC") - expected_f_ac).abs() < 1e-9);

    let expected_f_ad = dv("AD") + dv("ABD") + dv("ACD") + dv("ABCD");
    assert!((fv("AD") - expected_f_ad).abs() < 1e-9);
}

/// Example 2.7: witness sets and lattice decompositions of {B, CD} and {BC, BD}.
#[test]
fn example_2_7() {
    let u = u4();
    let first = fam(&u, &["B", "CD"]);
    let mut witnesses = setlat::witness::witness_sets(&first);
    witnesses.sort();
    let mut expected: Vec<AttrSet> = ["BC", "BD", "BCD"]
        .iter()
        .map(|s| u.parse_set(s).unwrap())
        .collect();
    expected.sort();
    assert_eq!(witnesses, expected);

    let l = lattice::lattice_decomposition(&u, u.parse_set("A").unwrap(), &first);
    let mut expected: Vec<AttrSet> = ["A", "AC", "AD"]
        .iter()
        .map(|s| u.parse_set(s).unwrap())
        .collect();
    expected.sort();
    assert_eq!(l, expected);

    let second = fam(&u, &["BC", "BD"]);
    let mut witnesses = setlat::witness::witness_sets(&second);
    witnesses.sort();
    let mut expected: Vec<AttrSet> = ["B", "BC", "BD", "CD", "BCD"]
        .iter()
        .map(|s| u.parse_set(s).unwrap())
        .collect();
    expected.sort();
    assert_eq!(witnesses, expected);

    let l = lattice::lattice_decomposition(&u, u.parse_set("A").unwrap(), &second);
    let mut expected: Vec<AttrSet> = ["A", "AB", "AC", "AD", "ACD"]
        .iter()
        .map(|s| u.parse_set(s).unwrap())
        .collect();
    expected.sort();
    assert_eq!(l, expected);
}

/// Example 2.10: D^{B,CD}_f(A) = d_f(A) + d_f(AC) + d_f(AD).
#[test]
fn example_2_10() {
    let u = u4();
    let f = SetFunction::from_fn(4, |x| ((x.bits() * 13 + 3) % 7) as f64 - 2.0);
    let d = mobius::density_function(&f);
    let lhs = differential::differential_at(&f, u.parse_set("A").unwrap(), &fam(&u, &["B", "CD"]));
    let rhs = d.get(u.parse_set("A").unwrap())
        + d.get(u.parse_set("AC").unwrap())
        + d.get(u.parse_set("AD").unwrap());
    assert!((lhs - rhs).abs() < 1e-9);
}

/// Example 3.2: the explicit function over S = {A,B,C} and its (non-)satisfied constraints.
#[test]
fn example_3_2() {
    let u = Universe::of_size(3);
    let f = SetFunction::from_fn(3, |x| {
        if x == AttrSet::EMPTY || x == u.parse_set("C").unwrap() {
            2.0
        } else {
            1.0
        }
    });
    let d = mobius::density_function(&f);
    for x in u.all_subsets() {
        let expected = if x == u.parse_set("C").unwrap() || x == u.parse_set("ABC").unwrap() {
            1.0
        } else {
            0.0
        };
        assert!((d.get(x) - expected).abs() < 1e-9, "density wrong at {x:?}");
    }
    assert!(diffcon::semantics::satisfies(
        &f,
        &DiffConstraint::parse("A -> {B}", &u).unwrap()
    ));
    assert!(diffcon::semantics::satisfies(
        &f,
        &DiffConstraint::parse("B -> {C}", &u).unwrap()
    ));
    assert!(!diffcon::semantics::satisfies(
        &f,
        &DiffConstraint::parse("C -> {A}", &u).unwrap()
    ));
}

/// Example 3.4: {A → {B}, B → {C}} ⊨ A → {C}.
#[test]
fn example_3_4() {
    let u = Universe::of_size(3);
    let premises = vec![
        DiffConstraint::parse("A -> {B}", &u).unwrap(),
        DiffConstraint::parse("B -> {C}", &u).unwrap(),
    ];
    let goal = DiffConstraint::parse("A -> {C}", &u).unwrap();
    assert!(implication::implies(&u, &premises, &goal));
    // …including via the L(C) ⊇ L(X,𝒴) containment spelled out in the example.
    let lc = lattice::lattice_union(
        &u,
        &premises
            .iter()
            .map(|c| (c.lhs, c.rhs.clone()))
            .collect::<Vec<_>>(),
    );
    for member in goal.lattice(&u) {
        assert!(lc.contains(&member));
    }
}

/// Remark 3.6: the one-attribute function separating the two semantics.
#[test]
fn remark_3_6() {
    let u = Universe::of_size(1);
    let mut f = SetFunction::zeros(1);
    f.set(AttrSet::singleton(0), 1.0);
    let c = DiffConstraint::new(AttrSet::EMPTY, Family::empty());
    assert!(diffcon::semantics::satisfies_differential(&f, &c));
    assert!(!diffcon::semantics::satisfies(&f, &c));
    let d = mobius::density_function(&f);
    assert!((d.get(AttrSet::EMPTY) + 1.0).abs() < 1e-9);
    assert!((d.get(AttrSet::singleton(0)) - 1.0).abs() < 1e-9);
    assert_eq!(
        lattice::lattice_decomposition(&u, AttrSet::EMPTY, &Family::empty()).len(),
        2
    );
}

/// Example 4.3: the derivation of AB → {D} from {A → {BC, CD}, C → {D}}.
#[test]
fn example_4_3() {
    let u = u4();
    let premises = vec![
        DiffConstraint::parse("A -> {BC, CD}", &u).unwrap(),
        DiffConstraint::parse("C -> {D}", &u).unwrap(),
    ];
    let goal = DiffConstraint::parse("AB -> {D}", &u).unwrap();
    assert!(implication::implies(&u, &premises, &goal));
    let proof = inference::derive(&u, &premises, &goal).expect("derivable");
    proof.verify(&u, &premises).expect("proof verifies");
    assert_eq!(proof.conclusion(), &goal);
    // Intermediate steps of the paper's derivation are all implied as well.
    for step in ["A -> {BC, C}", "A -> {C}", "AB -> {C}"] {
        let c = DiffConstraint::parse(step, &u).unwrap();
        assert!(
            implication::implies(&u, &premises, &c),
            "step {step} not implied"
        );
    }
}

/// The worked example after Definition 4.4: decomp and atoms of A → {B, CD}.
#[test]
fn definition_4_4_worked_example() {
    let u = u4();
    let c = DiffConstraint::parse("A -> {B, CD}", &u).unwrap();
    let mut decomp = diffcon::decompose::decomposition(&c);
    decomp.sort();
    let mut expected: Vec<DiffConstraint> = ["A -> {B, C}", "A -> {B, D}", "A -> {B, C, D}"]
        .iter()
        .map(|t| DiffConstraint::parse(t, &u).unwrap())
        .collect();
    expected.sort();
    assert_eq!(decomp, expected);

    let mut atoms = diffcon::decompose::atomic_decomposition(&c, &u);
    atoms.sort();
    let mut expected: Vec<DiffConstraint> = ["A -> {B, C, D}", "AC -> {B, D}", "AD -> {B, C}"]
        .iter()
        .map(|t| DiffConstraint::parse(t, &u).unwrap())
        .collect();
    expected.sort();
    assert_eq!(atoms, expected);
}

/// The Section 5 worked example: negminset(A ⇒ B ∨ (C ∧ D)) = {A, AC, AD} = L(A, {B, CD}).
#[test]
fn section_5_worked_example() {
    let u = u4();
    let alpha = Formula::implies(
        Formula::var(0),
        Formula::or([
            Formula::var(1),
            Formula::and([Formula::var(2), Formula::var(3)]),
        ]),
    );
    let mut neg = minterm::negminset(&alpha, &u);
    neg.sort();
    let mut expected: Vec<AttrSet> = ["A", "AC", "AD"]
        .iter()
        .map(|s| u.parse_set(s).unwrap())
        .collect();
    expected.sort();
    assert_eq!(neg, expected);
    assert_eq!(
        neg,
        lattice::lattice_decomposition(&u, u.parse_set("A").unwrap(), &fam(&u, &["B", "CD"]))
    );
}

/// The introduction's three constraint formats as differentials of support functions.
#[test]
fn introduction_constraints_on_baskets() {
    use fis::basket::BasketDb;
    let u = u4();
    // Build a database where every basket containing A also contains B or both C and D.
    let db = BasketDb::parse(&u, "AB\nACD\nABC\nB\nCD\nABCD").unwrap();
    let c = DiffConstraint::parse("A -> {B, CD}", &u).unwrap();
    assert!(diffcon::fis_bridge::support_function_satisfies(&db, &c));
    // The introduction's reading: f(X) − f(X∪Y) − f(X∪Z) + f(X∪Y∪Z) = 0.
    let s = |names: &str| db.support(u.parse_set(names).unwrap()) as f64;
    let value = s("A") - s("AB") - s("ACD") + s("ABCD");
    assert_eq!(value, 0.0);
    // And a database violating it.
    let bad = BasketDb::parse(&u, "AB\nAC\nA").unwrap();
    assert!(!diffcon::fis_bridge::support_function_satisfies(&bad, &c));
}
