//! Witness and atomic decompositions of a constraint (Definition 4.4).
//!
//! ```text
//! decomp(X → 𝒴) = { X → W̄        | W ∈ 𝒲(𝒴) }      (W̄ = {{w} | w ∈ W})
//! atoms(X → 𝒴)  = { atom(U)      | U ∈ L(X, 𝒴) }    (atom(U) = U → {{z} | z ∈ S−U})
//! ```
//!
//! Remark 4.5 and Propositions 4.6/4.7 state that a constraint, its
//! decomposition and its atomic decomposition are equivalent — both
//! semantically (`∗`-closure) and proof-theoretically (`+`-closure).  The
//! equivalences are exercised in this module's tests via the implication and
//! inference engines.

use crate::constraint::DiffConstraint;
use setlat::{witness, AttrSet, Family, Universe};

/// The decomposition `decomp(X → 𝒴)`: one constraint `X → W̄` per witness set
/// `W ∈ 𝒲(𝒴)`, where `W̄` is the family of singletons of `W`.
///
/// A trivial constraint decomposes to the empty list (its closure is the set of
/// trivial constraints, which needs no generators — this is the convention used
/// in the proof of Proposition 4.6).
pub fn decomposition(constraint: &DiffConstraint) -> Vec<DiffConstraint> {
    if constraint.is_trivial() {
        return Vec::new();
    }
    witness::witness_sets(&constraint.rhs)
        .into_iter()
        .map(|w| DiffConstraint::new(constraint.lhs, Family::of_singletons(w)))
        .collect()
}

/// The decomposition restricted to *minimal* witness sets — a smaller set of
/// constraints with the same closure (every witness contains a minimal one, and
/// `X → W̄` for a larger witness follows by the addition rule).
pub fn minimal_decomposition(constraint: &DiffConstraint) -> Vec<DiffConstraint> {
    if constraint.is_trivial() {
        return Vec::new();
    }
    witness::minimal_witness_sets(&constraint.rhs)
        .into_iter()
        .map(|w| DiffConstraint::new(constraint.lhs, Family::of_singletons(w)))
        .collect()
}

/// The atomic decomposition `atoms(X → 𝒴)`: one atomic constraint
/// `atom(U) = U → {{z} | z ∈ S − U}` per `U ∈ L(X, 𝒴)`.
pub fn atomic_decomposition(
    constraint: &DiffConstraint,
    universe: &Universe,
) -> Vec<DiffConstraint> {
    constraint
        .lattice(universe)
        .into_iter()
        .map(|u_set| DiffConstraint::atom(u_set, universe))
        .collect()
}

/// The atomic decomposition of a whole constraint set: one atomic constraint
/// per member of `L(C)`.
pub fn atomic_decomposition_of_set(
    constraints: &[DiffConstraint],
    universe: &Universe,
) -> Vec<DiffConstraint> {
    let mut members: Vec<AttrSet> = constraints
        .iter()
        .flat_map(|c| c.lattice(universe))
        .collect();
    members.sort();
    members.dedup();
    members
        .into_iter()
        .map(|u_set| DiffConstraint::atom(u_set, universe))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implication::{equivalent_sets, implies};
    use crate::inference;

    fn u() -> Universe {
        Universe::of_size(4)
    }

    #[test]
    fn worked_example_after_definition_4_4() {
        // decomp(A → {B, CD}) = {A → {B,C}, A → {B,D}, A → {B,C,D}}
        // atoms(A → {B, CD})  = {A → {B,C,D}, AC → {B,D}, AD → {B,C}}
        let u = u();
        let c = DiffConstraint::parse("A -> {B, CD}", &u).unwrap();

        let mut decomp = decomposition(&c);
        decomp.sort();
        let mut expected: Vec<DiffConstraint> = ["A -> {B, C}", "A -> {B, D}", "A -> {B, C, D}"]
            .iter()
            .map(|t| DiffConstraint::parse(t, &u).unwrap())
            .collect();
        expected.sort();
        assert_eq!(decomp, expected);

        let mut atoms = atomic_decomposition(&c, &u);
        atoms.sort();
        let mut expected: Vec<DiffConstraint> = ["A -> {B, C, D}", "AC -> {B, D}", "AD -> {B, C}"]
            .iter()
            .map(|t| DiffConstraint::parse(t, &u).unwrap())
            .collect();
        expected.sort();
        assert_eq!(atoms, expected);
    }

    #[test]
    fn remark_4_5_semantic_equivalence() {
        // {X → 𝒴}* = decomp(X → 𝒴)* = atoms(X → 𝒴)*.
        let u = u();
        for text in ["A -> {B, CD}", "A -> {BC, BD}", " -> {A, B}", "AB -> {C}"] {
            let c = DiffConstraint::parse(text, &u).unwrap();
            let singleton = vec![c.clone()];
            let decomp = decomposition(&c);
            let atoms = atomic_decomposition(&c, &u);
            assert!(
                equivalent_sets(&u, &singleton, &decomp),
                "decomp differs for {text}"
            );
            assert!(
                equivalent_sets(&u, &singleton, &atoms),
                "atoms differ for {text}"
            );
            assert!(equivalent_sets(&u, &decomp, &atoms));
        }
    }

    #[test]
    fn proposition_4_6_and_4_7_proof_theoretic_equivalence() {
        // The derivations exist in both directions (via the completeness engine,
        // which only uses Figure 1 rules).
        let u = u();
        let c = DiffConstraint::parse("A -> {B, CD}", &u).unwrap();
        let decomp = decomposition(&c);
        let atoms = atomic_decomposition(&c, &u);

        // {X → 𝒴} ⊢ each element of decomp and atoms.
        for d in decomp.iter().chain(atoms.iter()) {
            let proof = inference::derive(&u, std::slice::from_ref(&c), d)
                .unwrap_or_else(|| panic!("{} not derivable from the constraint", d.format(&u)));
            proof.verify(&u, std::slice::from_ref(&c)).unwrap();
        }
        // decomp ⊢ X → 𝒴 and atoms ⊢ X → 𝒴.
        let from_decomp = inference::derive(&u, &decomp, &c).expect("derivable from decomp");
        from_decomp.verify(&u, &decomp).unwrap();
        let from_atoms = inference::derive(&u, &atoms, &c).expect("derivable from atoms");
        from_atoms.verify(&u, &atoms).unwrap();
    }

    #[test]
    fn trivial_constraints_decompose_to_nothing() {
        let u = u();
        let t = DiffConstraint::parse("AB -> {B, CD}", &u).unwrap();
        assert!(decomposition(&t).is_empty());
        assert!(atomic_decomposition(&t, &u).is_empty());
        assert!(minimal_decomposition(&t).is_empty());
    }

    #[test]
    fn minimal_decomposition_is_equivalent_but_smaller() {
        let u = u();
        let c = DiffConstraint::parse("A -> {BC, BD}", &u).unwrap();
        let full = decomposition(&c);
        let minimal = minimal_decomposition(&c);
        assert!(minimal.len() <= full.len());
        assert!(equivalent_sets(&u, &minimal, &full));
        assert!(equivalent_sets(&u, &minimal, &[c]));
    }

    #[test]
    fn atoms_of_a_set_cover_each_member() {
        let u = u();
        let constraints = vec![
            DiffConstraint::parse("A -> {B}", &u).unwrap(),
            DiffConstraint::parse("B -> {C, D}", &u).unwrap(),
        ];
        let atoms = atomic_decomposition_of_set(&constraints, &u);
        // The atomic set is equivalent to the original set.
        assert!(equivalent_sets(&u, &constraints, &atoms));
        // And each atom is implied by the original set.
        for a in &atoms {
            assert!(implies(&u, &constraints, a));
        }
    }

    #[test]
    fn witness_constraints_have_singleton_lattices() {
        // Remark 4.5: 𝒲(W̄) = {W}, so L(X, W̄) = [X, W̄-complement]… in particular the
        // decomposition members have lattices that are intervals; here we just check
        // each decomposition member is nontrivial and its lattice is nonempty.
        let u = u();
        let c = DiffConstraint::parse("A -> {B, CD}", &u).unwrap();
        for d in decomposition(&c) {
            assert!(!d.is_trivial());
            assert!(!d.lattice(&u).is_empty());
        }
    }
}
