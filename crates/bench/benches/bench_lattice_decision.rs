//! E3 — Theorem 3.5: cost of the lattice-containment decision procedure as the
//! universe and premise set grow, plus the lattice-size count table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diffcon::implication;
use diffcon_bench::workloads;

fn bench_lattice_decision(c: &mut Criterion) {
    workloads::table_lattice_sizes(&[6, 8, 10, 12]).eprint();

    let mut group = c.benchmark_group("E3_lattice_decision");
    group.sample_size(20);
    for &n in &[6usize, 8, 10, 12, 14] {
        let w = workloads::implication_workload(42, n, 8, 6);
        group.bench_with_input(BenchmarkId::new("universe", n), &w, |b, w| {
            b.iter(|| {
                let mut implied = 0usize;
                for goal in &w.goals {
                    if implication::implies(&w.universe, &w.premises, goal) {
                        implied += 1;
                    }
                }
                implied
            })
        });
    }
    for &m in &[2usize, 4, 8, 16, 32] {
        let w = workloads::implication_workload(7, 10, m, 6);
        group.bench_with_input(BenchmarkId::new("premises", m), &w, |b, w| {
            b.iter(|| {
                w.goals
                    .iter()
                    .filter(|g| implication::implies(&w.universe, &w.premises, g))
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lattice_decision);
criterion_main!(benches);
