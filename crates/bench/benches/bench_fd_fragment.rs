//! E9 — Conclusion: the polynomial single-member fragment versus the general
//! coNP procedure on the same (fragment) instances — the crossover the paper's
//! conclusion promises.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diffcon::{fd_fragment, implication, prop_bridge};
use diffcon_bench::workloads;

fn bench_fd_fragment(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_fd_fragment");
    group.sample_size(15);
    for &n in &[6usize, 10, 14, 18] {
        let w = workloads::fd_chain_workload(n);
        group.bench_with_input(BenchmarkId::new("closure_poly", n), &w, |b, w| {
            b.iter(|| fd_fragment::implies_polynomial(&w.premises, &w.goals[0]))
        });
        group.bench_with_input(BenchmarkId::new("general_lattice", n), &w, |b, w| {
            b.iter(|| implication::implies(&w.universe, &w.premises, &w.goals[0]))
        });
        group.bench_with_input(BenchmarkId::new("general_sat", n), &w, |b, w| {
            b.iter(|| prop_bridge::implies_sat(&w.universe, &w.premises, &w.goals[0]))
        });
    }
    // Larger sizes only for the polynomial procedure (the general one would be
    // prohibitively slow, which is exactly the point of E9).
    for &n in &[24usize, 32, 48, 64] {
        let w = workloads::fd_chain_workload(n.min(60));
        group.bench_with_input(BenchmarkId::new("closure_poly_large", n), &w, |b, w| {
            b.iter(|| fd_fragment::implies_polynomial(&w.premises, &w.goals[0]))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fd_fragment);
criterion_main!(benches);
