//! The frequent-itemset bridge (Section 6): disjunctive constraints, support
//! functions and the equivalence of the implication problems.
//!
//! * Proposition 6.3: a basket list `B` satisfies `X ⇒disj 𝒴` iff its support
//!   function `s_B` satisfies the differential constraint `X → 𝒴`.
//! * Proposition 6.4: implication over `F(S)`, over the frequency functions
//!   `positive(S)`, over the support functions `support(S)` and implication of
//!   the corresponding disjunctive constraints all coincide.
//!
//! The module also exposes the Section 6.1.1 application: which itemsets become
//! *disjunctive* (hence redundant in a concise representation) as a consequence
//! of a set of known disjunctive constraints, using the inference system rather
//! than re-counting the database.

use crate::constraint::DiffConstraint;
use crate::implication;
use fis::basket::BasketDb;
use fis::disjunctive::DisjunctiveConstraint;
use fis::support;
use setlat::{powerset, AttrSet, SetFunction, Universe};

/// Translates a differential constraint into the disjunctive constraint with
/// the same left-hand side and family.
pub fn to_disjunctive(constraint: &DiffConstraint) -> DisjunctiveConstraint {
    DisjunctiveConstraint::new(constraint.lhs, constraint.rhs.clone())
}

/// Translates a disjunctive constraint into a differential constraint.
pub fn from_disjunctive(constraint: &DisjunctiveConstraint) -> DiffConstraint {
    DiffConstraint::new(constraint.lhs, constraint.rhs.clone())
}

/// Satisfaction of a differential constraint *by a basket database*, through its
/// support function (the right-hand side of Proposition 6.3).
pub fn support_function_satisfies(db: &BasketDb, constraint: &DiffConstraint) -> bool {
    // Support functions are frequency functions, so density-based satisfaction is
    // equivalent to the single test D^𝒴_{s_B}(X) = 0 (Section 6).
    support::support_differential(db, constraint.lhs, &constraint.rhs).abs() <= 1e-9
}

/// The materialized support function of a database (convenience re-export used
/// by examples and benches).
pub fn support_function(db: &BasketDb) -> SetFunction {
    support::support_function(db)
}

/// Decides `C ⊨_support(S) goal`: does every basket database (equivalently,
/// every support function) satisfying `C` satisfy `goal`?
///
/// Implemented from the proof of Proposition 6.4: the implication fails iff the
/// single-basket database `(U)` for some `U ∈ L(goal) − L(C)` separates them,
/// so it suffices to test the single-basket databases.  By Proposition 6.4 the
/// answer coincides with plain implication, which the tests confirm.
pub fn implies_over_supports(
    universe: &Universe,
    premises: &[DiffConstraint],
    goal: &DiffConstraint,
) -> bool {
    let n = universe.len();
    for u_set in powerset::supersets_within(goal.lhs, n) {
        let db = BasketDb::from_baskets(n, [u_set]);
        if premises.iter().all(|p| support_function_satisfies(&db, p))
            && !support_function_satisfies(&db, goal)
        {
            return false;
        }
    }
    true
}

/// Decides implication of disjunctive constraints (`Cdisj ⊨ X ⇒disj 𝒴`), which
/// by Proposition 6.4 is the same problem as differential-constraint
/// implication; provided as the natural API for FIS users.
pub fn disjunctive_implies(
    universe: &Universe,
    premises: &[DisjunctiveConstraint],
    goal: &DisjunctiveConstraint,
) -> bool {
    let premises_diff: Vec<DiffConstraint> = premises.iter().map(from_disjunctive).collect();
    implication::implies(universe, &premises_diff, &from_disjunctive(goal))
}

/// Given disjunctive constraints already known to hold in a database, returns
/// the itemsets (within the universe) that are provably *disjunctive* by
/// inference alone — i.e. the itemsets `W` such that some nontrivial constraint
/// `X → 𝒴` with footprint inside `W` is implied by the known constraints.
///
/// This is the paper's Section 6.1.1 observation (the `{A,C,D}` example): a
/// concise representation need not store such itemsets, because their
/// disjunctive status follows from the retained constraints without looking at
/// the data.
pub fn inferable_disjunctive_itemsets(
    universe: &Universe,
    known: &[DiffConstraint],
) -> Vec<AttrSet> {
    let n = universe.len();
    let mut out = Vec::new();
    'outer: for mask in 0u64..(1u64 << n) {
        let w = AttrSet::from_bits(mask);
        // A set W is provably disjunctive iff the atomic constraint candidates
        // X' → (singletons of W − X') are implied for some X' ⊂ W with the
        // constraint nontrivial.  It suffices to try every X' ⊆ W.
        for lhs in powerset::proper_subsets(w) {
            let rhs = setlat::Family::of_singletons(w.difference(lhs));
            let candidate = DiffConstraint::new(lhs, rhs);
            if candidate.is_trivial() {
                continue;
            }
            if implication::implies(universe, known, &candidate) {
                out.push(w);
                continue 'outer;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis::generator;
    use setlat::Family;

    fn u4() -> Universe {
        Universe::of_size(4)
    }

    fn parse(u: &Universe, texts: &[&str]) -> Vec<DiffConstraint> {
        texts
            .iter()
            .map(|t| DiffConstraint::parse(t, u).unwrap())
            .collect()
    }

    #[test]
    fn proposition_6_3_satisfaction_equivalence() {
        // For a spread of databases and constraints: B ⊨ X ⇒disj 𝒴 iff
        // s_B ⊨ X → 𝒴 (density semantics) iff the support differential vanishes.
        let u = u4();
        let dbs = vec![
            BasketDb::parse(&u, "AB\nABC\nACD\nB\nABCD").unwrap(),
            BasketDb::parse(&u, "AB\nAC\nABC\nBD\nD").unwrap(),
            generator::uniform_random(3, 4, 40, 0.4),
            BasketDb::new(4),
        ];
        let constraints = parse(
            &u,
            &[
                "A -> {B, CD}",
                "A -> {B}",
                "C -> {A}",
                "D -> {}",
                "A -> {B, C}",
                "AB -> {B}",
            ],
        );
        for db in &dbs {
            let s = support::support_function(db);
            for c in &constraints {
                let disj = to_disjunctive(c).satisfied_by(db);
                let via_support_fn = crate::semantics::satisfies(&s, c);
                let via_differential = support_function_satisfies(db, c);
                assert_eq!(disj, via_support_fn, "Prop 6.3 failed for {}", c.format(&u));
                assert_eq!(
                    disj,
                    via_differential,
                    "frequency shortcut failed for {}",
                    c.format(&u)
                );
            }
        }
    }

    #[test]
    fn proposition_6_4_implication_equivalence() {
        let u = u4();
        let premise_sets = vec![
            parse(&u, &["A -> {B}", "B -> {C}"]),
            parse(&u, &["A -> {BC, CD}", "C -> {D}"]),
            parse(&u, &["A -> {B, CD}"]),
            vec![],
        ];
        let goals = parse(
            &u,
            &[
                "A -> {C}",
                "AB -> {D}",
                "A -> {B}",
                "C -> {A}",
                "A -> {B, CD}",
                "AB -> {B}",
            ],
        );
        for premises in &premise_sets {
            for goal in &goals {
                let general = implication::implies(&u, premises, goal);
                let over_supports = implies_over_supports(&u, premises, goal);
                assert_eq!(
                    general,
                    over_supports,
                    "Prop 6.4 failed: F(S) vs support(S) on {}",
                    goal.format(&u)
                );
                // And the disjunctive formulation.
                let disj_premises: Vec<DisjunctiveConstraint> =
                    premises.iter().map(to_disjunctive).collect();
                assert_eq!(
                    general,
                    disjunctive_implies(&u, &disj_premises, &to_disjunctive(goal))
                );
            }
        }
    }

    #[test]
    fn translation_round_trip() {
        let u = u4();
        let c = DiffConstraint::parse("A -> {B, CD}", &u).unwrap();
        assert_eq!(from_disjunctive(&to_disjunctive(&c)), c);
    }

    #[test]
    fn section_6_1_1_acd_example() {
        // Paper: if {A,B,D} and {B,C,D} are disjunctive on account of A → {B, D}
        // and B → {C, D}, then {A,C,D} is disjunctive by transitivity — so it need
        // not be retained.
        let u = u4();
        let known = parse(&u, &["A -> {B, D}", "B -> {C, D}"]);
        let inferable = inferable_disjunctive_itemsets(&u, &known);
        assert!(inferable.contains(&u.parse_set("ABD").unwrap()));
        assert!(inferable.contains(&u.parse_set("BCD").unwrap()));
        assert!(
            inferable.contains(&u.parse_set("ACD").unwrap()),
            "ACD should be derivable as disjunctive (the paper's transitivity example)"
        );
        // Supersets of disjunctive sets are disjunctive (augmentation).
        assert!(inferable.contains(&u.parse_set("ABCD").unwrap()));
        // A set too small to host a nontrivial constraint is not inferable.
        assert!(!inferable.contains(&u.parse_set("A").unwrap()));
        assert!(!inferable.contains(&AttrSet::EMPTY));
    }

    #[test]
    fn inferable_itemsets_are_sound_on_planted_databases() {
        // Plant the known constraints in a random database; every itemset declared
        // disjunctive by inference must indeed be disjunctive in the database
        // (Definition 6.2 with general right-hand sides).
        let u = u4();
        let known = parse(&u, &["A -> {B, D}", "B -> {C, D}"]);
        let base = generator::uniform_random(17, 4, 60, 0.35);
        let db = generator::with_planted_rules(
            &base,
            &known.iter().map(to_disjunctive).collect::<Vec<_>>(),
        );
        for w in inferable_disjunctive_itemsets(&u, &known) {
            assert!(
                fis::disjunctive::is_disjunctive(&db, w, 3),
                "itemset {} declared disjunctive by inference but not in the data",
                u.format_set(w)
            );
        }
    }

    #[test]
    fn empty_database_satisfies_everything() {
        let u = u4();
        let db = BasketDb::new(4);
        for text in ["A -> {B}", "A -> {}", " -> {A}"] {
            let c = DiffConstraint::parse(text, &u).unwrap();
            assert!(support_function_satisfies(&db, &c));
        }
        // But not ∅ → ∅?  s_B(∅) = 0 for the empty database, so its density is
        // identically zero and even ∅ → ∅ holds.
        let c = DiffConstraint::new(AttrSet::EMPTY, Family::empty());
        assert!(support_function_satisfies(&db, &c));
    }
}
