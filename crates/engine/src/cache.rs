//! A bounded least-recently-used cache with hit/miss/eviction accounting.
//!
//! The engine memoizes three kinds of derived data — lattice decompositions,
//! propositional translations, and full query answers — all behind instances
//! of this one cache.  It is a classic slab-backed LRU: a `HashMap` from key
//! to slot index plus an intrusive doubly-linked recency list threaded
//! through a slot vector, so `get`, `insert` and eviction are all `O(1)`
//! expected.
//!
//! A capacity of `0` disables the cache entirely (every `get` misses, every
//! `insert` is a no-op), which the engine's tests use to prove answers do not
//! depend on caching.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Counters describing how a cache has been used.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls that found their key.
    pub hits: u64,
    /// `get` calls that did not.
    pub misses: u64,
    /// Entries displaced by inserts at capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; `0` when the cache has never been queried.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded LRU map from `K` to `V`.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    stats: CacheStats,
}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            slots: Vec::with_capacity(capacity.min(1 << 16)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` iff the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Usage counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        match self.map.get(key).copied() {
            Some(slot) => {
                self.stats.hits += 1;
                self.detach(slot);
                self.attach_front(slot);
                Some(&self.slots[slot].value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks up `key` without touching recency or counters.
    pub fn peek<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map.get(key).map(|&slot| &self.slots[slot].value)
    }

    /// Inserts `key → value`, evicting the least-recently-used entry when at
    /// capacity.  Replacing an existing key promotes it.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].value = value;
            self.detach(slot);
            self.attach_front(slot);
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.detach(lru);
            self.map.remove(&self.slots[lru].key);
            self.free.push(lru);
            self.stats.evictions += 1;
        }
        let slot = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.attach_front(slot);
    }

    /// Drops every entry (counters are kept; they describe the lifetime of
    /// the cache, not its current contents).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn attach_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_and_hits() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        c.insert(1, "one");
        c.insert(2, "two");
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.get(&3), None);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        let _ = c.get(&1); // 2 is now LRU
        c.insert(3, 30);
        assert_eq!(c.peek(&2), None, "2 should have been evicted");
        assert_eq!(c.peek(&1), Some(&10));
        assert_eq!(c.peek(&3), Some(&30));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_promotes_and_replaces() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // promote 1, replace value
        c.insert(3, 30); // evicts 2
        assert_eq!(c.peek(&1), Some(&11));
        assert_eq!(c.peek(&2), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn single_slot_cache_churns_correctly() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        for i in 0..100 {
            c.insert(i, i * 2);
            assert_eq!(c.get(&i), Some(&(i * 2)));
            assert_eq!(c.len(), 1);
        }
        assert_eq!(c.stats().evictions, 99);
    }

    #[test]
    fn heavy_mixed_workload_stays_consistent() {
        // Mirror against a reference model: repeatedly insert/get and check
        // the cache never exceeds capacity and hits agree with presence.
        let mut c: LruCache<u64, u64> = LruCache::new(16);
        let mut present: std::collections::VecDeque<u64> = Default::default();
        let mut x: u64 = 0x123456789;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 33) % 48;
            if x & 1 == 0 {
                let was_present = present.contains(&key);
                if !was_present {
                    if present.len() == 16 {
                        present.pop_back();
                    }
                } else {
                    present.retain(|&k| k != key);
                }
                present.push_front(key);
                c.insert(key, key);
            } else {
                let hit = c.get(&key).is_some();
                assert_eq!(hit, present.contains(&key), "divergence at key {key}");
                if hit {
                    present.retain(|&k| k != key);
                    present.push_front(key);
                }
            }
            assert!(c.len() <= 16);
        }
    }
}
