//! Workload constructors and count-table builders for the experiments.
//!
//! Every experiment id mentioned here refers to the index in `DESIGN.md` /
//! `EXPERIMENTS.md` (E1–E10).

use diffcon::constraint::DiffConstraint;
use diffcon::random::{ConstraintGenerator, ConstraintShape};
use diffcon::{fd_fragment, implication, inference, prop_bridge};
use fis::basket::BasketDb;
use fis::condensed::CondensedRepresentation;
use fis::generator::{self as fis_gen, QuestConfig};
use fis::{apriori, border};
use proplogic::dnf::{Dnf, DnfTerm};
use relational::distribution::ProbabilisticRelation;
use relational::generator as rel_gen;
use setlat::{AttrSet, Family, Universe};

use crate::report::Table;

/// A random implication instance: universe, premises and a batch of goals
/// (roughly half of them implied by construction).
pub struct ImplicationWorkload {
    /// The attribute universe.
    pub universe: Universe,
    /// The premise set `C`.
    pub premises: Vec<DiffConstraint>,
    /// Goal constraints to decide.
    pub goals: Vec<DiffConstraint>,
}

/// Builds a random implication workload over `n` attributes with
/// `num_premises` premises and `num_goals` goals (E1, E3, E4).
pub fn implication_workload(
    seed: u64,
    n: usize,
    num_premises: usize,
    num_goals: usize,
) -> ImplicationWorkload {
    let universe = Universe::of_size(n);
    let shape = ConstraintShape {
        max_lhs: 2,
        max_members: 3,
        max_member_size: 2,
        allow_trivial: false,
    };
    let mut gen = ConstraintGenerator::new(seed, &universe);
    let premises = gen.constraint_set(num_premises, &shape);
    let mut goals = Vec::with_capacity(num_goals);
    for i in 0..num_goals {
        if i % 2 == 0 {
            goals.push(gen.implied_goal(&premises));
        } else {
            goals.push(gen.constraint(&shape));
        }
    }
    ImplicationWorkload {
        universe,
        premises,
        goals,
    }
}

/// One step of the Knuth LCG used by the seed-stretching helpers below; the
/// call sites pick which high bits of the new state to use.
fn lcg_step(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// A serving-style query stream: a fixed premise set plus `stream_len` goal
/// queries drawn (with repetition) from a pool of `pool_size` distinct goals.
///
/// Repetition is what distinguishes a *serving* workload from a one-shot
/// batch: a production constraint checker sees the same goals over and over
/// as clients re-validate, which is exactly what the engine's answer cache
/// amortizes.  Used by `bench_engine_throughput`.
pub fn engine_query_stream(
    seed: u64,
    n: usize,
    num_premises: usize,
    pool_size: usize,
    stream_len: usize,
) -> (ImplicationWorkload, Vec<DiffConstraint>) {
    let base = implication_workload(seed, n, num_premises, pool_size);
    let mut state = seed ^ 0x5DEECE66D;
    let stream: Vec<DiffConstraint> = (0..stream_len)
        .map(|_| base.goals[((lcg_step(&mut state) >> 33) as usize) % base.goals.len()].clone())
        .collect();
    (base, stream)
}

/// Builds the chain instance `A₀ → {A₁}, A₁ → {A₂}, …` over `n` attributes with
/// goal `A₀ → {A_{n−1}}` — the canonical FD-fragment workload (E9).
pub fn fd_chain_workload(n: usize) -> ImplicationWorkload {
    assert!(n >= 2);
    let universe = Universe::of_size(n);
    let premises: Vec<DiffConstraint> = (0..n - 1)
        .map(|i| {
            DiffConstraint::new(
                AttrSet::singleton(i),
                Family::single(AttrSet::singleton(i + 1)),
            )
        })
        .collect();
    let goals = vec![DiffConstraint::new(
        AttrSet::singleton(0),
        Family::single(AttrSet::singleton(n - 1)),
    )];
    ImplicationWorkload {
        universe,
        premises,
        goals,
    }
}

/// Builds a pseudo-random DNF formula over `n` variables with `terms` terms —
/// the raw material of the coNP-hardness reduction (E4).
pub fn random_dnf(seed: u64, n: usize, terms: usize) -> Dnf {
    let mut state = seed ^ 0x9E3779B97F4A7C15;
    let mut next = || lcg_step(&mut state) >> 11;
    let mask = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut out = Vec::with_capacity(terms);
    for _ in 0..terms {
        let pos = AttrSet::from_bits(next() & mask);
        let neg = AttrSet::from_bits(next() & mask).difference(pos);
        out.push(DnfTerm::new(pos, neg));
    }
    Dnf::new(out)
}

/// A "hard" DNF family: the parity-style formula whose tautology check forces a
/// solver to explore many branches (it *is* a tautology), over `n` variables.
///
/// The formula says "some variable is true or all variables are false", written
/// with one term per variable plus the all-negative term — a tautology whose
/// refutation requires ruling out every assignment pattern.
pub fn covering_dnf(n: usize) -> Dnf {
    let mut terms: Vec<DnfTerm> = (0..n)
        .map(|i| DnfTerm::new(AttrSet::singleton(i), AttrSet::EMPTY))
        .collect();
    terms.push(DnfTerm::new(AttrSet::EMPTY, AttrSet::full(n)));
    Dnf::new(terms)
}

/// Builds the Quest-style basket workload used by the FIS experiments (E5, E6).
pub fn fis_workload(seed: u64, num_items: usize, num_baskets: usize) -> BasketDb {
    let config = QuestConfig {
        num_items,
        num_baskets,
        num_patterns: (num_items / 2).max(3),
        avg_pattern_len: 3,
        patterns_per_basket: 2,
        noise_prob: 0.05,
    };
    fis_gen::quest_like(seed, &config)
}

/// Builds the relational workload used by the Simpson experiments (E7):
/// a relation with a planted FD chain plus noise attributes, under a random
/// distribution.
pub fn relational_workload(seed: u64, arity: usize, tuples: usize) -> ProbabilisticRelation {
    use relational::fd::FunctionalDependency;
    let fds: Vec<FunctionalDependency> = (0..arity.saturating_sub(1).min(3))
        .map(|i| FunctionalDependency::new(AttrSet::singleton(i), AttrSet::singleton(i + 1)))
        .collect();
    let relation = rel_gen::relation_with_fds(seed, arity, tuples, 6, &fds);
    rel_gen::random_distribution(seed.wrapping_add(1), relation)
}

/// E3 count table: lattice-decomposition sizes and premise counts per universe
/// size, for the workloads measured by `bench_lattice_decision`.
pub fn table_lattice_sizes(sizes: &[usize]) -> Table {
    let mut table = Table::new(
        "E3: lattice decomposition size vs universe size (random goals)",
        ["|S|", "premises", "goal |L(X,Y)| (mean)", "2^|S|"],
    );
    for &n in sizes {
        let w = implication_workload(42, n, 6, 8);
        let mean: f64 = w
            .goals
            .iter()
            .map(|g| g.lattice_size(&w.universe) as f64)
            .sum::<f64>()
            / w.goals.len() as f64;
        table.push_row([
            n.to_string(),
            w.premises.len().to_string(),
            format!("{mean:.1}"),
            (1u64 << n).to_string(),
        ]);
    }
    table
}

/// E1 count table: proof sizes produced by the completeness engine on implied
/// goals, per universe size.
pub fn table_proof_sizes(sizes: &[usize]) -> Table {
    let mut table = Table::new(
        "E1: derivation size / depth for implied goals (completeness engine)",
        ["|S|", "goals derived", "mean proof size", "max depth"],
    );
    for &n in sizes {
        let w = implication_workload(7, n, 5, 10);
        let mut sizes_acc = Vec::new();
        let mut max_depth = 0usize;
        for goal in &w.goals {
            if let Some(proof) = inference::derive(&w.universe, &w.premises, goal) {
                proof
                    .verify(&w.universe, &w.premises)
                    .expect("generated proofs must verify");
                sizes_acc.push(proof.size());
                max_depth = max_depth.max(proof.depth());
            }
        }
        let mean = if sizes_acc.is_empty() {
            0.0
        } else {
            sizes_acc.iter().sum::<usize>() as f64 / sizes_acc.len() as f64
        };
        table.push_row([
            n.to_string(),
            sizes_acc.len().to_string(),
            format!("{mean:.1}"),
            max_depth.to_string(),
        ]);
    }
    table
}

/// E6 count table: sizes of the competing representations of the frequency
/// information at several thresholds.
pub fn table_condensed_sizes(db: &BasketDb, thresholds: &[usize]) -> Table {
    let mut table = Table::new(
        "E6: representation sizes (all frequent vs negative border vs FDFree/Bd-)",
        [
            "kappa",
            "#frequent",
            "|neg border|",
            "|FDFree|",
            "|Bd-|",
            "condensed total",
        ],
    );
    for &kappa in thresholds {
        let frequent = border::count_frequent(db, kappa);
        let neg = border::negative_border(db, kappa).len();
        let repr = CondensedRepresentation::build(db, kappa);
        table.push_row([
            kappa,
            frequent,
            neg,
            repr.fdfree.len(),
            repr.border.len(),
            repr.size(),
        ]);
    }
    table
}

/// E8/E4 agreement table: on random instances, every decision procedure must
/// return the same verdict; the table records the number of instances and the
/// fraction decided "implied".
pub fn table_procedure_agreement(seeds: &[u64], n: usize) -> Table {
    let mut table = Table::new(
        "E4/E8: decision-procedure agreement on random instances",
        [
            "seed",
            "goals",
            "implied",
            "lattice=SAT",
            "lattice=semantic",
            "lattice=fragment*",
        ],
    );
    for &seed in seeds {
        let w = implication_workload(seed, n, 5, 12);
        let mut implied = 0usize;
        let mut agree_sat = true;
        let mut agree_sem = true;
        let mut agree_frag = true;
        for goal in &w.goals {
            let lattice = implication::implies(&w.universe, &w.premises, goal);
            if lattice {
                implied += 1;
            }
            agree_sat &= lattice == prop_bridge::implies_sat(&w.universe, &w.premises, goal);
            agree_sem &= lattice == implication::implies_semantic(&w.universe, &w.premises, goal);
            if fd_fragment::set_in_fragment(&w.premises) && fd_fragment::in_fragment(goal) {
                agree_frag &= lattice == fd_fragment::implies_polynomial(&w.premises, goal);
            }
        }
        table.push_row([
            seed.to_string(),
            w.goals.len().to_string(),
            implied.to_string(),
            agree_sat.to_string(),
            agree_sem.to_string(),
            agree_frag.to_string(),
        ]);
    }
    table
}

/// E5 count table: Apriori work vs the ground truth on the Quest workload.
pub fn table_apriori_counts(db: &BasketDb, thresholds: &[usize]) -> Table {
    let mut table = Table::new(
        "E5: Apriori candidates counted vs frequent itemsets found",
        [
            "kappa",
            "#frequent",
            "candidates counted",
            "levels",
            "|neg border|",
        ],
    );
    for &kappa in thresholds {
        let result = apriori::apriori(db, kappa);
        table.push_row([
            kappa,
            result.num_frequent(),
            result.candidates_counted,
            result.levels,
            result.negative_border.len(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implication_workload_is_well_formed() {
        let w = implication_workload(1, 6, 5, 8);
        assert_eq!(w.universe.len(), 6);
        assert_eq!(w.premises.len(), 5);
        assert_eq!(w.goals.len(), 8);
        // Even-indexed goals are implied by construction.
        for (i, goal) in w.goals.iter().enumerate() {
            if i % 2 == 0 {
                assert!(implication::implies(&w.universe, &w.premises, goal));
            }
        }
    }

    #[test]
    fn fd_chain_is_in_fragment_and_implied() {
        let w = fd_chain_workload(8);
        assert!(fd_fragment::set_in_fragment(&w.premises));
        assert!(fd_fragment::in_fragment(&w.goals[0]));
        assert!(fd_fragment::implies_polynomial(&w.premises, &w.goals[0]));
        assert!(implication::implies(&w.universe, &w.premises, &w.goals[0]));
    }

    #[test]
    fn covering_dnf_is_a_tautology() {
        for n in 2..6 {
            let u = Universe::of_size(n);
            let dnf = covering_dnf(n);
            assert!(dnf.is_tautology_exhaustive(&u));
            assert!(prop_bridge::dnf_is_tautology_via_constraints(&dnf, &u));
        }
    }

    #[test]
    fn random_dnf_is_reproducible() {
        assert_eq!(random_dnf(3, 6, 4), random_dnf(3, 6, 4));
        assert_ne!(random_dnf(3, 6, 4), random_dnf(4, 6, 4));
    }

    #[test]
    fn tables_have_expected_shapes() {
        let lattice = table_lattice_sizes(&[4, 5]);
        assert_eq!(lattice.len(), 2);
        let proofs = table_proof_sizes(&[4]);
        assert_eq!(proofs.len(), 1);
        let db = fis_workload(5, 8, 60);
        let condensed = table_condensed_sizes(&db, &[6, 12]);
        assert_eq!(condensed.len(), 2);
        let apriori_t = table_apriori_counts(&db, &[6, 12]);
        assert_eq!(apriori_t.len(), 2);
        let agreement = table_procedure_agreement(&[1, 2], 5);
        assert_eq!(agreement.len(), 2);
        // Agreement columns must all read "true".
        let text = agreement.to_string();
        assert!(!text.contains("false"), "procedures disagreed:\n{text}");
    }

    #[test]
    fn workload_generators_produce_nonempty_data() {
        let db = fis_workload(1, 10, 80);
        assert_eq!(db.len(), 80);
        let pr = relational_workload(2, 5, 40);
        assert!(pr.relation().len() > 5);
    }
}
