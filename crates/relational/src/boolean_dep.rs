//! Positive boolean dependencies (Sagiv–Delobel–Parker–Fagin), in the form the
//! paper uses them in Section 7.
//!
//! The positive boolean dependency `X ⇒bool 𝒴` is the statement (formula (6) of
//! the paper):
//!
//! ```text
//! ∀ t, t′ ∈ r :  t[X] = t′[X]  ⇒  ⋁_{Y ∈ 𝒴} t[Y] = t′[Y].
//! ```
//!
//! Functional dependencies are the `𝒴 = {Y}` special case.  Proposition 7.3
//! states that a probabilistic relation's Simpson function satisfies the
//! differential constraint `X → 𝒴` iff the relation satisfies `X ⇒bool 𝒴`.

use crate::relation::Relation;
use setlat::{AttrSet, Family, Universe};

/// A positive boolean dependency `X ⇒bool 𝒴`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BooleanDependency {
    /// The antecedent attribute set `X`.
    pub lhs: AttrSet,
    /// The consequent family `𝒴`.
    pub rhs: Family,
}

impl BooleanDependency {
    /// Creates the dependency `X ⇒bool 𝒴`.
    pub fn new(lhs: AttrSet, rhs: Family) -> Self {
        BooleanDependency { lhs, rhs }
    }

    /// The functional dependency `X → Y` seen as a boolean dependency.
    pub fn from_fd(lhs: AttrSet, rhs: AttrSet) -> Self {
        BooleanDependency {
            lhs,
            rhs: Family::single(rhs),
        }
    }

    /// Returns `true` iff the dependency is trivial (some `Y ∈ 𝒴` with `Y ⊆ X`).
    pub fn is_trivial(&self) -> bool {
        self.rhs.some_member_subset_of(self.lhs)
    }

    /// Returns `true` iff the relation satisfies the dependency.
    ///
    /// Every pair of tuples (including a tuple with itself, which is vacuous
    /// unless `𝒴 = ∅` and even then holds because `t[Y] = t[Y]`… except that
    /// with `𝒴 = ∅` the disjunction is empty and false, so a relation satisfies
    /// `X ⇒bool ∅` only if no two tuples — not even a tuple with itself — agree
    /// on `X`, i.e. only if `r` is empty.  This matches the differential-
    /// constraint semantics where `X → ∅` forces the density to vanish on the
    /// whole interval above `X`.)
    pub fn satisfied_by(&self, relation: &Relation) -> bool {
        let tuples = relation.tuples();
        for t in tuples {
            for t_prime in tuples {
                if Relation::tuples_agree_on(t, t_prime, self.lhs)
                    && !self
                        .rhs
                        .iter()
                        .any(|y| Relation::tuples_agree_on(t, t_prime, y))
                {
                    return false;
                }
            }
        }
        true
    }

    /// Pretty-prints the dependency, e.g. `"A ⇒bool {B, CD}"`.
    pub fn format(&self, universe: &Universe) -> String {
        format!(
            "{} ⇒bool {}",
            universe.format_set(self.lhs),
            self.rhs.format(universe)
        )
    }
}

/// Decides whether a relation satisfies all dependencies in a list.
pub fn all_satisfied(relation: &Relation, deps: &[BooleanDependency]) -> bool {
    deps.iter().all(|d| d.satisfied_by(relation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::FunctionalDependency;

    fn u() -> Universe {
        Universe::of_size(4)
    }

    fn sample() -> Relation {
        Relation::from_tuples(
            4,
            vec![
                vec![1, 10, 100, 7],
                vec![1, 10, 200, 7],
                vec![2, 20, 100, 7],
                vec![2, 30, 100, 8],
            ],
        )
    }

    #[test]
    fn fd_special_case_agrees_with_fd_satisfaction() {
        let u = u();
        let r = sample();
        for lhs_mask in 0u64..16 {
            for rhs_mask in 0u64..16 {
                let lhs = AttrSet::from_bits(lhs_mask);
                let rhs = AttrSet::from_bits(rhs_mask);
                let fd = FunctionalDependency::new(lhs, rhs);
                let bd = BooleanDependency::from_fd(lhs, rhs);
                assert_eq!(
                    fd.satisfied_by(&r),
                    bd.satisfied_by(&r),
                    "FD/BD disagree on {} (universe {:?})",
                    fd.format(&u),
                    u.names()
                );
            }
        }
    }

    #[test]
    fn disjunctive_dependency() {
        let u = u();
        let r = sample();
        // A ⇒bool {B, C}: tuples agreeing on A must agree on B or on C.
        // Tuples 1&2 agree on A and on B; tuples 3&4 agree on A and on C. Holds.
        let dep = BooleanDependency::new(
            u.parse_set("A").unwrap(),
            Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("C").unwrap()]),
        );
        assert!(dep.satisfied_by(&r));
        // A ⇒bool {B} fails (tuples 3&4), and A ⇒bool {C} fails (tuples 1&2).
        assert!(
            !BooleanDependency::from_fd(u.parse_set("A").unwrap(), u.parse_set("B").unwrap())
                .satisfied_by(&r)
        );
        assert!(
            !BooleanDependency::from_fd(u.parse_set("A").unwrap(), u.parse_set("C").unwrap())
                .satisfied_by(&r)
        );
    }

    #[test]
    fn empty_family_requires_empty_relation() {
        let u = u();
        let dep = BooleanDependency::new(u.parse_set("A").unwrap(), Family::empty());
        assert!(!dep.satisfied_by(&sample()));
        assert!(dep.satisfied_by(&Relation::new(4)));
    }

    #[test]
    fn trivial_dependency_always_holds() {
        let u = u();
        let dep = BooleanDependency::new(
            u.parse_set("AB").unwrap(),
            Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("CD").unwrap()]),
        );
        assert!(dep.is_trivial());
        assert!(dep.satisfied_by(&sample()));
    }

    #[test]
    fn all_satisfied_helper() {
        let u = u();
        let r = sample();
        let deps = vec![
            BooleanDependency::from_fd(u.parse_set("B").unwrap(), u.parse_set("A").unwrap()),
            BooleanDependency::new(
                u.parse_set("A").unwrap(),
                Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("C").unwrap()]),
            ),
        ];
        assert!(all_satisfied(&r, &deps));
    }

    #[test]
    fn formatting() {
        let u = u();
        let dep = BooleanDependency::new(
            u.parse_set("A").unwrap(),
            Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("CD").unwrap()]),
        );
        assert_eq!(dep.format(&u), "A ⇒bool {B, CD}");
    }
}
