//! A small text parser for propositional formulas.
//!
//! Grammar (whitespace-insensitive, case-sensitive attribute names):
//!
//! ```text
//! formula    ::= iff
//! iff        ::= implies ( "<->" implies )*
//! implies    ::= or ( "->" or )*            (right-associative)
//! or         ::= and ( ("|" | "∨" | "or") and )*
//! and        ::= unary ( ("&" | "∧" | "and") unary )*
//! unary      ::= ("!" | "¬" | "not") unary | atom
//! atom       ::= "true" | "false" | NAME | "(" formula ")"
//! ```
//!
//! Attribute names are resolved against a [`setlat::Universe`]; a
//! name not present in the universe is a parse error.  The Unicode connectives
//! used by [`Formula::format`](crate::formula::Formula::format) — `¬ ∧ ∨ ⇒ ⇔ ⊤ ⊥`
//! — are accepted as synonyms, so formatting round-trips through the parser.

use crate::formula::Formula;
use setlat::Universe;
use std::fmt;

/// Errors produced by the formula parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a formula over the attribute names of the given universe.
pub fn parse_formula(input: &str, universe: &Universe) -> Result<Formula, ParseError> {
    let mut parser = Parser {
        tokens: tokenize(input)?,
        pos: 0,
        universe,
    };
    let formula = parser.parse_iff()?;
    if parser.pos != parser.tokens.len() {
        return Err(ParseError {
            message: format!(
                "unexpected trailing input near {:?}",
                parser.tokens[parser.pos].text
            ),
            position: parser.tokens[parser.pos].offset,
        });
    }
    Ok(formula)
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Token {
    text: String,
    offset: usize,
}

fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let offset = i;
        match c {
            '(' | ')' | '!' | '¬' | '&' | '∧' | '|' | '∨' => {
                tokens.push(Token {
                    text: c.to_string(),
                    offset,
                });
                i += 1;
            }
            '-' | '<' => {
                // "->" or "<->"
                let rest: String = chars[i..].iter().take(3).collect();
                if rest.starts_with("<->") {
                    tokens.push(Token {
                        text: "<->".to_string(),
                        offset,
                    });
                    i += 3;
                } else if rest.starts_with("->") {
                    tokens.push(Token {
                        text: "->".to_string(),
                        offset,
                    });
                    i += 2;
                } else {
                    return Err(ParseError {
                        message: format!("unexpected character {c:?}"),
                        position: offset,
                    });
                }
            }
            '⇒' => {
                tokens.push(Token {
                    text: "->".to_string(),
                    offset,
                });
                i += 1;
            }
            '⇔' => {
                tokens.push(Token {
                    text: "<->".to_string(),
                    offset,
                });
                i += 1;
            }
            '⊤' => {
                tokens.push(Token {
                    text: "true".to_string(),
                    offset,
                });
                i += 1;
            }
            '⊥' => {
                tokens.push(Token {
                    text: "false".to_string(),
                    offset,
                });
                i += 1;
            }
            _ if c.is_alphanumeric() || c == '_' => {
                let mut word = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    word.push(chars[i]);
                    i += 1;
                }
                tokens.push(Token { text: word, offset });
            }
            _ => {
                return Err(ParseError {
                    message: format!("unexpected character {c:?}"),
                    position: offset,
                });
            }
        }
    }
    Ok(tokens)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    universe: &'a Universe,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn eat(&mut self, text: &str) -> bool {
        if self.peek().map(|t| t.text.as_str()) == Some(text) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.peek().map(|t| t.offset).unwrap_or(usize::MAX),
        }
    }

    fn parse_iff(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.parse_implies()?;
        while self.eat("<->") {
            let rhs = self.parse_implies()?;
            lhs = Formula::iff(lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_implies(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.parse_or()?;
        if self.eat("->") {
            let rhs = self.parse_implies()?; // right-associative
            Ok(Formula::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn parse_or(&mut self) -> Result<Formula, ParseError> {
        let mut items = vec![self.parse_and()?];
        while self.eat("|") || self.eat("∨") || self.eat("or") {
            items.push(self.parse_and()?);
        }
        Ok(Formula::or(items))
    }

    fn parse_and(&mut self) -> Result<Formula, ParseError> {
        let mut items = vec![self.parse_unary()?];
        while self.eat("&") || self.eat("∧") || self.eat("and") {
            items.push(self.parse_unary()?);
        }
        Ok(Formula::and(items))
    }

    fn parse_unary(&mut self) -> Result<Formula, ParseError> {
        if self.eat("!") || self.eat("¬") || self.eat("not") {
            Ok(Formula::not(self.parse_unary()?))
        } else {
            self.parse_atom()
        }
    }

    fn parse_atom(&mut self) -> Result<Formula, ParseError> {
        if self.eat("(") {
            let inner = self.parse_iff()?;
            if !self.eat(")") {
                return Err(self.error_here("expected ')'"));
            }
            return Ok(inner);
        }
        let token = self
            .peek()
            .cloned()
            .ok_or_else(|| self.error_here("unexpected end of input"))?;
        match token.text.as_str() {
            "true" => {
                self.pos += 1;
                Ok(Formula::True)
            }
            "false" => {
                self.pos += 1;
                Ok(Formula::False)
            }
            name => match self.universe.index_of(name) {
                Some(idx) => {
                    self.pos += 1;
                    Ok(Formula::var(idx))
                }
                None => Err(ParseError {
                    message: format!("unknown attribute {name:?}"),
                    position: token.offset,
                }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlat::AttrSet;

    fn u() -> Universe {
        Universe::of_size(4)
    }

    #[test]
    fn parses_variables_and_constants() {
        let u = u();
        assert_eq!(parse_formula("A", &u).unwrap(), Formula::var(0));
        assert_eq!(parse_formula("true", &u).unwrap(), Formula::True);
        assert_eq!(parse_formula("false", &u).unwrap(), Formula::False);
    }

    #[test]
    fn parses_connectives_with_precedence() {
        let u = u();
        // A -> B | C & D parses as A -> (B ∨ (C ∧ D)).
        let f = parse_formula("A -> B | C & D", &u).unwrap();
        let expected = Formula::implies(
            Formula::var(0),
            Formula::or([
                Formula::var(1),
                Formula::and([Formula::var(2), Formula::var(3)]),
            ]),
        );
        for mask in 0u64..16 {
            let a = AttrSet::from_bits(mask);
            assert_eq!(f.eval(a), expected.eval(a));
        }
    }

    #[test]
    fn parses_negation_and_parentheses() {
        let u = u();
        let f = parse_formula("!(A & B) <-> (!A | !B)", &u).unwrap();
        for mask in 0u64..16 {
            assert!(f.eval(AttrSet::from_bits(mask)));
        }
    }

    #[test]
    fn parses_unicode_connectives() {
        let u = u();
        let f = parse_formula("A ⇒ B ∨ (C ∧ D)", &u).unwrap();
        let g = parse_formula("A -> B | (C & D)", &u).unwrap();
        for mask in 0u64..16 {
            let a = AttrSet::from_bits(mask);
            assert_eq!(f.eval(a), g.eval(a));
        }
    }

    #[test]
    fn implication_is_right_associative() {
        let u = u();
        let f = parse_formula("A -> B -> C", &u).unwrap();
        let expected = Formula::implies(
            Formula::var(0),
            Formula::implies(Formula::var(1), Formula::var(2)),
        );
        for mask in 0u64..8 {
            let a = AttrSet::from_bits(mask);
            assert_eq!(f.eval(a), expected.eval(a));
        }
    }

    #[test]
    fn rejects_unknown_attributes_and_garbage() {
        let u = u();
        assert!(parse_formula("Z", &u).is_err());
        assert!(parse_formula("A &", &u).is_err());
        assert!(parse_formula("(A", &u).is_err());
        assert!(parse_formula("A @ B", &u).is_err());
        assert!(parse_formula("A B", &u).is_err());
        assert!(parse_formula("", &u).is_err());
    }

    #[test]
    fn parses_constant_symbols() {
        let u = u();
        assert_eq!(parse_formula("⊤", &u).unwrap(), Formula::True);
        assert!(!parse_formula("⊥ ∨ A", &u).unwrap().eval(AttrSet::EMPTY));
        assert!(parse_formula("⊤ ∧ A", &u)
            .unwrap()
            .eval(AttrSet::from_indices([0])));
    }

    #[test]
    fn roundtrip_through_format() {
        let u = u();
        let f = parse_formula("A -> (B | (C & D))", &u).unwrap();
        let printed = f.format(&u);
        let reparsed = parse_formula(&printed, &u).unwrap();
        for mask in 0u64..16 {
            let a = AttrSet::from_bits(mask);
            assert_eq!(f.eval(a), reparsed.eval(a));
        }
    }
}
