//! Synthetic basket-database generators.
//!
//! The paper contains no datasets, so the experiments are driven by synthetic
//! workloads with controllable structure:
//!
//! * [`uniform_random`] — each item appears in each basket independently with a
//!   fixed probability; the "no structure" baseline, where concise
//!   representations gain little;
//! * [`quest_like`] — an IBM-Quest-style generator: a small pool of patterns is
//!   drawn first and baskets are built as unions of patterns plus noise; this
//!   produces the correlated data concise representations thrive on;
//! * [`with_planted_rules`] — post-processes a database so that a given list of
//!   disjunctive constraints holds exactly, used by the equivalence and
//!   inference experiments to plant known ground truth.

use crate::basket::BasketDb;
use crate::disjunctive::DisjunctiveConstraint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use setlat::AttrSet;

/// Configuration for the Quest-style generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuestConfig {
    /// Number of items in the universe.
    pub num_items: usize,
    /// Number of baskets to generate.
    pub num_baskets: usize,
    /// Number of base patterns to draw.
    pub num_patterns: usize,
    /// Average pattern length (geometric-ish, clamped to `[1, num_items]`).
    pub avg_pattern_len: usize,
    /// Number of patterns combined per basket.
    pub patterns_per_basket: usize,
    /// Probability that an arbitrary noise item is added to a basket.
    pub noise_prob: f64,
}

impl Default for QuestConfig {
    fn default() -> Self {
        QuestConfig {
            num_items: 12,
            num_baskets: 200,
            num_patterns: 6,
            avg_pattern_len: 3,
            patterns_per_basket: 2,
            noise_prob: 0.05,
        }
    }
}

/// Generates a database where each item appears in each basket independently
/// with probability `item_prob`.
pub fn uniform_random(seed: u64, num_items: usize, num_baskets: usize, item_prob: f64) -> BasketDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = BasketDb::new(num_items);
    for _ in 0..num_baskets {
        let mut basket = AttrSet::EMPTY;
        for item in 0..num_items {
            if rng.gen_bool(item_prob.clamp(0.0, 1.0)) {
                basket.insert(item);
            }
        }
        db.push(basket);
    }
    db
}

/// Generates a Quest-style correlated database.
pub fn quest_like(seed: u64, config: &QuestConfig) -> BasketDb {
    assert!(config.num_items >= 1 && config.num_items <= 60);
    let mut rng = StdRng::seed_from_u64(seed);

    // Draw the pattern pool.
    let mut patterns: Vec<AttrSet> = Vec::with_capacity(config.num_patterns);
    for _ in 0..config.num_patterns {
        let len = rng
            .gen_range(1..=(2 * config.avg_pattern_len).max(1))
            .min(config.num_items);
        let mut pattern = AttrSet::EMPTY;
        while pattern.len() < len {
            pattern.insert(rng.gen_range(0..config.num_items));
        }
        patterns.push(pattern);
    }

    let mut db = BasketDb::new(config.num_items);
    for _ in 0..config.num_baskets {
        let mut basket = AttrSet::EMPTY;
        for _ in 0..config.patterns_per_basket.max(1) {
            let pattern = patterns[rng.gen_range(0..patterns.len())];
            basket = basket.union(pattern);
        }
        for item in 0..config.num_items {
            if rng.gen_bool(config.noise_prob.clamp(0.0, 1.0)) {
                basket.insert(item);
            }
        }
        db.push(basket);
    }
    db
}

/// Post-processes `db` so that every constraint in `constraints` is satisfied:
/// any basket violating a constraint (it contains the antecedent but no
/// consequent member) gets the smallest consequent member added to it.
///
/// The result satisfies every planted constraint by construction — useful
/// ground truth for the implication and equivalence experiments.  Note that
/// *additional* constraints may incidentally hold as well.
pub fn with_planted_rules(db: &BasketDb, constraints: &[DisjunctiveConstraint]) -> BasketDb {
    let mut baskets: Vec<AttrSet> = db.baskets().to_vec();
    // Iterate to a fixed point: adding items for one constraint may trigger
    // another whose antecedent just appeared.
    loop {
        let mut changed = false;
        for basket in baskets.iter_mut() {
            for c in constraints {
                if c.lhs.is_subset(*basket) && !c.rhs.iter().any(|y| y.is_subset(*basket)) {
                    // Add the smallest consequent member (empty family cannot be
                    // repaired: drop the antecedent instead by clearing one item).
                    match c.rhs.iter().min_by_key(|y| (y.len(), y.bits())) {
                        Some(y) => {
                            *basket = basket.union(y);
                        }
                        None => {
                            // X ⇒ {} requires no basket to contain X at all.
                            if let Some(item) = c.lhs.min_attr() {
                                *basket = basket.without(item);
                            }
                        }
                    }
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    BasketDb::from_baskets(db.universe_size(), baskets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlat::{Family, Universe};

    #[test]
    fn uniform_random_is_reproducible() {
        let a = uniform_random(42, 8, 50, 0.3);
        let b = uniform_random(42, 8, 50, 0.3);
        let c = uniform_random(43, 8, 50, 0.3);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 50);
        assert_eq!(a.universe_size(), 8);
    }

    #[test]
    fn uniform_random_extreme_probabilities() {
        let empty = uniform_random(1, 6, 20, 0.0);
        assert!(empty.baskets().iter().all(|b| b.is_empty()));
        let full = uniform_random(1, 6, 20, 1.0);
        assert!(full.baskets().iter().all(|b| b.len() == 6));
    }

    #[test]
    fn quest_like_produces_requested_shape() {
        let config = QuestConfig {
            num_items: 10,
            num_baskets: 100,
            ..QuestConfig::default()
        };
        let db = quest_like(7, &config);
        assert_eq!(db.len(), 100);
        assert_eq!(db.universe_size(), 10);
        // Correlated data: some pair of items should co-occur often.
        let mut max_pair_support = 0;
        for i in 0..10 {
            for j in (i + 1)..10 {
                max_pair_support = max_pair_support.max(db.support(AttrSet::from_indices([i, j])));
            }
        }
        assert!(max_pair_support > 10, "expected correlated structure");
    }

    #[test]
    fn quest_like_is_reproducible() {
        let config = QuestConfig::default();
        assert_eq!(quest_like(5, &config), quest_like(5, &config));
    }

    #[test]
    fn planted_rules_hold() {
        let u = Universe::of_size(8);
        let base = uniform_random(11, 8, 120, 0.25);
        let constraints = vec![
            DisjunctiveConstraint::new(
                u.parse_set("A").unwrap(),
                Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("CD").unwrap()]),
            ),
            DisjunctiveConstraint::new(
                u.parse_set("E").unwrap(),
                Family::single(u.parse_set("F").unwrap()),
            ),
        ];
        let planted = with_planted_rules(&base, &constraints);
        for c in &constraints {
            assert!(c.satisfied_by(&planted), "planted constraint violated");
        }
        assert_eq!(planted.len(), base.len());
    }

    #[test]
    fn planting_empty_rhs_removes_antecedent() {
        let u = Universe::of_size(4);
        let base = uniform_random(3, 4, 50, 0.5);
        let constraint = DisjunctiveConstraint::new(u.parse_set("AB").unwrap(), Family::empty());
        let planted = with_planted_rules(&base, std::slice::from_ref(&constraint));
        assert!(constraint.satisfied_by(&planted));
        assert_eq!(planted.support(u.parse_set("AB").unwrap()), 0);
    }
}
