//! Basket (transaction) databases.
//!
//! A [`BasketDb`] is the "list of baskets `B` over a set of items `S`" of the
//! paper's Section 6: an ordered multiset of itemsets.  The two fundamental
//! quantities derived from it are
//!
//! * the *cover* `B(X) = {i | X ⊆ B[i]}` — the positions of the baskets
//!   containing `X`; and
//! * the *support* `s_B(X) = |B(X)|` — how many baskets contain `X`.
//!
//! Covers are represented as sorted `Vec<usize>` of basket indices, which keeps
//! the disjunctive-constraint check `B(X) = ⋃_Y B(X ∪ Y)` (Definition 6.1) a
//! simple sorted-set comparison.

use setlat::universe::UniverseError;
use setlat::{AttrSet, Universe};
use std::fmt;

/// A parse failure in basket text, locating the offending line and token.
///
/// Returned by [`BasketDb::parse`] (and the streaming loaders layered on it)
/// so that a failed `load` is actionable: the error names the 1-based line
/// (or record) number and the token that did not parse, not just the
/// underlying universe error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasketParseError {
    /// 1-based line (or record) number of the offending basket.
    pub line: usize,
    /// The token that failed to parse (the unknown attribute name, or the
    /// whole trimmed line when the failure is not attributable to one name).
    pub token: String,
    /// The underlying universe error.
    pub source: UniverseError,
}

impl BasketParseError {
    /// Wraps a universe error raised while parsing the basket on `line`
    /// (1-based), extracting the offending token from the error when it names
    /// one and falling back to the whole record otherwise.
    pub fn at_line(line: usize, record: &str, source: UniverseError) -> Self {
        let token = match &source {
            UniverseError::UnknownAttribute(name) => name.clone(),
            _ => record.trim().to_string(),
        };
        BasketParseError {
            line,
            token,
            source,
        }
    }
}

impl fmt::Display for BasketParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}: {} (offending token `{}`)",
            self.line, self.source, self.token
        )
    }
}

impl std::error::Error for BasketParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Parses a stream of textual basket records (each in the compact `"ACD"` /
/// `"{}"` notation).  Records that trim to nothing, and `#` comment
/// records, are skipped but still counted, so the `line` of a
/// [`BasketParseError`] is always the 1-based position of the offending
/// record in the input stream — for a file, exactly the line number an
/// editor shows, whether the file uses LF or CRLF line endings (records
/// arrive here with `\r` already stripped by [`str::lines`], and a stray
/// trailing `\r` would be removed by the trim in any case).
///
/// This is the single record loop behind [`BasketDb::parse`] and the
/// streaming loaders layered on this crate (e.g. `diffcon-discover`'s
/// `Dataset::load`).
pub fn parse_records<'u, I>(
    universe: &'u Universe,
    records: I,
) -> impl Iterator<Item = Result<AttrSet, BasketParseError>> + 'u
where
    I: IntoIterator,
    I::Item: AsRef<str>,
    I::IntoIter: 'u,
{
    records
        .into_iter()
        .enumerate()
        .filter_map(move |(recno, record)| {
            let trimmed = record.as_ref().trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                return None;
            }
            Some(
                universe
                    .parse_set(trimmed)
                    .map_err(|source| BasketParseError::at_line(recno + 1, trimmed, source)),
            )
        })
}

/// Formats one basket as a record [`parse_records`] accepts: the compact set
/// notation, with the empty basket rendered as `"{}"` (the `"∅"` glyph
/// [`Universe::format_set`] uses does not re-parse as a record).
pub fn format_record(universe: &Universe, basket: AttrSet) -> String {
    if basket.is_empty() {
        "{}".to_string()
    } else {
        universe.format_set(basket)
    }
}

/// A list of baskets (transactions) over an item universe.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BasketDb {
    universe_size: usize,
    baskets: Vec<AttrSet>,
}

impl BasketDb {
    /// Creates an empty database over a universe of `n` items.
    pub fn new(universe_size: usize) -> Self {
        BasketDb {
            universe_size,
            baskets: Vec::new(),
        }
    }

    /// Creates a database from a list of baskets.
    ///
    /// # Panics
    /// Panics if a basket contains an item outside the universe.
    pub fn from_baskets<I: IntoIterator<Item = AttrSet>>(universe_size: usize, baskets: I) -> Self {
        let baskets: Vec<AttrSet> = baskets.into_iter().collect();
        let full = AttrSet::full(universe_size);
        for (i, b) in baskets.iter().enumerate() {
            assert!(
                b.is_subset(full),
                "basket #{i} ({b:?}) contains items outside a universe of {universe_size}"
            );
        }
        BasketDb {
            universe_size,
            baskets,
        }
    }

    /// Parses a database from the paper's compact notation: one basket per
    /// line, e.g. `"AB\nACD\nB"`.  Empty lines denote empty baskets only when
    /// written as `"{}"`; otherwise they are skipped, as are `#` comment
    /// lines.  Both LF and CRLF line endings are accepted.
    ///
    /// # Errors
    /// [`BasketParseError`] carrying the 1-based line number and the
    /// offending token of the first basket that fails to parse.  Skipped
    /// blank and comment lines still count toward line numbers, so the
    /// reported line is the one an editor shows — including for files
    /// written on Windows.
    pub fn parse(universe: &Universe, text: &str) -> Result<Self, BasketParseError> {
        let baskets = parse_records(universe, text.lines()).collect::<Result<Vec<_>, _>>()?;
        Ok(BasketDb::from_baskets(universe.len(), baskets))
    }

    /// Appends a basket.
    ///
    /// # Panics
    /// Panics if the basket contains items outside the universe.
    pub fn push(&mut self, basket: AttrSet) {
        assert!(
            basket.is_subset(AttrSet::full(self.universe_size)),
            "basket {basket:?} contains items outside the universe"
        );
        self.baskets.push(basket);
    }

    /// The number of items in the universe.
    #[inline]
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// The number of baskets `|B|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.baskets.len()
    }

    /// Returns `true` iff there are no baskets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.baskets.is_empty()
    }

    /// The baskets, in list order.
    pub fn baskets(&self) -> &[AttrSet] {
        &self.baskets
    }

    /// The basket at position `i`.
    pub fn basket(&self, i: usize) -> AttrSet {
        self.baskets[i]
    }

    /// The cover `B(X) = {i | X ⊆ B[i]}`, as a sorted vector of basket indices.
    pub fn cover(&self, x: AttrSet) -> Vec<usize> {
        self.baskets
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| if x.is_subset(b) { Some(i) } else { None })
            .collect()
    }

    /// The support `s_B(X) = |B(X)|`.
    pub fn support(&self, x: AttrSet) -> usize {
        self.baskets.iter().filter(|&&b| x.is_subset(b)).count()
    }

    /// The relative support `s_B(X) / |B|` (0 for an empty database).
    pub fn relative_support(&self, x: AttrSet) -> f64 {
        if self.baskets.is_empty() {
            0.0
        } else {
            self.support(x) as f64 / self.baskets.len() as f64
        }
    }

    /// The exact-multiplicity count `d^B(X) = |{i | B[i] = X}|` — how many times
    /// `X` occurs as a basket (not merely inside one).  Section 6.1 of the paper
    /// shows this equals the density of the support function.
    pub fn exact_count(&self, x: AttrSet) -> usize {
        self.baskets.iter().filter(|&&b| b == x).count()
    }

    /// Returns `true` iff `X` is frequent at absolute threshold `kappa`.
    pub fn is_frequent(&self, x: AttrSet, kappa: usize) -> bool {
        self.support(x) >= kappa
    }

    /// The set of distinct items occurring in at least one basket.
    pub fn occurring_items(&self) -> AttrSet {
        self.baskets
            .iter()
            .fold(AttrSet::EMPTY, |acc, &b| acc.union(b))
    }

    /// Formats the database, one basket per line, using the universe's notation.
    pub fn format(&self, universe: &Universe) -> String {
        self.baskets
            .iter()
            .map(|&b| universe.format_set(b))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Debug for BasketDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BasketDb({} baskets over {} items)",
            self.baskets.len(),
            self.universe_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> (Universe, BasketDb) {
        let u = Universe::of_size(4);
        let db = BasketDb::parse(&u, "AB\nABC\nACD\nB\nABCD").unwrap();
        (u, db)
    }

    #[test]
    fn parse_and_counts() {
        let (u, db) = sample_db();
        assert_eq!(db.len(), 5);
        assert_eq!(db.universe_size(), 4);
        assert_eq!(db.support(u.parse_set("A").unwrap()), 4);
        assert_eq!(db.support(u.parse_set("AB").unwrap()), 3);
        assert_eq!(db.support(u.parse_set("CD").unwrap()), 2);
        assert_eq!(db.support(AttrSet::EMPTY), 5);
        assert_eq!(db.support(u.parse_set("ABCD").unwrap()), 1);
    }

    #[test]
    fn cover_indices() {
        let (u, db) = sample_db();
        assert_eq!(db.cover(u.parse_set("AB").unwrap()), vec![0, 1, 4]);
        assert_eq!(db.cover(u.parse_set("D").unwrap()), vec![2, 4]);
        assert_eq!(db.cover(AttrSet::EMPTY), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn exact_count_vs_support() {
        let (u, db) = sample_db();
        assert_eq!(db.exact_count(u.parse_set("AB").unwrap()), 1);
        assert_eq!(db.exact_count(u.parse_set("B").unwrap()), 1);
        assert_eq!(db.exact_count(u.parse_set("AD").unwrap()), 0);
        // exact_count ≤ support always.
        for x in u.all_subsets() {
            assert!(db.exact_count(x) <= db.support(x));
        }
    }

    #[test]
    fn relative_support() {
        let (u, db) = sample_db();
        assert!((db.relative_support(u.parse_set("A").unwrap()) - 0.8).abs() < 1e-12);
        let empty = BasketDb::new(3);
        assert_eq!(empty.relative_support(AttrSet::EMPTY), 0.0);
    }

    #[test]
    fn frequency_threshold() {
        let (u, db) = sample_db();
        assert!(db.is_frequent(u.parse_set("AB").unwrap(), 3));
        assert!(!db.is_frequent(u.parse_set("AB").unwrap(), 4));
    }

    #[test]
    fn occurring_items() {
        let u = Universe::of_size(5);
        let db = BasketDb::parse(&u, "AB\nC").unwrap();
        assert_eq!(db.occurring_items(), u.parse_set("ABC").unwrap());
    }

    #[test]
    fn push_and_format_roundtrip() {
        let u = Universe::of_size(3);
        let mut db = BasketDb::new(3);
        db.push(u.parse_set("AB").unwrap());
        db.push(u.parse_set("C").unwrap());
        let text = db.format(&u);
        let reparsed = BasketDb::parse(&u, &text).unwrap();
        assert_eq!(db, reparsed);
    }

    #[test]
    fn record_format_and_parse_round_trip() {
        let u = Universe::of_size(3);
        for mask in 0u64..8 {
            let basket = AttrSet::from_bits(mask);
            let record = format_record(&u, basket);
            let parsed: Vec<_> = parse_records(&u, [record.as_str()])
                .collect::<Result<_, _>>()
                .unwrap();
            assert_eq!(parsed, vec![basket], "round trip failed for `{record}`");
        }
        // Skipped blank records still count toward positions.
        let results: Vec<_> = parse_records(&u, ["AB", "  ", "AZ"]).collect();
        assert_eq!(results.len(), 2);
        assert_eq!(results[1].as_ref().unwrap_err().line, 3);
    }

    #[test]
    fn parse_errors_carry_line_and_token() {
        let u = Universe::of_size(3);
        let err = BasketDb::parse(&u, "AB\n\nAC\nAZB\nC").unwrap_err();
        assert_eq!(err.line, 4, "blank lines still count toward line numbers");
        assert_eq!(err.token, "Z");
        assert!(matches!(
            err.source,
            setlat::universe::UniverseError::UnknownAttribute(_)
        ));
        let text = err.to_string();
        assert!(text.contains("line 4"), "got: {text}");
        assert!(text.contains("`Z`"), "got: {text}");
        // std::error::Error wiring exposes the universe error as the source.
        let dyn_err: &dyn std::error::Error = &err;
        assert!(dyn_err.source().is_some());
    }

    #[test]
    fn crlf_line_accounting_matches_an_editor() {
        let u = Universe::of_size(3);
        // A file written on Windows: CRLF endings, a blank line, a comment.
        // An editor shows the bad record `AZB` on line 5.
        let text = "AB\r\n\r\n# a comment\r\nAC\r\nAZB\r\nC\r\n";
        let err = BasketDb::parse(&u, text).unwrap_err();
        assert_eq!(err.line, 5, "CRLF + blank + comment lines miscounted");
        assert_eq!(err.token, "Z");
        // The same file with LF endings reports the same line.
        let err_lf = BasketDb::parse(&u, &text.replace("\r\n", "\n")).unwrap_err();
        assert_eq!(err_lf.line, 5);
        // Valid CRLF input parses to the same database as LF input.
        let good = "AB\r\n# trailing comment\r\n{}\r\nC";
        assert_eq!(
            BasketDb::parse(&u, good).unwrap(),
            BasketDb::parse(&u, &good.replace("\r\n", "\n")).unwrap()
        );
        assert_eq!(BasketDb::parse(&u, good).unwrap().len(), 3);
    }

    #[test]
    fn comment_records_are_skipped_but_counted() {
        let u = Universe::of_size(3);
        let db = BasketDb::parse(&u, "# header\nAB\n  # indented comment\nC").unwrap();
        assert_eq!(db.len(), 2);
        // Streamed records behave identically (the `load` verb's path).
        let results: Vec<_> = parse_records(&u, ["# note", "AB", "#", "AZ"]).collect();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].as_ref().unwrap(), &u.parse_set("AB").unwrap());
        assert_eq!(results[1].as_ref().unwrap_err().line, 4);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_universe_basket_panics() {
        let mut db = BasketDb::new(2);
        db.push(AttrSet::from_indices([5]));
    }

    #[test]
    fn monotonicity_of_support() {
        // The Apriori rule: X ⊆ Y implies s(X) ≥ s(Y).
        let (u, db) = sample_db();
        for x in u.all_subsets() {
            for y in u.all_subsets() {
                if x.is_subset(y) {
                    assert!(db.support(x) >= db.support(y));
                }
            }
        }
    }
}
