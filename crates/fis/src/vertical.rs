//! Columnar (vertical) index over a basket database.
//!
//! A [`VerticalIndex`] stores, for every item of the universe, the bitmap of
//! transaction ids whose basket contains that item — the classic *tidset*
//! layout of vertical miners like Eclat.  Once built (one pass over the
//! baskets), the two fundamental queries of Section 6 become bitmap work
//! instead of per-call full scans of the horizontal [`BasketDb`]:
//!
//! * the support `s_B(X)` is the popcount of the intersection of `|X|`
//!   columns (`O(|X| · |B|/64)` words vs. `O(|B|)` subset tests);
//! * the cover `B(X)` is that same intersection, materialized.
//!
//! The index is incremental: [`VerticalIndex::push`] appends one basket in
//! `O(|S|/64 + |basket|)`, so a streaming loader can keep it in sync with the
//! database it mirrors (see `diffcon-discover`'s `Dataset`).  The levelwise
//! miners of this crate ([`crate::apriori`], [`crate::border`]) route their
//! candidate support counting through an index built once per run.

use crate::basket::BasketDb;
use crate::eclat::TidSet;
use setlat::AttrSet;

/// A per-item tidset index over a basket database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerticalIndex {
    universe_size: usize,
    num_tids: usize,
    columns: Vec<TidSet>,
}

impl VerticalIndex {
    /// An empty index over a universe of `n` items.
    pub fn new(universe_size: usize) -> Self {
        VerticalIndex {
            universe_size,
            num_tids: 0,
            columns: (0..universe_size).map(|_| TidSet::empty(0)).collect(),
        }
    }

    /// Builds the index from a database in one pass over the baskets.
    pub fn build(db: &BasketDb) -> Self {
        let num_tids = db.len();
        let mut columns: Vec<TidSet> = (0..db.universe_size())
            .map(|_| TidSet::empty(num_tids))
            .collect();
        for (tid, &basket) in db.baskets().iter().enumerate() {
            for item in basket.iter() {
                columns[item].insert(tid);
            }
        }
        VerticalIndex {
            universe_size: db.universe_size(),
            num_tids,
            columns,
        }
    }

    /// Appends one basket as the next transaction id.
    ///
    /// # Panics
    /// Panics if the basket contains items outside the universe.
    pub fn push(&mut self, basket: AttrSet) {
        assert!(
            basket.is_subset(AttrSet::full(self.universe_size)),
            "basket {basket:?} contains items outside a universe of {}",
            self.universe_size
        );
        let tid = self.num_tids;
        self.num_tids += 1;
        for column in &mut self.columns {
            column.grow(self.num_tids);
        }
        for item in basket.iter() {
            self.columns[item].insert(tid);
        }
    }

    /// The number of items in the universe.
    #[inline]
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// The number of indexed transactions.
    #[inline]
    pub fn num_tids(&self) -> usize {
        self.num_tids
    }

    /// The tidset of one item.
    ///
    /// # Panics
    /// Panics if `item` is out of range.
    pub fn column(&self, item: usize) -> &TidSet {
        &self.columns[item]
    }

    /// The cover `B(X)` as a tidset: the intersection of the member columns
    /// (the full tidset for `X = ∅`, matching `s_B(∅) = |B|`).
    pub fn cover(&self, x: AttrSet) -> TidSet {
        let mut items = x.iter();
        let Some(first) = items.next() else {
            return TidSet::full(self.num_tids);
        };
        let mut cover = self.columns[first].clone();
        for item in items {
            if cover.is_empty() {
                break;
            }
            cover.intersect_in_place(&self.columns[item]);
        }
        cover
    }

    /// The support `s_B(X)` via column intersection.
    pub fn support(&self, x: AttrSet) -> usize {
        self.cover(x).len()
    }

    /// The cover as a sorted vector of transaction ids (the representation
    /// used by [`BasketDb::cover`]).
    pub fn cover_indices(&self, x: AttrSet) -> Vec<usize> {
        self.cover(x).iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlat::Universe;

    fn sample() -> (Universe, BasketDb) {
        let u = Universe::of_size(4);
        let db = BasketDb::parse(&u, "AB\nABC\nACD\nB\nABCD").unwrap();
        (u, db)
    }

    #[test]
    fn support_and_cover_match_the_horizontal_scan() {
        let (u, db) = sample();
        let index = VerticalIndex::build(&db);
        assert_eq!(index.num_tids(), db.len());
        for x in u.all_subsets() {
            assert_eq!(index.support(x), db.support(x), "support mismatch at {x:?}");
            assert_eq!(
                index.cover_indices(x),
                db.cover(x),
                "cover mismatch at {x:?}"
            );
        }
    }

    #[test]
    fn incremental_push_matches_batch_build() {
        let (u, db) = sample();
        let mut incremental = VerticalIndex::new(db.universe_size());
        for &basket in db.baskets() {
            incremental.push(basket);
        }
        let batch = VerticalIndex::build(&db);
        for x in u.all_subsets() {
            assert_eq!(incremental.support(x), batch.support(x));
            assert_eq!(incremental.cover_indices(x), batch.cover_indices(x));
        }
    }

    #[test]
    fn empty_database_and_empty_set() {
        let index = VerticalIndex::new(3);
        assert_eq!(index.support(AttrSet::EMPTY), 0);
        assert_eq!(index.support(AttrSet::singleton(1)), 0);
        let db = BasketDb::new(3);
        assert_eq!(VerticalIndex::build(&db).num_tids(), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_universe_push_panics() {
        let mut index = VerticalIndex::new(2);
        index.push(AttrSet::singleton(5));
    }

    #[test]
    fn full_tidset_tail_block() {
        // 65 baskets exercises the partial tail block of TidSet::full.
        let db = BasketDb::from_baskets(2, (0..65u64).map(|i| AttrSet::from_bits(i & 3)));
        let index = VerticalIndex::build(&db);
        assert_eq!(index.support(AttrSet::EMPTY), 65);
        assert_eq!(
            index.support(AttrSet::singleton(0)),
            db.support(AttrSet::singleton(0))
        );
    }
}
