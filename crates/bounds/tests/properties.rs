//! Property tests for the interval-derivation subsystem.
//!
//! Two theorems anchor the engine, and both are exercised on ≥ 1000 random
//! instances each:
//!
//! * **Soundness** — for a random basket database, random satisfied
//!   constraints, and random true knowns, the true support always lies
//!   inside the derived interval (propagation and relaxation alike), and an
//!   exact interval pins the true support.
//! * **NDI equivalence** — with *all* proper-subset supports known and *no*
//!   constraints asserted, the derived interval reproduces
//!   `fis::ndi::deduction_bounds` exactly (the engine is a strict
//!   generalization of the Calders–Goethals deduction rules).

use diffcon::DiffConstraint;
use diffcon_bounds::derive::{derive, derive_propagated, derive_relaxed};
use diffcon_bounds::{BoundsConfig, BoundsProblem, SideConditions};
use fis::basket::BasketDb;
use fis::ndi;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};
use setlat::{AttrSet, Universe};

/// Thin deterministic stream over the vendored [`StdRng`], one per seed.
struct Rng(StdRng);

impl Rng {
    fn seeded(seed: u64) -> Rng {
        Rng(StdRng::seed_from_u64(seed))
    }

    fn next(&mut self) -> u64 {
        self.0.gen_range(0..u64::MAX)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.0.gen_range(0..n.max(1))
    }
}

/// A random basket database over `n` items with up to 14 baskets.
fn random_db(rng: &mut Rng, n: usize) -> BasketDb {
    let baskets = rng.below(15);
    BasketDb::from_baskets(
        n,
        (0..baskets).map(|_| AttrSet::from_bits(rng.below(1 << n))),
    )
}

/// Random constraints drawn until `want` of them are satisfied by `db`
/// (bounded attempts — structured databases satisfy plenty).
fn satisfied_constraints(
    rng: &mut Rng,
    universe: &Universe,
    db: &BasketDb,
    want: usize,
) -> Vec<DiffConstraint> {
    let mut gen = diffcon::random::ConstraintGenerator::new(rng.next(), universe);
    let shape = diffcon::random::ConstraintShape::default();
    let mut out = Vec::new();
    for _ in 0..40 {
        if out.len() >= want {
            break;
        }
        let c = gen.constraint(&shape);
        // A support function's density is the exact-basket multiset count,
        // so `c` holds on `db` iff no basket lies in L(c).
        if !db.baskets().iter().any(|&b| c.lattice_contains(b)) {
            out.push(c);
        }
    }
    out
}

#[test]
fn derived_intervals_are_sound_on_random_instances() {
    let mut checked = 0u32;
    for seed in 0..1100u64 {
        let mut rng = Rng::seeded(seed.wrapping_mul(0x0123_4567_89AB_CDEF) ^ 0xD1FF);
        let n = 2 + (rng.below(4) as usize); // 2..=5 attributes
        let universe = Universe::of_size(n);
        let db = random_db(&mut rng, n);
        let want = rng.below(4) as usize;
        let constraints = satisfied_constraints(&mut rng, &universe, &db, want);
        // True knowns at random sets (possibly none, possibly all).
        let known_count = rng.below(1 << n) as usize;
        let mut knowns: Vec<(AttrSet, f64)> = Vec::new();
        for _ in 0..known_count {
            let x = AttrSet::from_bits(rng.below(1 << n));
            if !knowns.iter().any(|(k, _)| *k == x) {
                knowns.push((x, db.support(x) as f64));
            }
        }
        let problem = BoundsProblem {
            universe: &universe,
            constraints: &constraints,
            knowns: &knowns,
            side: SideConditions::support(),
        };
        let unconstrained = BoundsProblem {
            constraints: &[],
            ..problem
        };
        let query = AttrSet::from_bits(rng.below(1 << n));
        let truth = db.support(query) as f64;
        let config = BoundsConfig::default();

        // The instance is consistent by construction, so derivation must
        // succeed, on every route.
        let full = derive_propagated(&problem, query, &config)
            .expect("true knowns + satisfied constraints are feasible");
        let relaxed = derive_relaxed(&problem, query).expect("relaxation is feasible too");
        let routed = derive(&problem, query, &config).expect("routing changes nothing");
        assert_eq!(
            routed.interval, full.interval,
            "budget routing must pick the full path here"
        );
        for interval in [full.interval, relaxed.interval] {
            assert!(
                interval.contains(truth, 1e-9),
                "seed {seed}: true support {truth} outside {interval} for {query:?} \
                 (constraints {constraints:?}, knowns {knowns:?})"
            );
        }
        assert!(
            full.interval.within(&relaxed.interval, 1e-9),
            "seed {seed}: propagation must be at least as tight as relaxation"
        );
        if full.interval.is_exact() {
            assert_eq!(
                full.interval.lo, truth,
                "seed {seed}: exact interval must pin truth"
            );
        }
        // Constraints only ever tighten.
        let loose = derive_propagated(&unconstrained, query, &config).expect("feasible");
        assert!(
            full.interval.within(&loose.interval, 1e-9),
            "seed {seed}: constraints must not widen the interval"
        );
        checked += 1;
    }
    assert!(checked >= 1000, "property must cover ≥ 1000 instances");
}

#[test]
fn all_subsets_known_reproduces_ndi_deduction_bounds_exactly() {
    let mut checked = 0u32;
    for seed in 0..1100u64 {
        let mut rng = Rng::seeded(seed.wrapping_mul(0xA5A5_5A5A_0F0F_F0F0) ^ 0xB0B);
        let n = 1 + (rng.below(5) as usize); // 1..=5 attributes
        let universe = Universe::of_size(n);
        let db = random_db(&mut rng, n);
        // A random nonempty itemset and the supports of all proper subsets.
        let itemset = AttrSet::from_bits(1 + rng.below((1 << n) - 1));
        let knowns: Vec<(AttrSet, f64)> = setlat::powerset::proper_subsets(itemset)
            .map(|j| (j, db.support(j) as f64))
            .collect();
        let problem = BoundsProblem {
            universe: &universe,
            constraints: &[],
            knowns: &knowns,
            side: SideConditions::support(),
        };
        let derived = derive_propagated(&problem, itemset, &BoundsConfig::default())
            .expect("true subset supports are consistent");
        let classic = ndi::deduction_bounds(&db, itemset);
        assert_eq!(
            (derived.interval.lo, derived.interval.hi),
            (classic.lower as f64, classic.upper as f64),
            "seed {seed}: diffcon-bounds and fis::ndi disagree on {itemset:?} over {db:?}"
        );
        // …and so does the mining preset (deduction pass only).
        let mined = derive_propagated(&problem, itemset, &BoundsConfig::mining())
            .expect("feasible under the mining preset");
        assert_eq!(
            mined.interval, derived.interval,
            "seed {seed}: preset mismatch"
        );
        checked += 1;
    }
    assert!(checked >= 1000, "property must cover ≥ 1000 instances");
}

#[test]
fn constrained_mining_stays_lossless_on_random_databases() {
    // End-to-end: mining under satisfied constraints never mislabels a
    // support and never scans more than the unconstrained build.
    for seed in 0..120u64 {
        let mut rng = Rng::seeded(seed.wrapping_mul(0x00C0_FFEE_1234_5678) ^ 0x717);
        let n = 2 + (rng.below(4) as usize);
        let universe = Universe::of_size(n);
        let db = random_db(&mut rng, n);
        let constraints = satisfied_constraints(&mut rng, &universe, &db, 2);
        let kappa = 1 + rng.below(4) as usize;
        let (with, with_stats) = diffcon_bounds::mining::ndi_under_constraints(
            &db,
            &constraints,
            kappa,
            &BoundsConfig::mining(),
        )
        .expect("satisfied constraints are feasible");
        let (_without, without_stats) =
            diffcon_bounds::mining::ndi_under_constraints(&db, &[], kappa, &BoundsConfig::mining())
                .expect("no constraints are trivially feasible");
        assert!(with_stats.support_scans <= without_stats.support_scans);
        for (&itemset, &support) in &with.itemsets {
            assert_eq!(
                support,
                db.support(itemset),
                "seed {seed}: stored support wrong"
            );
            assert!(support >= kappa);
        }
    }
}

// ── Wire endpoint round-trip (format ∘ parse identity) ──────────────────

/// `interval` wire responses must re-parse to the same endpoints: the
/// formatter and parser are exact inverses over every non-NaN `f64`,
/// including infinite endpoints, signed zeros, subnormals, and long
/// fractions (4000 random endpoints; raw bit patterns included so the
/// adversarial corners are covered, not just the supports the engine
/// actually serves).
#[test]
fn wire_endpoint_format_parse_round_trips_on_random_endpoints() {
    use diffcon_bounds::Interval;
    let mut rng = Rng::seeded(0xD1FFC0);
    let mut checked = 0usize;
    while checked < 4000 {
        let v = match checked % 8 {
            // Bias toward the wire's realistic population: small supports…
            0..=2 => rng.below(1 << 20) as f64,
            // …and short fractions…
            3 => rng.below(1 << 12) as f64 / (1 + rng.below(9)) as f64,
            4 => f64::INFINITY,
            5 => f64::NEG_INFINITY,
            // …plus adversarial raw bit patterns (subnormals, huge
            // magnitudes, signed zeros).
            _ => f64::from_bits(rng.next()),
        };
        if v.is_nan() {
            continue;
        }
        let wire = Interval::format_endpoint(v);
        let back = Interval::parse_endpoint(&wire)
            .unwrap_or_else(|e| panic!("`{wire}` (from {v:?}) failed to re-parse: {e}"));
        assert_eq!(back, v, "round trip moved {v:?} via `{wire}`");
        assert_eq!(
            Interval::format_endpoint(back),
            wire,
            "re-formatting {back:?} is unstable"
        );
        checked += 1;
    }
}

/// Whole intervals (as printed in `bound lo=… hi=…` replies) survive the
/// wire: formatting both endpoints and parsing them back yields the same
/// interval, for 1000 random intervals including half-infinite and
/// all-infinite ones.
#[test]
fn wire_interval_round_trips_on_random_intervals() {
    use diffcon_bounds::Interval;
    let mut rng = Rng::seeded(0xBEEF);
    let mut checked = 0usize;
    while checked < 1000 {
        let mut a = f64::from_bits(rng.next());
        let mut b = f64::from_bits(rng.next());
        if rng.below(8) == 0 {
            a = f64::NEG_INFINITY;
        }
        if rng.below(8) == 0 {
            b = f64::INFINITY;
        }
        if a.is_nan() || b.is_nan() {
            continue;
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let interval = Interval::new(lo, hi);
        let back = Interval::parse_endpoints(
            &Interval::format_endpoint(interval.lo),
            &Interval::format_endpoint(interval.hi),
        )
        .unwrap_or_else(|e| panic!("{interval} failed to re-parse: {e}"));
        assert_eq!(back, interval);
        checked += 1;
    }
}
