//! Property-based tests for the frequent-itemset substrate.

use fis::basket::BasketDb;
use fis::condensed::{CondensedRepresentation, DerivedStatus};
use fis::disjunctive::DisjunctiveConstraint;
use fis::{apriori, border, eclat, ndi, support};
use proptest::prelude::*;
use setlat::{mobius, AttrSet, Family, Universe};

const N: usize = 5;

fn arb_basket() -> impl Strategy<Value = AttrSet> {
    (0u64..(1u64 << N)).prop_map(AttrSet::from_bits)
}

fn arb_db() -> impl Strategy<Value = BasketDb> {
    proptest::collection::vec(arb_basket(), 0..25)
        .prop_map(|baskets| BasketDb::from_baskets(N, baskets))
}

fn arb_nonempty_set() -> impl Strategy<Value = AttrSet> {
    (1u64..(1u64 << N)).prop_map(AttrSet::from_bits)
}

fn arb_family() -> impl Strategy<Value = Family> {
    proptest::collection::vec(arb_nonempty_set(), 0..3).prop_map(Family::from_sets)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Apriori, Eclat and brute-force counting agree on every database and threshold.
    #[test]
    fn miners_agree(db in arb_db(), kappa in 0usize..12) {
        let a = apriori::apriori(&db, kappa);
        let e = eclat::eclat(&db, kappa);
        let brute = apriori::frequent_itemsets_bruteforce(&db, kappa);
        prop_assert_eq!(&a.frequent, &e);
        prop_assert_eq!(&a.frequent, &brute);
    }

    /// The negative border characterizes frequency status exactly.
    #[test]
    fn negative_border_characterizes_frequency(db in arb_db(), kappa in 1usize..10) {
        let neg = border::negative_border(&db, kappa);
        let u = Universe::of_size(N);
        for x in u.all_subsets() {
            prop_assert_eq!(
                border::is_frequent_by_negative_border(&neg, x),
                db.support(x) >= kappa
            );
        }
    }

    /// The support function's density is the exact-multiplicity function (Section 6.1)
    /// and is nonnegative (support functions are frequency functions).
    #[test]
    fn support_density_is_exact_count(db in arb_db()) {
        let s = support::support_function(&db);
        let density = mobius::density_function(&s);
        let u = Universe::of_size(N);
        for x in u.all_subsets() {
            prop_assert!((density.get(x) - db.exact_count(x) as f64).abs() < 1e-9);
            prop_assert!(density.get(x) >= -1e-9);
        }
    }

    /// Support is antitone: X ⊆ Y implies supp(X) ≥ supp(Y) (the Apriori rule).
    #[test]
    fn support_is_antitone(db in arb_db(), x in arb_basket(), y in arb_basket()) {
        let (small, large) = (x.intersect(y), x.union(y));
        prop_assert!(db.support(small) >= db.support(large));
    }

    /// Disjunctive-constraint satisfaction matches the cover identity of Definition 6.1.
    #[test]
    fn disjunctive_definitions_agree(db in arb_db(), lhs in arb_basket(), fam in arb_family()) {
        let c = DisjunctiveConstraint::new(lhs, fam);
        prop_assert_eq!(c.satisfied_by(&db), c.satisfied_by_cover_identity(&db));
    }

    /// Trivial disjunctive constraints hold in every database; constraints with an
    /// empty family hold exactly when the antecedent is contained in no basket.
    #[test]
    fn disjunctive_degenerate_cases(db in arb_db(), lhs in arb_basket()) {
        let trivial = DisjunctiveConstraint::new(lhs, Family::single(lhs));
        prop_assert!(trivial.satisfied_by(&db));
        let empty_rhs = DisjunctiveConstraint::new(lhs, Family::empty());
        prop_assert_eq!(empty_rhs.satisfied_by(&db), db.support(lhs) == 0);
    }

    /// The condensed FDFree/Bd⁻ representation is lossless: it reports the exact
    /// support of every frequent itemset and the correct status of every other.
    #[test]
    fn condensed_representation_is_lossless(db in arb_db(), kappa in 1usize..8) {
        let repr = CondensedRepresentation::build(&db, kappa);
        let u = Universe::of_size(N);
        for x in u.all_subsets() {
            match repr.derive(x) {
                DerivedStatus::Frequent(s) => {
                    prop_assert!(db.support(x) >= kappa);
                    prop_assert_eq!(s, db.support(x));
                }
                DerivedStatus::Infrequent => prop_assert!(db.support(x) < kappa),
            }
        }
    }

    /// Deduction bounds always contain the true support, and exact bounds identify it.
    #[test]
    fn ndi_bounds_are_sound(db in arb_db(), itemset in arb_nonempty_set()) {
        let bounds = ndi::deduction_bounds(&db, itemset);
        let truth = db.support(itemset) as i64;
        prop_assert!(bounds.lower <= truth);
        prop_assert!(truth <= bounds.upper);
        if bounds.is_exact() {
            prop_assert_eq!(bounds.lower, truth);
        }
    }

    /// The NDI representation only stores frequent itemsets with correct supports.
    #[test]
    fn ndi_representation_is_consistent(db in arb_db(), kappa in 1usize..8) {
        let repr = ndi::NdiRepresentation::build(&db, kappa);
        for (&itemset, &support) in &repr.itemsets {
            prop_assert!(support >= kappa);
            prop_assert_eq!(support, db.support(itemset));
        }
        prop_assert!(repr.size() <= border::count_frequent(&db, kappa));
    }

    /// Reconstructing a database from its exact-multiplicity function preserves
    /// all supports (the paper's basket-space ↔ frequency-function correspondence).
    #[test]
    fn database_density_roundtrip(db in arb_db()) {
        let rebuilt = support::database_from_density(&support::exact_count_function(&db));
        let u = Universe::of_size(N);
        for x in u.all_subsets() {
            prop_assert_eq!(rebuilt.support(x), db.support(x));
        }
    }
}
