//! Enumeration helpers over the powerset `2^S`.
//!
//! The decision procedures in the paper repeatedly iterate over subsets of a
//! given set, supersets of a set within the universe, and intervals
//! `[X, Z] = {U | X ⊆ U ⊆ Z}`.  This module provides allocation-free iterators
//! for each, all based on the standard mask-walking tricks over bitsets.

use crate::attrset::AttrSet;

/// Iterates over all subsets of `set` (including `∅` and `set` itself).
///
/// The iteration order is increasing in the bit-mask value of the subset.
///
/// ```
/// use setlat::{AttrSet, powerset::subsets};
/// let s = AttrSet::from_indices([0, 2]);
/// let subs: Vec<AttrSet> = subsets(s).collect();
/// assert_eq!(subs.len(), 4);
/// assert!(subs.contains(&AttrSet::EMPTY));
/// assert!(subs.contains(&s));
/// ```
pub fn subsets(set: AttrSet) -> SubsetIter {
    SubsetIter {
        mask: set.bits(),
        current: 0,
        done: false,
    }
}

/// Iterates over all *proper* subsets of `set` (excluding `set` itself).
pub fn proper_subsets(set: AttrSet) -> impl Iterator<Item = AttrSet> {
    subsets(set).filter(move |&s| s != set)
}

/// Iterates over the interval `[lo, hi] = {U | lo ⊆ U ⊆ hi}` (Definition 2.5's
/// `[X, Z]` notation).  If `lo ⊄ hi` the interval is empty.
pub fn interval(lo: AttrSet, hi: AttrSet) -> IntervalIter {
    if !lo.is_subset(hi) {
        IntervalIter {
            base: lo,
            inner: SubsetIter {
                mask: 0,
                current: 0,
                done: true,
            },
        }
    } else {
        IntervalIter {
            base: lo,
            inner: subsets(hi.difference(lo)),
        }
    }
}

/// Iterates over all supersets of `lo` within the universe of `n` attributes,
/// i.e. the interval `[lo, S]`.
pub fn supersets_within(lo: AttrSet, n: usize) -> IntervalIter {
    interval(lo, AttrSet::full(n))
}

/// Iterates over all subsets of a universe of `n` attributes that have exactly
/// `k` elements, in increasing mask order (Gosper's hack).
pub fn subsets_of_size(n: usize, k: usize) -> SizeKIter {
    assert!(
        n <= 63,
        "subsets_of_size supports universes up to 63 attributes"
    );
    SizeKIter {
        n,
        k,
        current: if k == 0 {
            Some(0)
        } else if k > n {
            None
        } else {
            Some((1u64 << k) - 1)
        },
    }
}

/// The number of subsets of `set`, i.e. `2^|set|`.
pub fn subset_count(set: AttrSet) -> u128 {
    1u128 << set.len()
}

/// Iterator over all subsets of a fixed mask.
#[derive(Clone, Debug)]
pub struct SubsetIter {
    mask: u64,
    current: u64,
    done: bool,
}

impl Iterator for SubsetIter {
    type Item = AttrSet;

    fn next(&mut self) -> Option<AttrSet> {
        if self.done {
            return None;
        }
        let result = AttrSet::from_bits(self.current);
        if self.current == self.mask {
            self.done = true;
        } else {
            // Standard trick: enumerate sub-masks in increasing order.
            self.current = (self.current.wrapping_sub(self.mask)) & self.mask;
        }
        Some(result)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            return (0, Some(0));
        }
        // Upper bound only; exact counting would require popcount bookkeeping.
        let total = 1u128 << AttrSet::from_bits(self.mask).len();
        let cap = usize::try_from(total).unwrap_or(usize::MAX);
        (1, Some(cap))
    }
}

/// Iterator over an interval `[lo, hi]` of the subset lattice.
#[derive(Clone, Debug)]
pub struct IntervalIter {
    base: AttrSet,
    inner: SubsetIter,
}

impl Iterator for IntervalIter {
    type Item = AttrSet;

    fn next(&mut self) -> Option<AttrSet> {
        self.inner.next().map(|s| s.union(self.base))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// Iterator over the size-`k` subsets of `{0, …, n-1}` (Gosper's hack).
#[derive(Clone, Debug)]
pub struct SizeKIter {
    n: usize,
    k: usize,
    current: Option<u64>,
}

impl Iterator for SizeKIter {
    type Item = AttrSet;

    fn next(&mut self) -> Option<AttrSet> {
        let cur = self.current?;
        let limit = if self.n == 64 {
            u64::MAX
        } else {
            (1u64 << self.n) - 1
        };
        if cur > limit {
            self.current = None;
            return None;
        }
        let result = AttrSet::from_bits(cur);
        if self.k == 0 {
            self.current = None;
        } else {
            // Gosper's hack: next integer with the same popcount.
            let c = cur & cur.wrapping_neg();
            let r = cur.wrapping_add(c);
            if c == 0 || r == 0 {
                self.current = None;
            } else {
                let next = (((cur ^ r) >> 2) / c) | r;
                self.current = if next > limit { None } else { Some(next) };
            }
        }
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsets_of_empty() {
        let subs: Vec<AttrSet> = subsets(AttrSet::EMPTY).collect();
        assert_eq!(subs, vec![AttrSet::EMPTY]);
    }

    #[test]
    fn subsets_count_and_membership() {
        let s = AttrSet::from_indices([1, 3, 4]);
        let subs: Vec<AttrSet> = subsets(s).collect();
        assert_eq!(subs.len(), 8);
        for sub in &subs {
            assert!(sub.is_subset(s));
        }
        // No duplicates.
        let mut dedup = subs.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 8);
    }

    #[test]
    fn proper_subsets_excludes_self() {
        let s = AttrSet::from_indices([0, 1]);
        let subs: Vec<AttrSet> = proper_subsets(s).collect();
        assert_eq!(subs.len(), 3);
        assert!(!subs.contains(&s));
    }

    #[test]
    fn interval_basic() {
        let lo = AttrSet::from_indices([0]);
        let hi = AttrSet::from_indices([0, 1, 2]);
        let iv: Vec<AttrSet> = interval(lo, hi).collect();
        assert_eq!(iv.len(), 4);
        for u in &iv {
            assert!(lo.is_subset(*u));
            assert!(u.is_subset(hi));
        }
    }

    #[test]
    fn interval_empty_when_not_subset() {
        let lo = AttrSet::from_indices([0, 3]);
        let hi = AttrSet::from_indices([0, 1]);
        assert_eq!(interval(lo, hi).count(), 0);
    }

    #[test]
    fn interval_single_point() {
        let x = AttrSet::from_indices([2, 5]);
        let iv: Vec<AttrSet> = interval(x, x).collect();
        assert_eq!(iv, vec![x]);
    }

    #[test]
    fn supersets_within_universe() {
        let lo = AttrSet::from_indices([1]);
        let sups: Vec<AttrSet> = supersets_within(lo, 3).collect();
        assert_eq!(sups.len(), 4);
        for u in &sups {
            assert!(lo.is_subset(*u));
            assert!(u.is_subset(AttrSet::full(3)));
        }
    }

    #[test]
    fn size_k_subsets() {
        let all: Vec<AttrSet> = subsets_of_size(5, 2).collect();
        assert_eq!(all.len(), 10);
        for s in &all {
            assert_eq!(s.len(), 2);
        }
        let none: Vec<AttrSet> = subsets_of_size(3, 5).collect();
        assert!(none.is_empty());
        let zero: Vec<AttrSet> = subsets_of_size(4, 0).collect();
        assert_eq!(zero, vec![AttrSet::EMPTY]);
        let full: Vec<AttrSet> = subsets_of_size(4, 4).collect();
        assert_eq!(full, vec![AttrSet::full(4)]);
    }

    #[test]
    fn subset_count_matches_enumeration() {
        let s = AttrSet::from_indices([0, 2, 4, 6]);
        assert_eq!(subset_count(s), subsets(s).count() as u128);
    }
}
