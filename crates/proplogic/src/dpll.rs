//! A complete DPLL SAT solver.
//!
//! The coNP decision procedures of Section 5 of the paper (tautology of DNF
//! formulas, implication of implication constraints) reduce to propositional
//! satisfiability.  This module provides a small but complete DPLL solver with
//!
//! * unit propagation,
//! * pure-literal elimination,
//! * most-occurrences branching,
//!
//! operating on the clausal form produced by [`crate::cnf`].  It is not meant
//! to compete with industrial CDCL solvers, but it comfortably handles the
//! instance sizes produced by the experiments in this repository (tens of
//! variables, hundreds of clauses) and, importantly, it is fully deterministic,
//! which keeps the benchmark harness reproducible.

use crate::cnf::{Clause, Cnf, Lit};
use setlat::AttrSet;

/// The result of a satisfiability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// The formula is satisfiable; the payload lists the variables assigned
    /// `true` in the discovered model (variables missing from the set are
    /// `false`).
    Sat(AttrSet),
    /// The formula is unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Returns `true` iff the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Statistics collected during a solver run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of branching decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered (backtracks).
    pub conflicts: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum VarState {
    Unassigned,
    True,
    False,
}

/// A DPLL satisfiability solver over a fixed CNF.
pub struct DpllSolver {
    clauses: Vec<Clause>,
    num_vars: usize,
    stats: SolverStats,
}

impl DpllSolver {
    /// Creates a solver for the given CNF.  Tautological clauses are dropped.
    pub fn new(cnf: Cnf) -> Self {
        let clauses = cnf
            .clauses
            .into_iter()
            .filter(|c| !c.is_tautological())
            .collect();
        DpllSolver {
            clauses,
            num_vars: cnf.num_vars,
            stats: SolverStats::default(),
        }
    }

    /// Runs the solver to completion.
    pub fn solve(&mut self) -> SatResult {
        let mut assignment = vec![VarState::Unassigned; self.num_vars];
        if self.dpll(&mut assignment) {
            let mut model = AttrSet::EMPTY;
            for (v, &state) in assignment.iter().enumerate() {
                if state == VarState::True && v < 64 {
                    model.insert(v);
                }
            }
            SatResult::Sat(model)
        } else {
            SatResult::Unsat
        }
    }

    /// Statistics from the most recent [`DpllSolver::solve`] call.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    fn dpll(&mut self, assignment: &mut Vec<VarState>) -> bool {
        // Unit propagation + conflict detection loop.
        let trail_len = loop {
            match self.propagate_once(assignment) {
                Propagation::Conflict => {
                    self.stats.conflicts += 1;
                    return false;
                }
                Propagation::Fixpoint => break assignment.len(),
                Propagation::Progress => continue,
            }
        };
        let _ = trail_len;

        // Pure-literal elimination.
        self.assign_pure_literals(assignment);

        // Check clause status and pick a branching variable.
        let mut branch_var: Option<usize> = None;
        let mut occurrence = vec![0usize; self.num_vars];
        let mut all_satisfied = true;
        for clause in &self.clauses {
            let mut satisfied = false;
            let mut has_unassigned = false;
            for lit in &clause.lits {
                match eval_lit(*lit, assignment) {
                    Some(true) => {
                        satisfied = true;
                        break;
                    }
                    Some(false) => {}
                    None => {
                        has_unassigned = true;
                        occurrence[lit.var] += 1;
                    }
                }
            }
            if !satisfied {
                all_satisfied = false;
                if !has_unassigned {
                    self.stats.conflicts += 1;
                    return false;
                }
            }
        }
        if all_satisfied {
            return true;
        }
        let mut best = 0usize;
        for (v, &count) in occurrence.iter().enumerate() {
            if count > best {
                best = count;
                branch_var = Some(v);
            }
        }
        let var = match branch_var {
            Some(v) => v,
            // No unassigned variable occurs in an unsatisfied clause, yet not all
            // clauses are satisfied — impossible, but treat conservatively.
            None => return all_satisfied,
        };

        self.stats.decisions += 1;
        for value in [VarState::True, VarState::False] {
            let snapshot = assignment.clone();
            assignment[var] = value;
            if self.dpll(assignment) {
                return true;
            }
            *assignment = snapshot;
        }
        false
    }

    fn propagate_once(&mut self, assignment: &mut [VarState]) -> Propagation {
        let mut progressed = false;
        for clause in &self.clauses {
            let mut unassigned: Option<Lit> = None;
            let mut unassigned_count = 0;
            let mut satisfied = false;
            for lit in &clause.lits {
                match eval_lit(*lit, assignment) {
                    Some(true) => {
                        satisfied = true;
                        break;
                    }
                    Some(false) => {}
                    None => {
                        unassigned = Some(*lit);
                        unassigned_count += 1;
                    }
                }
            }
            if satisfied {
                continue;
            }
            match unassigned_count {
                0 => return Propagation::Conflict,
                1 => {
                    let lit = unassigned.expect("counted one unassigned literal");
                    assignment[lit.var] = if lit.negated {
                        VarState::False
                    } else {
                        VarState::True
                    };
                    self.stats.propagations += 1;
                    progressed = true;
                }
                _ => {}
            }
        }
        if progressed {
            Propagation::Progress
        } else {
            Propagation::Fixpoint
        }
    }

    fn assign_pure_literals(&mut self, assignment: &mut [VarState]) {
        let mut pos = vec![false; self.num_vars];
        let mut neg = vec![false; self.num_vars];
        for clause in &self.clauses {
            // Only count clauses that are not yet satisfied.
            if clause
                .lits
                .iter()
                .any(|&l| eval_lit(l, assignment) == Some(true))
            {
                continue;
            }
            for lit in &clause.lits {
                if eval_lit(*lit, assignment).is_none() {
                    if lit.negated {
                        neg[lit.var] = true;
                    } else {
                        pos[lit.var] = true;
                    }
                }
            }
        }
        for v in 0..self.num_vars {
            if assignment[v] == VarState::Unassigned {
                if pos[v] && !neg[v] {
                    assignment[v] = VarState::True;
                    self.stats.propagations += 1;
                } else if neg[v] && !pos[v] {
                    assignment[v] = VarState::False;
                    self.stats.propagations += 1;
                }
            }
        }
    }
}

enum Propagation {
    Conflict,
    Progress,
    Fixpoint,
}

fn eval_lit(lit: Lit, assignment: &[VarState]) -> Option<bool> {
    match assignment[lit.var] {
        VarState::Unassigned => None,
        VarState::True => Some(!lit.negated),
        VarState::False => Some(lit.negated),
    }
}

/// Convenience: decides satisfiability of a CNF, discarding the model.
pub fn is_satisfiable(cnf: Cnf) -> bool {
    DpllSolver::new(cnf).solve().is_sat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;

    fn solve_formula(f: &Formula, num_vars: usize) -> SatResult {
        let cnf = Cnf::from_formula_tseitin(f, num_vars);
        DpllSolver::new(cnf).solve()
    }

    #[test]
    fn empty_cnf_is_sat() {
        assert!(is_satisfiable(Cnf::empty(3)));
    }

    #[test]
    fn single_empty_clause_is_unsat() {
        let mut cnf = Cnf::empty(1);
        cnf.push(Clause::new([]));
        assert!(!is_satisfiable(cnf));
    }

    #[test]
    fn unit_clauses_propagate() {
        let mut cnf = Cnf::empty(3);
        cnf.push(Clause::new([Lit::pos(0)]));
        cnf.push(Clause::new([Lit::neg(0), Lit::pos(1)]));
        cnf.push(Clause::new([Lit::neg(1), Lit::pos(2)]));
        let mut solver = DpllSolver::new(cnf);
        match solver.solve() {
            SatResult::Sat(model) => {
                assert!(model.contains(0));
                assert!(model.contains(1));
                assert!(model.contains(2));
            }
            SatResult::Unsat => panic!("expected SAT"),
        }
        assert!(solver.stats().propagations >= 3);
    }

    #[test]
    fn contradiction_is_unsat() {
        let mut cnf = Cnf::empty(1);
        cnf.push(Clause::new([Lit::pos(0)]));
        cnf.push(Clause::new([Lit::neg(0)]));
        assert!(!is_satisfiable(cnf));
    }

    #[test]
    fn pigeonhole_2_into_1_is_unsat() {
        // Two pigeons, one hole: p0 ∨ (nothing), must conflict.
        // Variables: x_{pigeon} = pigeon in hole 0. Both must be in the hole but
        // cannot share it.
        let mut cnf = Cnf::empty(2);
        cnf.push(Clause::new([Lit::pos(0)]));
        cnf.push(Clause::new([Lit::pos(1)]));
        cnf.push(Clause::new([Lit::neg(0), Lit::neg(1)]));
        assert!(!is_satisfiable(cnf));
    }

    #[test]
    fn model_satisfies_formula() {
        let f = Formula::and([
            Formula::or([Formula::var(0), Formula::var(1)]),
            Formula::or([Formula::not(Formula::var(0)), Formula::var(2)]),
            Formula::or([Formula::not(Formula::var(1)), Formula::not(Formula::var(2))]),
        ]);
        match solve_formula(&f, 3) {
            SatResult::Sat(model) => {
                // Restrict the model to the original variables before evaluating.
                let restricted = model.intersect(AttrSet::full(3));
                assert!(f.eval(restricted));
            }
            SatResult::Unsat => panic!("formula is satisfiable"),
        }
    }

    #[test]
    fn exhaustive_agreement_on_random_small_formulas() {
        // Compare DPLL against brute-force truth-table satisfiability on a family
        // of structured formulas over 4 variables.
        for seed in 0u64..40 {
            let f = pseudo_random_formula(seed, 4, 3);
            let brute = (0u64..16).any(|mask| f.eval(AttrSet::from_bits(mask)));
            let dpll = solve_formula(&f, 4).is_sat();
            assert_eq!(brute, dpll, "disagreement on formula #{seed}: {f:?}");
        }
    }

    /// Small deterministic formula generator used by the exhaustive test.
    fn pseudo_random_formula(seed: u64, num_vars: usize, depth: usize) -> Formula {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        build(&mut state, num_vars, depth)
    }

    fn build(state: &mut u64, num_vars: usize, depth: usize) -> Formula {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let choice = (*state >> 33) % if depth == 0 { 2 } else { 5 };
        match choice {
            0 => Formula::var(((*state >> 17) as usize) % num_vars),
            1 => Formula::not(Formula::var(((*state >> 21) as usize) % num_vars)),
            2 => Formula::and([
                build(state, num_vars, depth - 1),
                build(state, num_vars, depth - 1),
            ]),
            3 => Formula::or([
                build(state, num_vars, depth - 1),
                build(state, num_vars, depth - 1),
            ]),
            _ => Formula::implies(
                build(state, num_vars, depth - 1),
                build(state, num_vars, depth - 1),
            ),
        }
    }
}
