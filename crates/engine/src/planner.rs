//! The adaptive procedure planner: route each query to the cheapest sound
//! decision procedure, and account for where time actually went.
//!
//! Routing policy, in order:
//!
//! 1. **Trivial goals** (`Y ⊆ X` for some member) are implied by anything;
//!    answered inline without running a procedure.
//! 2. **FD fast path** — if the whole instance lies in the paper's
//!    single-member fragment, the polynomial attribute-closure check decides
//!    it ([`ProcedureKind::FdFragment`]).
//! 3. **Lattice containment** — when the Theorem 3.5 enumeration bound
//!    ([`diffcon::procedure::lattice_cost_bound`]) fits the configured
//!    budget, the direct bitset procedure is the fastest general decider.
//! 4. **SAT** otherwise — the Section 5 translation hands the instance to
//!    DPLL, whose cost tracks the refutation search rather than
//!    `2^{|S|−|X|}`.
//!
//! **Bound queries** (`f(Y) ∈ [lo, hi]`, served by the `diffcon-bounds`
//! crate) are a second query class with their own routing ladder:
//! cached-exact answers are served by the session before the planner is
//! consulted; otherwise the full propagation path runs while its
//! [`diffcon_bounds::problem::propagation_cost_bound`] fits
//! [`PlannerConfig::bound_budget`]; past the budget the sound relaxation
//! answers.
//!
//! Every decision is recorded per procedure (query count, answer-cache hits,
//! cumulative and maximum latency), so a long-running `diffcond` process can
//! report where its time goes and operators can tune
//! [`PlannerConfig::lattice_budget`].
//!
//! Routing is a pure function of the query and the snapshot; the accounting
//! is lock-free atomics.  Both therefore work through `&self`, which is what
//! lets every reader of a snapshot share one [`Planner`] without
//! serializing on it.

use crate::metrics::{EngineMetrics, SessionCosts};
use diffcon::procedure::{self, ProcedureKind};
use diffcon::DiffConstraint;
use diffcon_bounds::problem::{fits_budget, propagation_cost_bound, BoundsConfig};
use diffcon_bounds::DeriveRoute;
use diffcon_obs::{Histogram, HistogramSnapshot};
use setlat::{AttrSet, Universe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tuning knobs for procedure routing.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// Maximum lattice-procedure cost bound (in bitset operations, see
    /// [`diffcon::procedure::lattice_cost_bound`]) before a query is routed
    /// to the SAT procedure instead.
    pub lattice_budget: u128,
    /// Maximum bound-derivation cost bound before a `bound` query is routed
    /// to the enumeration-free relaxation instead of the full propagation
    /// path.
    pub bound_budget: u128,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            // 2^22 word-ops is tens of milliseconds in the worst case; past
            // that the DPLL refutation usually wins on refutable instances.
            lattice_budget: 1 << 22,
            // The propagation path is O(2^{|S|}) per pass; 2^26 keeps its
            // worst case in the same tens-of-milliseconds envelope.
            bound_budget: 1 << 26,
        }
    }
}

/// Accumulated figures for one procedure.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProcedureStats {
    /// Queries decided by this procedure (excluding answer-cache hits).
    pub decided: u64,
    /// Queries whose answer was served from the answer cache after having
    /// been planned for this procedure.
    pub cache_hits: u64,
    /// Total time spent inside the procedure.
    pub total_time: Duration,
    /// Largest single-query time.
    pub max_time: Duration,
}

impl ProcedureStats {
    /// Mean latency per decided query.
    pub fn mean_time(&self) -> Duration {
        if self.decided == 0 {
            Duration::ZERO
        } else {
            self.total_time / u32::try_from(self.decided).unwrap_or(u32::MAX)
        }
    }
}

/// Accumulated figures for the bound-query class.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoundStats {
    /// Bound queries decided by the full propagation path.
    pub propagation: u64,
    /// Bound queries decided by the enumeration-free relaxation.
    pub relaxed: u64,
    /// Bound queries served from the bound cache.
    pub cache_hits: u64,
    /// Total time spent deriving bounds (cache hits excluded).
    pub total_time: Duration,
    /// Largest single-derivation time.
    pub max_time: Duration,
}

impl BoundStats {
    /// Bound queries seen (decided + cached).
    pub fn total(&self) -> u64 {
        self.propagation + self.relaxed + self.cache_hits
    }
}

/// A snapshot of every procedure's counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlannerStats {
    /// Indexed in the order of [`procedure::ALL_PROCEDURES`]
    /// (`fd`, `lattice`, `semantic`, `sat`).
    pub per_procedure: [ProcedureStats; 4],
    /// Goals answered inline because they were trivial.
    pub trivial: u64,
    /// Bound-query accounting (a separate query class;
    /// [`PlannerStats::total_queries`] counts implication queries only).
    pub bounds: BoundStats,
}

impl PlannerStats {
    /// The counters for one procedure.
    pub fn of(&self, kind: ProcedureKind) -> &ProcedureStats {
        &self.per_procedure[proc_index(kind)]
    }

    /// Total queries seen (decided + cached + trivial).
    pub fn total_queries(&self) -> u64 {
        self.trivial
            + self
                .per_procedure
                .iter()
                .map(|p| p.decided + p.cache_hits)
                .sum::<u64>()
    }
}

fn proc_index(kind: ProcedureKind) -> usize {
    procedure::ALL_PROCEDURES
        .iter()
        .position(|&k| k == kind)
        .expect("every ProcedureKind appears in ALL_PROCEDURES")
}

/// Atomic accumulator for one procedure (durations in nanoseconds).
#[derive(Debug, Default)]
struct ProcedureCounters {
    decided: AtomicU64,
    cache_hits: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl ProcedureCounters {
    fn record(&self, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.decided.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ProcedureStats {
        ProcedureStats {
            decided: self.decided.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            total_time: Duration::from_nanos(self.total_nanos.load(Ordering::Relaxed)),
            max_time: Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed)),
        }
    }
}

/// Atomic accumulator for the bound-query class.
#[derive(Debug, Default)]
struct BoundCounters {
    propagation: AtomicU64,
    relaxed: AtomicU64,
    cache_hits: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

/// The planner: stateless routing plus lock-free atomic accounting, shared
/// by reference among every concurrent reader of a snapshot.
#[derive(Debug, Default)]
pub struct Planner {
    config: PlannerConfig,
    per_procedure: [ProcedureCounters; 4],
    trivial: AtomicU64,
    bounds: BoundCounters,
    /// Per-route latency distributions (nanoseconds), indexed like
    /// `per_procedure`; counts equal `decided`.
    latency: [Histogram; 4],
    /// Bound-ladder latency distributions: `[propagation, relaxed]`.
    bound_latency: [Histogram; 2],
    /// The owning session's cost-attribution series, bumped alongside the
    /// local counters so `(connection, slot)` labeled metrics see every
    /// route decision and cache hit.  `None` for standalone planners.
    costs: Option<Arc<SessionCosts>>,
}

impl Planner {
    /// Creates a planner with the given configuration.
    pub fn new(config: PlannerConfig) -> Self {
        Planner {
            config,
            ..Planner::default()
        }
    }

    /// Creates a planner that attributes route decisions and cache hits to
    /// a session's [`SessionCosts`] series as well as its own counters.
    pub fn with_costs(config: PlannerConfig, costs: Arc<SessionCosts>) -> Self {
        Planner {
            config,
            costs: Some(costs),
            ..Planner::default()
        }
    }

    /// The active configuration.
    pub fn config(&self) -> PlannerConfig {
        self.config
    }

    /// Picks the procedure for `premises ⊨ goal`.
    ///
    /// `fd_index_ready` tells the planner whether the caller holds a premise
    /// set entirely inside the FD fragment (the session maintains that index
    /// incrementally, so the planner does not rescan the premises).
    pub fn choose(
        &self,
        universe: &Universe,
        premises: &[DiffConstraint],
        goal: &DiffConstraint,
        fd_index_ready: bool,
    ) -> ProcedureKind {
        if fd_index_ready && goal.is_single_member() {
            return ProcedureKind::FdFragment;
        }
        if procedure::lattice_cost_bound(universe, premises, goal) <= self.config.lattice_budget {
            ProcedureKind::Lattice
        } else {
            ProcedureKind::Sat
        }
    }

    /// Records a query decided by `kind` — in this planner's per-session
    /// accounting and, mirrored, in the process-wide metrics registry.
    pub fn record_decided(&self, kind: ProcedureKind, elapsed: Duration) {
        self.per_procedure[proc_index(kind)].record(elapsed);
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.latency[proc_index(kind)].record(nanos);
        EngineMetrics::global().route_latency(kind).record(nanos);
        if let Some(costs) = &self.costs {
            costs.routes[proc_index(kind)].inc();
        }
    }

    /// Records a query answered from the answer cache (planned for `kind`).
    pub fn record_cache_hit(&self, kind: ProcedureKind) {
        self.per_procedure[proc_index(kind)]
            .cache_hits
            .fetch_add(1, Ordering::Relaxed);
        if let Some(costs) = &self.costs {
            costs.cache_hits.inc();
        }
    }

    /// Picks the derivation route for a `bound` query: the full propagation
    /// path while its cost bound fits [`PlannerConfig::bound_budget`], the
    /// sound relaxation past it.  (Cache hits are served by the session
    /// before the planner is consulted.)
    pub fn choose_bound(
        &self,
        universe: &Universe,
        n_constraints: usize,
        n_knowns: usize,
        query: AttrSet,
        config: &BoundsConfig,
    ) -> DeriveRoute {
        let cost = propagation_cost_bound(universe, n_constraints, n_knowns, query, config);
        if fits_budget(cost, self.config.bound_budget) {
            DeriveRoute::Propagation
        } else {
            DeriveRoute::Relaxed
        }
    }

    /// Records a bound query decided over `route` (locally and in the
    /// process-wide registry).
    pub fn record_bound_decided(&self, route: DeriveRoute, elapsed: Duration) {
        let b = &self.bounds;
        let slot = match route {
            DeriveRoute::Propagation => {
                b.propagation.fetch_add(1, Ordering::Relaxed);
                0
            }
            DeriveRoute::Relaxed => {
                b.relaxed.fetch_add(1, Ordering::Relaxed);
                1
            }
        };
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        b.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        b.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        self.bound_latency[slot].record(nanos);
        EngineMetrics::global().bound_latency(route).record(nanos);
    }

    /// Records a bound query served from the bound cache.
    pub fn record_bound_cache_hit(&self) {
        self.bounds.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a goal answered inline as trivial.
    pub fn record_trivial(&self) {
        self.trivial.fetch_add(1, Ordering::Relaxed);
        EngineMetrics::global().trivial.inc();
    }

    /// The latency distribution of queries this planner routed to `kind`
    /// (nanoseconds; the snapshot's count equals the route's decided
    /// total).
    pub fn latency(&self, kind: ProcedureKind) -> HistogramSnapshot {
        self.latency[proc_index(kind)].snapshot()
    }

    /// The latency distribution of bound queries derived over `route`
    /// (nanoseconds).
    pub fn bound_latency(&self, route: DeriveRoute) -> HistogramSnapshot {
        let slot = match route {
            DeriveRoute::Propagation => 0,
            DeriveRoute::Relaxed => 1,
        };
        self.bound_latency[slot].snapshot()
    }

    /// Point-in-time snapshot of the counters (each counter is read
    /// atomically; a snapshot taken under concurrent traffic is internally
    /// consistent per counter, not across counters).
    pub fn stats(&self) -> PlannerStats {
        PlannerStats {
            per_procedure: [
                self.per_procedure[0].snapshot(),
                self.per_procedure[1].snapshot(),
                self.per_procedure[2].snapshot(),
                self.per_procedure[3].snapshot(),
            ],
            trivial: self.trivial.load(Ordering::Relaxed),
            bounds: BoundStats {
                propagation: self.bounds.propagation.load(Ordering::Relaxed),
                relaxed: self.bounds.relaxed.load(Ordering::Relaxed),
                cache_hits: self.bounds.cache_hits.load(Ordering::Relaxed),
                total_time: Duration::from_nanos(self.bounds.total_nanos.load(Ordering::Relaxed)),
                max_time: Duration::from_nanos(self.bounds.max_nanos.load(Ordering::Relaxed)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlat::{AttrSet, Family};

    fn fd_constraints(u: &Universe, texts: &[&str]) -> Vec<DiffConstraint> {
        texts
            .iter()
            .map(|t| DiffConstraint::parse(t, u).unwrap())
            .collect()
    }

    #[test]
    fn routes_fragment_queries_to_fd() {
        let u = Universe::of_size(6);
        let planner = Planner::new(PlannerConfig::default());
        let premises = fd_constraints(&u, &["A -> {B}", "B -> {C}"]);
        let goal = DiffConstraint::parse("A -> {C}", &u).unwrap();
        assert_eq!(
            planner.choose(&u, &premises, &goal, true),
            ProcedureKind::FdFragment
        );
        // Same instance without a ready index falls back to the general path.
        assert_eq!(
            planner.choose(&u, &premises, &goal, false),
            ProcedureKind::Lattice
        );
        // A wide goal cannot take the FD path even with a ready index.
        let wide = DiffConstraint::parse("A -> {B, C}", &u).unwrap();
        assert_eq!(
            planner.choose(&u, &premises, &wide, true),
            ProcedureKind::Lattice
        );
    }

    #[test]
    fn routes_to_sat_past_the_lattice_budget() {
        let u = Universe::of_size(40);
        let planner = Planner::new(PlannerConfig {
            lattice_budget: 1 << 20,
            ..PlannerConfig::default()
        });
        let premises = vec![DiffConstraint::new(
            AttrSet::singleton(0),
            Family::single(AttrSet::singleton(1)),
        )];
        // |S| − |X| = 39 free attributes: far beyond a 2^20 budget.
        let hard = DiffConstraint::new(
            AttrSet::singleton(0),
            Family::from_sets([AttrSet::singleton(2), AttrSet::singleton(3)]),
        );
        assert_eq!(
            planner.choose(&u, &premises, &hard, false),
            ProcedureKind::Sat
        );
        // A goal with a huge left-hand side is cheap for the lattice.
        let easy = DiffConstraint::new(AttrSet::full(38), Family::single(AttrSet::singleton(39)));
        assert_eq!(
            planner.choose(&u, &premises, &easy, false),
            ProcedureKind::Lattice
        );
    }

    #[test]
    fn accounting_accumulates() {
        let planner = Planner::new(PlannerConfig::default());
        planner.record_decided(ProcedureKind::Lattice, Duration::from_micros(10));
        planner.record_decided(ProcedureKind::Lattice, Duration::from_micros(30));
        planner.record_cache_hit(ProcedureKind::Lattice);
        planner.record_decided(ProcedureKind::Sat, Duration::from_micros(500));
        planner.record_trivial();
        let stats = planner.stats();
        let lattice = stats.of(ProcedureKind::Lattice);
        assert_eq!(lattice.decided, 2);
        assert_eq!(lattice.cache_hits, 1);
        assert_eq!(lattice.total_time, Duration::from_micros(40));
        assert_eq!(lattice.max_time, Duration::from_micros(30));
        assert_eq!(lattice.mean_time(), Duration::from_micros(20));
        assert_eq!(stats.of(ProcedureKind::Sat).decided, 1);
        assert_eq!(stats.trivial, 1);
        assert_eq!(stats.total_queries(), 5);
        assert_eq!(stats.of(ProcedureKind::FdFragment).decided, 0);
    }

    #[test]
    fn latency_histograms_track_decisions() {
        let planner = Planner::new(PlannerConfig::default());
        for us in [10u64, 20, 40] {
            planner.record_decided(ProcedureKind::Lattice, Duration::from_micros(us));
        }
        planner.record_bound_decided(DeriveRoute::Relaxed, Duration::from_micros(7));
        let lattice = planner.latency(ProcedureKind::Lattice);
        assert_eq!(lattice.count(), 3);
        assert_eq!(lattice.max(), 40_000);
        assert!(lattice.p50() >= 10_000 && lattice.p50() <= 25_000);
        assert_eq!(planner.latency(ProcedureKind::Sat).count(), 0);
        let relaxed = planner.bound_latency(DeriveRoute::Relaxed);
        assert_eq!(relaxed.count(), 1);
        assert_eq!(planner.bound_latency(DeriveRoute::Propagation).count(), 0);
        // The histogram counts agree with the counter accounting.
        assert_eq!(
            planner.stats().of(ProcedureKind::Lattice).decided,
            lattice.count()
        );
    }

    #[test]
    fn cost_attribution_mirrors_decisions() {
        let costs = Arc::new(SessionCosts::default());
        let planner = Planner::with_costs(PlannerConfig::default(), Arc::clone(&costs));
        planner.record_decided(ProcedureKind::Lattice, Duration::from_micros(10));
        planner.record_decided(ProcedureKind::Sat, Duration::from_micros(10));
        planner.record_cache_hit(ProcedureKind::Lattice);
        // `fd, lattice, semantic, sat` is the ALL_PROCEDURES order.
        assert_eq!(costs.routes[1].get(), 1);
        assert_eq!(costs.routes[3].get(), 1);
        assert_eq!(costs.cache_hits.get(), 1);
        // A costless planner still accounts locally without panicking.
        let plain = Planner::new(PlannerConfig::default());
        plain.record_decided(ProcedureKind::Lattice, Duration::from_micros(10));
        plain.record_cache_hit(ProcedureKind::Lattice);
        assert_eq!(plain.stats().of(ProcedureKind::Lattice).decided, 1);
    }

    #[test]
    fn bound_routing_respects_the_budget() {
        let planner = Planner::new(PlannerConfig::default());
        let config = BoundsConfig::default();
        let small = Universe::of_size(8);
        assert_eq!(
            planner.choose_bound(&small, 3, 5, AttrSet::from_indices([0, 1]), &config),
            DeriveRoute::Propagation
        );
        // Past the propagation universe cap the cost bound saturates.
        let huge = Universe::of_size(30);
        assert_eq!(
            planner.choose_bound(&huge, 0, 0, AttrSet::singleton(0), &config),
            DeriveRoute::Relaxed
        );
        // A tiny budget forces the relaxation even on small universes.
        let strict = Planner::new(PlannerConfig {
            bound_budget: 1,
            ..PlannerConfig::default()
        });
        assert_eq!(
            strict.choose_bound(&small, 3, 5, AttrSet::from_indices([0, 1]), &config),
            DeriveRoute::Relaxed
        );
        // …and a maximal budget must not defeat the universe-cap sentinel
        // (the propagation path would panic, not answer).
        let unbounded = Planner::new(PlannerConfig {
            bound_budget: u128::MAX,
            ..PlannerConfig::default()
        });
        assert_eq!(
            unbounded.choose_bound(&huge, 0, 0, AttrSet::singleton(0), &config),
            DeriveRoute::Relaxed
        );
    }

    #[test]
    fn bound_accounting_accumulates() {
        let planner = Planner::new(PlannerConfig::default());
        planner.record_bound_decided(DeriveRoute::Propagation, Duration::from_micros(40));
        planner.record_bound_decided(DeriveRoute::Relaxed, Duration::from_micros(5));
        planner.record_bound_cache_hit();
        let b = planner.stats().bounds;
        assert_eq!(b.propagation, 1);
        assert_eq!(b.relaxed, 1);
        assert_eq!(b.cache_hits, 1);
        assert_eq!(b.total(), 3);
        assert_eq!(b.total_time, Duration::from_micros(45));
        assert_eq!(b.max_time, Duration::from_micros(40));
        // Bound queries are a separate class from implication queries.
        assert_eq!(planner.stats().total_queries(), 0);
    }
}
