//! Propositional formulas over the attributes of a universe.
//!
//! Variables are identified by their attribute index in a
//! [`setlat::Universe`]; a truth assignment is simply an
//! [`setlat::AttrSet`] listing the variables that are `true`.  This
//! matches the paper's convention of identifying a subset `X ⊆ S` with the
//! assignment that makes exactly the variables of `X` true (its *minterm* `X̄`).

use setlat::{AttrSet, Universe};
use std::fmt;

/// A propositional formula over the variables of a universe.
///
/// The representation is a plain recursive AST.  `And`/`Or` are n-ary to keep
/// the formulas produced by the paper's translations (big conjunctions and
/// disjunctions) shallow and readable.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// A propositional variable, identified by its attribute index.
    Var(usize),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction; the empty conjunction is `true`.
    And(Vec<Formula>),
    /// N-ary disjunction; the empty disjunction is `false`.
    Or(Vec<Formula>),
    /// Material implication `lhs ⇒ rhs`.
    Implies(Box<Formula>, Box<Formula>),
    /// Biconditional `lhs ⇔ rhs`.
    Iff(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// The variable `v`.
    pub fn var(v: usize) -> Formula {
        Formula::Var(v)
    }

    /// Negation of a formula.
    ///
    /// (Named `not` to mirror the paper's connective vocabulary alongside
    /// [`Formula::and`] / [`Formula::or`]; it is an associated constructor, not
    /// an implementation of `std::ops::Not`.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// Conjunction of an iterator of formulas (empty ⇒ `true`).
    pub fn and<I: IntoIterator<Item = Formula>>(items: I) -> Formula {
        let v: Vec<Formula> = items.into_iter().collect();
        match v.len() {
            0 => Formula::True,
            1 => v.into_iter().next().expect("len checked"),
            _ => Formula::And(v),
        }
    }

    /// Disjunction of an iterator of formulas (empty ⇒ `false`).
    pub fn or<I: IntoIterator<Item = Formula>>(items: I) -> Formula {
        let v: Vec<Formula> = items.into_iter().collect();
        match v.len() {
            0 => Formula::False,
            1 => v.into_iter().next().expect("len checked"),
            _ => Formula::Or(v),
        }
    }

    /// Implication `lhs ⇒ rhs`.
    pub fn implies(lhs: Formula, rhs: Formula) -> Formula {
        Formula::Implies(Box::new(lhs), Box::new(rhs))
    }

    /// Biconditional `lhs ⇔ rhs`.
    pub fn iff(lhs: Formula, rhs: Formula) -> Formula {
        Formula::Iff(Box::new(lhs), Box::new(rhs))
    }

    /// The conjunction `⋀X` of the variables in `x` (`true` when `x = ∅`).
    pub fn conj_of_set(x: AttrSet) -> Formula {
        Formula::and(x.iter().map(Formula::Var))
    }

    /// The disjunction `⋁X` of the variables in `x` (`false` when `x = ∅`).
    pub fn disj_of_set(x: AttrSet) -> Formula {
        Formula::or(x.iter().map(Formula::Var))
    }

    /// Evaluates the formula under the assignment that makes exactly the
    /// variables in `assignment` true.
    pub fn eval(&self, assignment: AttrSet) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Var(v) => assignment.contains(*v),
            Formula::Not(f) => !f.eval(assignment),
            Formula::And(fs) => fs.iter().all(|f| f.eval(assignment)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval(assignment)),
            Formula::Implies(a, b) => !a.eval(assignment) || b.eval(assignment),
            Formula::Iff(a, b) => a.eval(assignment) == b.eval(assignment),
        }
    }

    /// The set of variable indices occurring in the formula.
    pub fn variables(&self) -> AttrSet {
        match self {
            Formula::True | Formula::False => AttrSet::EMPTY,
            Formula::Var(v) => AttrSet::singleton(*v),
            Formula::Not(f) => f.variables(),
            Formula::And(fs) | Formula::Or(fs) => fs
                .iter()
                .fold(AttrSet::EMPTY, |acc, f| acc.union(f.variables())),
            Formula::Implies(a, b) | Formula::Iff(a, b) => a.variables().union(b.variables()),
        }
    }

    /// Negation-normal form: pushes negations down to the literals and expands
    /// `⇒` / `⇔`.
    pub fn nnf(&self) -> Formula {
        self.nnf_inner(false)
    }

    fn nnf_inner(&self, negate: bool) -> Formula {
        match self {
            Formula::True => {
                if negate {
                    Formula::False
                } else {
                    Formula::True
                }
            }
            Formula::False => {
                if negate {
                    Formula::True
                } else {
                    Formula::False
                }
            }
            Formula::Var(v) => {
                if negate {
                    Formula::not(Formula::Var(*v))
                } else {
                    Formula::Var(*v)
                }
            }
            Formula::Not(f) => f.nnf_inner(!negate),
            Formula::And(fs) => {
                let children: Vec<Formula> = fs.iter().map(|f| f.nnf_inner(negate)).collect();
                if negate {
                    Formula::or(children)
                } else {
                    Formula::and(children)
                }
            }
            Formula::Or(fs) => {
                let children: Vec<Formula> = fs.iter().map(|f| f.nnf_inner(negate)).collect();
                if negate {
                    Formula::and(children)
                } else {
                    Formula::or(children)
                }
            }
            Formula::Implies(a, b) => {
                // a ⇒ b ≡ ¬a ∨ b
                let expanded = Formula::or([Formula::not((**a).clone()), (**b).clone()]);
                expanded.nnf_inner(negate)
            }
            Formula::Iff(a, b) => {
                // a ⇔ b ≡ (a ⇒ b) ∧ (b ⇒ a)
                let expanded = Formula::and([
                    Formula::implies((**a).clone(), (**b).clone()),
                    Formula::implies((**b).clone(), (**a).clone()),
                ]);
                expanded.nnf_inner(negate)
            }
        }
    }

    /// Structural size of the formula (number of AST nodes).
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Var(_) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(Formula::size).sum::<usize>(),
            Formula::Implies(a, b) | Formula::Iff(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Pretty-prints the formula using the attribute names of a universe.
    pub fn format(&self, universe: &Universe) -> String {
        match self {
            Formula::True => "⊤".to_string(),
            Formula::False => "⊥".to_string(),
            Formula::Var(v) => universe.name(*v).to_string(),
            Formula::Not(f) => format!("¬{}", f.format_atomic(universe)),
            Formula::And(fs) => fs
                .iter()
                .map(|f| f.format_atomic(universe))
                .collect::<Vec<_>>()
                .join(" ∧ "),
            Formula::Or(fs) => fs
                .iter()
                .map(|f| f.format_atomic(universe))
                .collect::<Vec<_>>()
                .join(" ∨ "),
            Formula::Implies(a, b) => format!(
                "{} ⇒ {}",
                a.format_atomic(universe),
                b.format_atomic(universe)
            ),
            Formula::Iff(a, b) => format!(
                "{} ⇔ {}",
                a.format_atomic(universe),
                b.format_atomic(universe)
            ),
        }
    }

    fn format_atomic(&self, universe: &Universe) -> String {
        match self {
            Formula::True | Formula::False | Formula::Var(_) | Formula::Not(_) => {
                self.format(universe)
            }
            _ => format!("({})", self.format(universe)),
        }
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "⊤"),
            Formula::False => write!(f, "⊥"),
            Formula::Var(v) => write!(f, "v{v}"),
            Formula::Not(x) => write!(f, "¬{x:?}"),
            Formula::And(xs) => {
                write!(f, "And{xs:?}")
            }
            Formula::Or(xs) => write!(f, "Or{xs:?}"),
            Formula::Implies(a, b) => write!(f, "({a:?} ⇒ {b:?})"),
            Formula::Iff(a, b) => write!(f, "({a:?} ⇔ {b:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic_connectives() {
        let a = Formula::var(0);
        let b = Formula::var(1);
        let f = Formula::and([a.clone(), Formula::not(b.clone())]);
        assert!(f.eval(AttrSet::from_indices([0])));
        assert!(!f.eval(AttrSet::from_indices([0, 1])));
        assert!(!f.eval(AttrSet::EMPTY));

        let g = Formula::implies(a.clone(), b.clone());
        assert!(g.eval(AttrSet::EMPTY));
        assert!(g.eval(AttrSet::from_indices([1])));
        assert!(!g.eval(AttrSet::from_indices([0])));
        assert!(g.eval(AttrSet::from_indices([0, 1])));

        let h = Formula::iff(a, b);
        assert!(h.eval(AttrSet::EMPTY));
        assert!(h.eval(AttrSet::from_indices([0, 1])));
        assert!(!h.eval(AttrSet::from_indices([0])));
    }

    #[test]
    fn empty_connectives() {
        assert_eq!(Formula::and([]), Formula::True);
        assert_eq!(Formula::or([]), Formula::False);
        assert!(Formula::conj_of_set(AttrSet::EMPTY).eval(AttrSet::EMPTY));
        assert!(!Formula::disj_of_set(AttrSet::EMPTY).eval(AttrSet::full(3)));
    }

    #[test]
    fn conj_disj_of_sets() {
        let x = AttrSet::from_indices([0, 2]);
        let conj = Formula::conj_of_set(x);
        assert!(conj.eval(AttrSet::from_indices([0, 2, 3])));
        assert!(!conj.eval(AttrSet::from_indices([0])));
        let disj = Formula::disj_of_set(x);
        assert!(disj.eval(AttrSet::from_indices([2])));
        assert!(!disj.eval(AttrSet::from_indices([1, 3])));
    }

    #[test]
    fn variables_collection() {
        let f = Formula::implies(
            Formula::and([Formula::var(0), Formula::var(3)]),
            Formula::or([Formula::var(1), Formula::not(Formula::var(0))]),
        );
        assert_eq!(f.variables(), AttrSet::from_indices([0, 1, 3]));
    }

    #[test]
    fn nnf_preserves_semantics() {
        let f = Formula::not(Formula::implies(
            Formula::var(0),
            Formula::iff(Formula::var(1), Formula::not(Formula::var(2))),
        ));
        let g = f.nnf();
        for mask in 0u64..8 {
            let a = AttrSet::from_bits(mask);
            assert_eq!(f.eval(a), g.eval(a), "NNF differs at {a:?}");
        }
        // NNF must not contain Implies/Iff and negations only on variables.
        fn check(f: &Formula) {
            match f {
                Formula::Implies(..) | Formula::Iff(..) => panic!("connective not eliminated"),
                Formula::Not(inner) => assert!(matches!(**inner, Formula::Var(_))),
                Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(check),
                _ => {}
            }
        }
        check(&g);
    }

    #[test]
    fn formatting() {
        let u = Universe::of_size(3);
        let f = Formula::implies(
            Formula::var(0),
            Formula::or([
                Formula::var(1),
                Formula::and([Formula::var(2), Formula::var(1)]),
            ]),
        );
        assert_eq!(f.format(&u), "A ⇒ (B ∨ (C ∧ B))");
    }

    #[test]
    fn size_counts_nodes() {
        let f = Formula::and([Formula::var(0), Formula::not(Formula::var(1))]);
        assert_eq!(f.size(), 4);
    }
}
