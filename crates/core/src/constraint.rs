//! The differential-constraint language (Definition 3.1 of the paper).

use crate::parser;
use setlat::{lattice, AttrSet, Family, Universe};
use std::fmt;

/// A differential constraint `X → 𝒴` over a universe `S`.
///
/// `X ⊆ S` is the left-hand side and `𝒴` is a finite family of subsets of `S`.
/// The constraint is *trivial* when some `Y ∈ 𝒴` is contained in `X`
/// (equivalently, when its lattice decomposition `L(X, 𝒴)` is empty).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DiffConstraint {
    /// The left-hand side `X`.
    pub lhs: AttrSet,
    /// The right-hand side family `𝒴`.
    pub rhs: Family,
}

impl DiffConstraint {
    /// Creates the constraint `X → 𝒴`.
    pub fn new(lhs: AttrSet, rhs: Family) -> Self {
        DiffConstraint { lhs, rhs }
    }

    /// Parses a constraint in the textual syntax `"A -> {B, CD}"`
    /// (see [`crate::parser`] for the grammar).
    pub fn parse(text: &str, universe: &Universe) -> Result<Self, parser::ParseError> {
        parser::parse_constraint(text, universe)
    }

    /// The *atomic* constraint `atom(U) = U → {{z} | z ∈ S − U}` of Section 4.2.
    pub fn atom(u_set: AttrSet, universe: &Universe) -> Self {
        DiffConstraint {
            lhs: u_set,
            rhs: Family::of_singletons(u_set.complement_in(universe.len())),
        }
    }

    /// Returns `true` iff the constraint is trivial: `Y ⊆ X` for some `Y ∈ 𝒴`.
    pub fn is_trivial(&self) -> bool {
        self.rhs.some_member_subset_of(self.lhs)
    }

    /// Returns `true` iff the right-hand side has exactly one member — the
    /// fragment the paper's conclusion identifies with functional dependencies.
    pub fn is_single_member(&self) -> bool {
        self.rhs.len() == 1
    }

    /// The lattice decomposition `L(X, 𝒴)` of the constraint over `universe`.
    pub fn lattice(&self, universe: &Universe) -> Vec<AttrSet> {
        lattice::lattice_decomposition(universe, self.lhs, &self.rhs)
    }

    /// The size `|L(X, 𝒴)|` without materializing the decomposition.
    pub fn lattice_size(&self, universe: &Universe) -> i128 {
        lattice::lattice_size(universe, self.lhs, &self.rhs)
    }

    /// Membership test `U ∈ L(X, 𝒴)` (Proposition 2.9's characterization).
    #[inline]
    pub fn lattice_contains(&self, u_set: AttrSet) -> bool {
        lattice::in_lattice(self.lhs, &self.rhs, u_set)
    }

    /// The item footprint `X ∪ ⋃𝒴`.
    pub fn footprint(&self) -> AttrSet {
        self.lhs.union(self.rhs.union_all())
    }

    /// A stable 64-bit fingerprint of the constraint, combining the
    /// fingerprints of `X` and `𝒴` asymmetrically (so `X → {Y}` and `Y → {X}`
    /// differ).  Equal constraints always fingerprint equal; the engine layer
    /// uses this for interning keys and order-independent premise-set digests.
    pub fn fingerprint(&self) -> u64 {
        self.lhs
            .fingerprint()
            .rotate_left(32)
            .wrapping_mul(0x100000001B3)
            ^ self.rhs.fingerprint()
    }

    /// Pretty-prints the constraint, e.g. `"A → {B, CD}"`.
    pub fn format(&self, universe: &Universe) -> String {
        format!(
            "{} → {}",
            universe.format_set(self.lhs),
            self.rhs.format(universe)
        )
    }
}

impl fmt::Debug for DiffConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DiffConstraint({:?} → {:?})", self.lhs, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u() -> Universe {
        Universe::of_size(4)
    }

    #[test]
    fn construction_and_triviality() {
        let u = u();
        let c = DiffConstraint::new(
            u.parse_set("A").unwrap(),
            Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("CD").unwrap()]),
        );
        assert!(!c.is_trivial());
        let t = DiffConstraint::new(
            u.parse_set("AB").unwrap(),
            Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("CD").unwrap()]),
        );
        assert!(t.is_trivial());
        // A constraint whose RHS contains ∅ is always trivial.
        let e = DiffConstraint::new(u.parse_set("A").unwrap(), Family::single(AttrSet::EMPTY));
        assert!(e.is_trivial());
    }

    #[test]
    fn lattice_of_constraint_matches_module() {
        let u = u();
        let c = DiffConstraint::parse("A -> {B, CD}", &u).unwrap();
        let l = c.lattice(&u);
        assert_eq!(l.len(), 3);
        assert_eq!(c.lattice_size(&u), 3);
        for s in &l {
            assert!(c.lattice_contains(*s));
        }
        assert!(!c.lattice_contains(u.parse_set("AB").unwrap()));
    }

    #[test]
    fn trivial_constraint_has_empty_lattice() {
        let u = u();
        let t = DiffConstraint::parse("AB -> {B}", &u).unwrap();
        assert!(t.is_trivial());
        assert!(t.lattice(&u).is_empty());
        assert_eq!(t.lattice_size(&u), 0);
    }

    #[test]
    fn atom_constraints() {
        let u = u();
        let a = DiffConstraint::atom(u.parse_set("AC").unwrap(), &u);
        assert_eq!(a.lhs, u.parse_set("AC").unwrap());
        assert_eq!(a.rhs.len(), 2);
        assert!(a.rhs.contains(u.parse_set("B").unwrap()));
        assert!(a.rhs.contains(u.parse_set("D").unwrap()));
        // Remark 4.5: L(atom(U)) = {U}.
        assert_eq!(a.lattice(&u), vec![u.parse_set("AC").unwrap()]);
        // atom(S) has an empty RHS and lattice {S}.
        let full = DiffConstraint::atom(u.full_set(), &u);
        assert!(full.rhs.is_empty());
        assert_eq!(full.lattice(&u), vec![u.full_set()]);
    }

    #[test]
    fn single_member_detection_and_footprint() {
        let u = u();
        let c = DiffConstraint::parse("A -> {BC}", &u).unwrap();
        assert!(c.is_single_member());
        assert_eq!(c.footprint(), u.parse_set("ABC").unwrap());
        let d = DiffConstraint::parse("A -> {B, C}", &u).unwrap();
        assert!(!d.is_single_member());
    }

    #[test]
    fn formatting() {
        let u = u();
        let c = DiffConstraint::parse("A -> {B, CD}", &u).unwrap();
        assert_eq!(c.format(&u), "A → {B, CD}");
        let e = DiffConstraint::parse("A -> {}", &u).unwrap();
        assert_eq!(e.format(&u), "A → {}");
    }
}
