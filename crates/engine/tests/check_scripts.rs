//! End-to-end tests for `diffcond check` (ISSUE 10): the flow-sensitive
//! script linter must pass every shipped example script, reject the seeded
//! broken script with `file:line:col: severity:` diagnostics and a nonzero
//! exit, and every shipped script must also *execute* without a single
//! `err` reply — lint-clean and run-clean are checked against each other.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("engine crate lives two levels below the repository root")
        .to_path_buf()
}

fn shipped_scripts() -> Vec<PathBuf> {
    let dir = repo_root().join("examples/scripts");
    let mut scripts: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("examples/scripts exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "dc"))
        .collect();
    scripts.sort();
    assert!(!scripts.is_empty(), "no .dc scripts in {}", dir.display());
    scripts
}

fn diffcond() -> Command {
    Command::new(env!("CARGO_BIN_EXE_diffcond"))
}

#[test]
fn check_passes_every_shipped_script() {
    let scripts = shipped_scripts();
    let output = diffcond()
        .arg("check")
        .args(&scripts)
        .output()
        .expect("diffcond runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "shipped scripts must lint clean, got:\n{stdout}"
    );
    assert!(
        !stdout.contains("error:"),
        "shipped scripts must carry no errors:\n{stdout}"
    );
}

#[test]
fn check_rejects_the_broken_script_with_located_diagnostics() {
    let broken = repo_root().join("crates/engine/tests/data/broken.dc");
    let output = diffcond()
        .arg("check")
        .arg(&broken)
        .output()
        .expect("diffcond runs");
    assert_eq!(output.status.code(), Some(1), "broken script must exit 1");
    let stdout = String::from_utf8_lossy(&output.stdout);
    for expected in [
        "broken.dc:4:1: error: no universe in session slot 0 yet",
        "broken.dc:6:8: error: constraint parse error",
        "broken.dc:8:8: warn: duplicate assert: already asserted at line 7",
        "broken.dc:9:9: error: retract of a constraint that is not an asserted premise",
        "broken.dc:10:1: error: mine before any `load`",
        "broken.dc:12:8: error: forget of a set that has no known value",
        "broken.dc:13:1: warn: bound with no known values",
        "broken.dc:14:9: error: no session slot with id 7",
        "broken.dc:19:1: warn: unreachable: the script quits at line 18",
    ] {
        assert!(
            stdout.contains(expected),
            "missing diagnostic `{expected}` in:\n{stdout}"
        );
    }
}

#[test]
fn check_without_files_exits_2() {
    let output = diffcond().arg("check").output().expect("diffcond runs");
    assert_eq!(output.status.code(), Some(2));
    let output = diffcond()
        .arg("check")
        .arg("no/such/script.dc")
        .output()
        .expect("diffcond runs");
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn shipped_scripts_also_execute_without_errors() {
    use std::io::Write as _;
    for script in shipped_scripts() {
        let text = std::fs::read_to_string(&script).expect("script is readable");
        let mut child = diffcond()
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("diffcond starts");
        child
            .stdin
            .take()
            .expect("stdin piped")
            .write_all(text.as_bytes())
            .expect("script fits the pipe");
        let output = child.wait_with_output().expect("diffcond exits");
        let stdout = String::from_utf8_lossy(&output.stdout);
        let errors: Vec<&str> = stdout.lines().filter(|l| l.starts_with("err")).collect();
        assert!(
            errors.is_empty(),
            "{} produced err replies: {errors:?}",
            script.display()
        );
    }
}
