//! E12 — bound-query serving: what the diffcon-bounds subsystem costs and
//! saves.
//!
//! Three questions, one serving-style setup (a premise chain satisfied by a
//! generated basket database, knowns drawn from its true supports):
//!
//! * **derivation latency by universe size** — the full propagation path as
//!   `2^{|S|}` grows, versus the enumeration-free relaxation past the
//!   budget;
//! * **cache effect** — repeated `bound` queries against a warm session
//!   (the serving configuration) versus fresh derivations;
//! * **mining savings** — support scans needed to build the NDI
//!   representation with and without constraint awareness (a count table,
//!   not a timing).
//!
//! The count tables and self-measured timings are also written to
//! `BENCH_bounds.json` at the repository root for trend tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diffcon::DiffConstraint;
use diffcon_bench::{JsonReport, Table};
use diffcon_bounds::derive::{derive_propagated, derive_relaxed};
use diffcon_bounds::{mining, BoundsConfig, BoundsProblem, SideConditions};
use diffcon_engine::Session;
use fis::basket::BasketDb;
use fis::generator::{self, QuestConfig};
use fis::ndi::NdiRepresentation;
use setlat::{AttrSet, Universe};
use std::time::Instant;

/// A premise chain `A→{B}, B→{C}, …` trimmed to those satisfied by `db`.
fn satisfied_chain(universe: &Universe, db: &BasketDb) -> Vec<DiffConstraint> {
    (0..universe.len() - 1)
        .map(|i| {
            DiffConstraint::new(
                AttrSet::singleton(i),
                setlat::Family::single(AttrSet::singleton(i + 1)),
            )
        })
        .filter(|c| !db.baskets().iter().any(|&b| c.lattice_contains(b)))
        .collect()
}

/// One bound-serving workload: universe, satisfied constraints, true knowns.
struct Workload {
    universe: Universe,
    constraints: Vec<DiffConstraint>,
    knowns: Vec<(AttrSet, f64)>,
    queries: Vec<AttrSet>,
}

fn workload(n: usize) -> Workload {
    let universe = Universe::of_size(n);
    let db = generator::quest_like(
        7,
        &QuestConfig {
            num_items: n,
            num_baskets: 200,
            ..QuestConfig::default()
        },
    );
    let constraints = satisfied_chain(&universe, &db);
    // Knowns: the empty set plus every singleton and a few pairs.
    let mut knowns: Vec<(AttrSet, f64)> = vec![(AttrSet::EMPTY, db.len() as f64)];
    for i in 0..n {
        knowns.push((
            AttrSet::singleton(i),
            db.support(AttrSet::singleton(i)) as f64,
        ));
    }
    for i in 0..n - 1 {
        let pair = AttrSet::from_indices([i, i + 1]);
        knowns.push((pair, db.support(pair) as f64));
    }
    // Queries: the unknown triples.
    let queries: Vec<AttrSet> = (0..n - 2)
        .map(|i| AttrSet::from_indices([i, i + 1, i + 2]))
        .collect();
    Workload {
        universe,
        constraints,
        knowns,
        queries,
    }
}

fn bench_derivation_by_universe(c: &mut Criterion) {
    let mut group = c.benchmark_group("E12_derive_by_universe");
    group.sample_size(15);
    for &n in &[8usize, 12, 16] {
        let w = workload(n);
        let problem = BoundsProblem {
            universe: &w.universe,
            constraints: &w.constraints,
            knowns: &w.knowns,
            side: SideConditions::support(),
        };
        let config = BoundsConfig::default();
        group.bench_with_input(BenchmarkId::new("propagation", n), &w.queries, |b, qs| {
            b.iter(|| {
                qs.iter()
                    .map(|&q| {
                        derive_propagated(&problem, q, &config)
                            .unwrap()
                            .interval
                            .width()
                    })
                    .sum::<f64>()
            })
        });
        group.bench_with_input(BenchmarkId::new("relaxed", n), &w.queries, |b, qs| {
            b.iter(|| {
                qs.iter()
                    .map(|&q| derive_relaxed(&problem, q).unwrap().interval.width())
                    .sum::<f64>()
            })
        });
    }
    group.finish();
}

fn bench_session_cache(c: &mut Criterion) {
    let w = workload(12);
    let mut session = Session::new(w.universe.clone());
    for p in &w.constraints {
        session.assert_constraint(p);
    }
    for &(x, v) in &w.knowns {
        session.set_known(x, v);
    }
    let mut group = c.benchmark_group("E12_session_cache");
    group.sample_size(15);
    group.bench_with_input(
        BenchmarkId::new("cold", w.queries.len()),
        &w.queries,
        |b, qs| {
            b.iter(|| {
                session.clear_caches();
                qs.iter()
                    .filter(|&&q| session.bound(q).unwrap().cached)
                    .count()
            })
        },
    );
    // Warm the cache once, then measure pure hits.
    for &q in &w.queries {
        session.bound(q).unwrap();
    }
    group.bench_with_input(
        BenchmarkId::new("warm", w.queries.len()),
        &w.queries,
        |b, qs| {
            b.iter(|| {
                qs.iter()
                    .filter(|&&q| session.bound(q).unwrap().cached)
                    .count()
            })
        },
    );
    group.finish();
}

fn table_mining_savings(ns: &[usize]) -> Table {
    let mut table = Table::new(
        "E12: NDI support scans, classic vs constraint-aware (κ = 4)",
        [
            "items",
            "itemsets",
            "classic_scans",
            "constrained_scans",
            "pinned",
        ],
    );
    for &n in ns {
        let universe = Universe::of_size(n);
        let raw = generator::quest_like(
            11,
            &QuestConfig {
                num_items: n,
                num_baskets: 150,
                ..QuestConfig::default()
            },
        );
        // Plant association structure the constraints can exploit: items 0
        // and 1 imply their successors, so A → {B} and B → {C} hold exactly.
        let db = BasketDb::from_baskets(
            n,
            raw.baskets().iter().map(|&b| {
                let mut b = b;
                for i in 0..2 {
                    if b.contains(i) {
                        b.insert(i + 1);
                    }
                }
                b
            }),
        );
        let constraints = satisfied_chain(&universe, &db);
        let kappa = 4;
        let (_, classic) =
            mining::ndi_under_constraints(&db, &[], kappa, &BoundsConfig::mining()).unwrap();
        let (rep, constrained) =
            mining::ndi_under_constraints(&db, &constraints, kappa, &BoundsConfig::mining())
                .unwrap();
        // Sanity: the constrained build must stay faithful.
        assert_eq!(rep.kappa, kappa);
        assert!(NdiRepresentation::build(&db, kappa).size() >= rep.size());
        table.push_row([
            n.to_string(),
            constrained.considered.to_string(),
            classic.support_scans.to_string(),
            constrained.support_scans.to_string(),
            constrained.derived_exact.to_string(),
        ]);
    }
    table
}

fn emit_json_report() {
    let mut report = JsonReport::new("bounds");
    // Self-measured derivation latency at n = 12 (propagation vs relaxed).
    let w = workload(12);
    let problem = BoundsProblem {
        universe: &w.universe,
        constraints: &w.constraints,
        knowns: &w.knowns,
        side: SideConditions::support(),
    };
    let config = BoundsConfig::default();
    let time_us = |f: &mut dyn FnMut()| -> f64 {
        let passes = 10;
        let start = Instant::now();
        for _ in 0..passes {
            f();
        }
        start.elapsed().as_secs_f64() * 1e6 / passes as f64
    };
    let propagation_us = time_us(&mut || {
        for &q in &w.queries {
            criterion::black_box(derive_propagated(&problem, q, &config).unwrap());
        }
    });
    let relaxed_us = time_us(&mut || {
        for &q in &w.queries {
            criterion::black_box(derive_relaxed(&problem, q).unwrap());
        }
    });
    let mut session = Session::new(w.universe.clone());
    for p in &w.constraints {
        session.assert_constraint(p);
    }
    for &(x, v) in &w.knowns {
        session.set_known(x, v);
    }
    for &q in &w.queries {
        session.bound(q).unwrap();
    }
    let cached_us = time_us(&mut || {
        for &q in &w.queries {
            criterion::black_box(session.bound(q).unwrap());
        }
    });
    report.push_metric("universe", 12.0);
    report.push_metric("queries_per_pass", w.queries.len() as f64);
    report.push_metric("propagation_us", propagation_us);
    report.push_metric("relaxed_us", relaxed_us);
    report.push_metric("cached_us", cached_us);
    report.push_table(table_mining_savings(&[8, 10]));
    match report.write_to_repo_root("BENCH_bounds.json") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_bounds.json: {e}"),
    }
}

fn bench_bounds_report(c: &mut Criterion) {
    table_mining_savings(&[8, 10]).eprint();
    emit_json_report();
    // A token measured target so the group shows up in criterion output.
    let w = workload(10);
    let problem = BoundsProblem {
        universe: &w.universe,
        constraints: &w.constraints,
        knowns: &w.knowns,
        side: SideConditions::support(),
    };
    let config = BoundsConfig::default();
    let mut group = c.benchmark_group("E12_report");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("derive_triple", 10),
        &w.queries[0],
        |b, &q| {
            b.iter(|| {
                derive_propagated(&problem, q, &config)
                    .unwrap()
                    .interval
                    .width()
            })
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_bounds_report,
    bench_derivation_by_universe,
    bench_session_cache
);
criterion_main!(benches);
