//! The `diffcond serve` TCP front-end: the line protocol of [`crate::protocol`]
//! served over sockets, turning the in-process engine into a network server.
//!
//! # Execution model
//!
//! A [`NetServer`] owns a listening socket and an accept loop
//! ([`NetServer::run`]) that serves each connection on its own thread.  Every
//! connection gets a private session namespace — its own
//! [`crate::server_state::SessionRegistry`] of numbered slots behind a
//! per-connection [`Pipeline`] — so two clients never see each other's
//! premises, knowns, or datasets, and all of a connection's slots close when
//! it disconnects.  Inside one connection the full protocol is available,
//! including the `session` verbs and the concurrent query evaluation of
//! `--threads N` (each connection's pipeline evaluates its read-only verbs
//! on its own rayon-backed worker set; the shim's pools are sizes, not
//! persistent threads, so per-connection pools cost nothing at rest).
//!
//! # Framing and flushing
//!
//! Requests are newline-delimited as specified in the *Network framing*
//! section of the [`crate::protocol`] docs: one request per line, an
//! optional trailing `\r` stripped, at most
//! [`protocol::MAX_REQUEST_BYTES`] bytes per line (configurable via
//! [`NetConfig::max_request_bytes`]).  Framing violations — oversized lines
//! (discarded up to their newline without unbounded buffering) and invalid
//! UTF-8 — answer `err` *at their position in the request order* (via
//! [`Pipeline::push_reply`], so they cannot overtake earlier deferred
//! queries) and the connection keeps serving.
//!
//! The pipeline's wave batching is reconciled with strict request/response
//! clients by an **idle flush**: whenever the connection's read buffer runs
//! dry and replies are pending, the pipeline is flushed before blocking on
//! the socket again.  A client that pipelines k requests gets its replies
//! evaluated in concurrent waves; a client that sends one request and waits
//! gets its reply immediately.  Reply order is the request order in both
//! cases, so the reply *stream* is identical to what the in-process
//! [`Pipeline`] (and therefore the serial [`crate::protocol::Server`])
//! produces on the same script.
//!
//! # Admission and shutdown
//!
//! At most [`NetConfig::max_connections`] connections are served at once;
//! past the cap a connection is answered one
//! `err server at connection capacity (…)` line and closed, leaving the
//! accept loop free (a slow client can occupy one slot, never the
//! listener).  `quit` ends only its own connection (reply `bye`, graceful
//! close); a client disconnecting mid-line or mid-wave just ends that
//! connection.  Writes to a client that vanished surface as `EPIPE` errors
//! (Rust ignores `SIGPIPE`), which close that connection and nothing else.
//! [`ShutdownHandle::shutdown`] stops the accept loop itself.

use crate::metrics::{ConnCosts, EngineMetrics};
use crate::protocol::{self, Reply};
use crate::server_state::Pipeline;
use crate::session::SessionConfig;
use diffcon_obs::profile::{self, StageTag};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Admission and serving parameters of a [`NetServer`].
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Per-connection session configuration (cache bounds, budgets).
    pub session: SessionConfig,
    /// Worker threads evaluating each connection's read-only query verbs
    /// (1 = serial; the `--threads` semantics of the stdin server).
    pub threads: usize,
    /// Concurrent-connection admission cap.
    pub max_connections: usize,
    /// Per-request line-length admission cap, in bytes.
    pub max_request_bytes: usize,
    /// Slow-query threshold in microseconds, forwarded to every
    /// connection's [`Pipeline::set_slow_query_us`] (`None` disables the
    /// stderr log).
    pub slow_query_us: Option<u64>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            session: SessionConfig::default(),
            threads: 1,
            max_connections: NetConfig::DEFAULT_MAX_CONNECTIONS,
            max_request_bytes: protocol::MAX_REQUEST_BYTES,
            slow_query_us: None,
        }
    }
}

impl NetConfig {
    /// Default concurrent-connection cap.
    pub const DEFAULT_MAX_CONNECTIONS: usize = 64;
}

/// Shared accept-loop state: the shutdown flag and the connection gauges.
#[derive(Debug, Default)]
struct NetState {
    shutdown: AtomicBool,
    active: AtomicUsize,
    served: AtomicU64,
    refused: AtomicU64,
}

/// Decrements the active-connection gauge even if a connection handler
/// panics, so one poisoned connection can never leak admission slots.
struct ActiveGuard(Arc<NetState>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
        self.0.served.fetch_add(1, Ordering::Relaxed);
    }
}

/// A handle that stops a running [`NetServer`] accept loop from another
/// thread (tests, embedding examples, signal handlers).
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    state: Arc<NetState>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Flags shutdown and unblocks the accept loop (with a throwaway
    /// connection to the listener).  Connections already being served run
    /// to completion on their own threads; no new ones are accepted.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // The accept loop is blocked in `accept`; poke it awake.  Failure is
        // fine — it means the listener is already gone.
        let _ = TcpStream::connect(self.addr);
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.state.active.load(Ordering::SeqCst)
    }

    /// Connections served to completion since the server started.
    pub fn served_connections(&self) -> u64 {
        self.state.served.load(Ordering::Relaxed)
    }

    /// Connections refused at the admission cap.
    pub fn refused_connections(&self) -> u64 {
        self.state.refused.load(Ordering::Relaxed)
    }
}

/// A bound (but not yet running) `diffcond` TCP server.
#[derive(Debug)]
pub struct NetServer {
    listener: TcpListener,
    addr: SocketAddr,
    config: NetConfig,
    state: Arc<NetState>,
}

impl NetServer {
    /// Binds the listening socket.  Bind to port 0 for an ephemeral port
    /// (tests, benches) and read it back with [`NetServer::local_addr`].
    pub fn bind(addr: impl ToSocketAddrs, config: NetConfig) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(NetServer {
            listener,
            addr,
            config,
            state: Arc::new(NetState::default()),
        })
    }

    /// The bound address (the actual port, when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can stop [`NetServer::run`] and read the gauges.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.state),
            addr: self.addr,
        }
    }

    /// Runs the accept loop until [`ShutdownHandle::shutdown`] is called.
    /// Each admitted connection is served on its own spawned thread; the
    /// loop itself only accepts, admission-checks, and hands off.
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                // Transient accept failures (aborted handshakes, fd
                // pressure) must not kill the serving loop.
                Err(_) => continue,
            };
            if self.state.active.load(Ordering::SeqCst) >= self.config.max_connections {
                self.state.refused.fetch_add(1, Ordering::Relaxed);
                refuse(stream, self.config.max_connections);
                continue;
            }
            self.state.active.fetch_add(1, Ordering::SeqCst);
            let guard = ActiveGuard(Arc::clone(&self.state));
            let config = self.config;
            std::thread::spawn(move || {
                let _guard = guard;
                // Connection-level IO errors (disconnects, EPIPE) end the
                // connection, never the server.
                let _ = serve_connection(stream, &config);
            });
        }
        Ok(())
    }
}

/// Best-effort refusal at the admission cap: one `err` line, then close.
fn refuse(stream: TcpStream, cap: usize) {
    let mut stream = stream;
    let _ = writeln!(
        stream,
        "err server at connection capacity ({cap} connections)"
    );
}

/// One raw frame from a byte stream.  `pub(crate)` because the blocking
/// [`crate::client`] frames its replies with the same reader (under a
/// different overflow policy), so a framing fix can never apply to one
/// side of the wire only.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Frame {
    /// A complete line (newline stripped) in the caller's buffer.
    Line,
    /// Data followed by EOF instead of a newline.  The server serves it
    /// like a line (the last request of a piped script); the client treats
    /// it as a truncated reply from a dying server.
    Partial,
    /// A line over the cap, discarded up to its newline; payload is the
    /// discarded length in bytes.  The stream stays framed: the next read
    /// starts at the next line.
    Oversized(usize),
    /// Clean end of input.
    Eof,
}

/// Reads one newline-delimited frame into `line` (cleared first), enforcing
/// the byte cap without ever buffering more than the cap plus one internal
/// read: an over-cap line is *discarded* chunk by chunk until its newline.
pub(crate) fn read_frame(
    reader: &mut impl BufRead,
    line: &mut Vec<u8>,
    max: usize,
) -> io::Result<Frame> {
    line.clear();
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            return Ok(if line.is_empty() {
                Frame::Eof
            } else {
                Frame::Partial
            });
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if line.len() + pos > max {
                    let dropped = line.len() + pos;
                    reader.consume(pos + 1);
                    return Ok(Frame::Oversized(dropped));
                }
                line.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                return Ok(Frame::Line);
            }
            None => {
                let chunk = buf.len();
                if line.len() + chunk > max {
                    let swallowed = line.len() + chunk;
                    reader.consume(chunk);
                    return discard_frame(reader, swallowed);
                }
                line.extend_from_slice(buf);
                reader.consume(chunk);
            }
        }
    }
}

/// Discards the rest of an over-cap line (everything up to and including
/// the next newline) without buffering it, counting the dropped bytes.
fn discard_frame(reader: &mut impl BufRead, mut dropped: usize) -> io::Result<Frame> {
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            // Oversized garbage then disconnect: nothing left to answer.
            return Ok(Frame::Eof);
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                dropped += pos;
                reader.consume(pos + 1);
                return Ok(Frame::Oversized(dropped));
            }
            None => {
                let chunk = buf.len();
                dropped += chunk;
                reader.consume(chunk);
            }
        }
    }
}

/// Profiling tag for blocking socket reads (covers client think-time too —
/// a connection thread sampled in `net.read` is *waiting on the wire*, which
/// is exactly the transport tax a profile should make visible).
static STAGE_NET_READ: StageTag = StageTag::new("net.read");
/// Profiling tag for reply writes and flushes.
static STAGE_NET_WRITE: StageTag = StageTag::new("net.write");

/// Serves one connection to completion: frames requests, drives the
/// connection's private [`Pipeline`], emits replies in request order, and
/// flushes pending waves whenever the input buffer runs dry.
fn serve_connection(stream: TcpStream, config: &NetConfig) -> io::Result<()> {
    // One request/one reply traffic benefits from immediate segments.
    let _ = stream.set_nodelay(true);
    profile::set_thread_class("conn");
    let metrics = EngineMetrics::global();
    metrics.connections.inc();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut pipeline = Pipeline::new(config.session, config.threads.max(1));
    pipeline.set_slow_query_us(config.slow_query_us);
    // Per-connection cost attribution, keyed by the pipeline's server
    // connection id (the same id its flight records and trace ids carry).
    let costs = Arc::new(ConnCosts::default());
    metrics.register_connection(pipeline.server().connection_id(), Arc::clone(&costs));
    let mut line = Vec::new();
    loop {
        // Idle flush: nothing buffered to scan, so release pending waves
        // before blocking — a strict request/response client is waiting.
        if pipeline.pending() > 0 && reader.buffer().is_empty() {
            metrics.idle_flushes.inc();
            let replies = pipeline.finish();
            emit_measured(&mut writer, replies, &costs)?;
        }
        // The frame stage is only timed when bytes are already buffered:
        // with an empty buffer the read blocks on the client thinking, and
        // that wait is the client's latency, not the server's.
        let framed = !reader.buffer().is_empty();
        let frame_start = Instant::now();
        let read_guard = profile::stage(&STAGE_NET_READ);
        let frame = read_frame(&mut reader, &mut line, config.max_request_bytes)?;
        drop(read_guard);
        let frame_ns = if framed {
            let elapsed = frame_start.elapsed();
            metrics.frame_ns.record_duration(elapsed);
            elapsed.as_nanos() as u64
        } else {
            0
        };
        let (replies, quit) = match frame {
            Frame::Eof => break,
            Frame::Oversized(got) => {
                metrics.framing_errors.inc();
                pipeline.push_reply(Reply::err(protocol::oversized_request(
                    got,
                    config.max_request_bytes,
                )))
            }
            Frame::Line | Frame::Partial => {
                let bytes_in = line.len() as u64 + 1;
                metrics.frames.inc();
                metrics.bytes_read.add(bytes_in);
                costs.requests.inc();
                costs.bytes_read.add(bytes_in);
                match protocol::decode_request(&line) {
                    Ok(text) => pipeline.push_line_io(text, bytes_in, frame_ns),
                    Err(message) => {
                        metrics.framing_errors.inc();
                        pipeline.push_reply(Reply::err(message))
                    }
                }
            }
        };
        emit_measured(&mut writer, replies, &costs)?;
        if quit {
            return Ok(());
        }
    }
    // Clean disconnect: release whatever the client pipelined before EOF,
    // then drop the pipeline — closing every session slot the connection
    // opened (close-on-disconnect).
    let replies = pipeline.finish();
    emit_measured(&mut writer, replies, &costs)
}

/// Writes released replies (one line each; silent replies are empty and
/// skipped) with reply-stage accounting, one sample per reply line: each
/// non-silent reply's write latency feeds the `reply` stage histogram and
/// its flight record (taken here, so the record carries the measured write
/// rather than the zero the in-process path commits), and written bytes
/// are charged to both the global counters and the connection's.
fn emit_measured(
    writer: &mut impl Write,
    replies: Vec<Reply>,
    costs: &ConnCosts,
) -> io::Result<()> {
    let _write_stage = profile::stage(&STAGE_NET_WRITE);
    let metrics = EngineMetrics::global();
    for mut reply in replies {
        if reply.text.is_empty() {
            continue;
        }
        let bytes = reply.text.len() as u64 + 1;
        let start = Instant::now();
        writer.write_all(reply.text.as_bytes())?;
        writer.write_all(b"\n")?;
        let reply_ns = start.elapsed().as_nanos() as u64;
        metrics.reply_ns.record(reply_ns);
        metrics.bytes_written.add(bytes);
        costs.bytes_written.add(bytes);
        if let Some(record) = reply.take_flight() {
            record.commit(reply_ns, bytes);
        }
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_lines(input: &[u8], max: usize) -> Vec<Result<Vec<u8>, usize>> {
        let mut reader = BufReader::with_capacity(8, input);
        let mut line = Vec::new();
        let mut out = Vec::new();
        loop {
            match read_frame(&mut reader, &mut line, max).unwrap() {
                Frame::Eof => return out,
                Frame::Line | Frame::Partial => out.push(Ok(line.clone())),
                Frame::Oversized(got) => out.push(Err(got)),
            }
        }
    }

    #[test]
    fn frames_split_on_newlines_and_keep_final_unterminated_line() {
        let frames = frame_lines(b"stats\nquit\nlast", 100);
        assert_eq!(
            frames,
            vec![
                Ok(b"stats".to_vec()),
                Ok(b"quit".to_vec()),
                Ok(b"last".to_vec())
            ]
        );
    }

    #[test]
    fn empty_lines_are_frames_not_eof() {
        let frames = frame_lines(b"\n\nok\n", 100);
        assert_eq!(frames, vec![Ok(vec![]), Ok(vec![]), Ok(b"ok".to_vec())]);
    }

    #[test]
    fn oversized_lines_are_discarded_with_exact_accounting() {
        // 30-byte line against a 10-byte cap, then a small follow-up that
        // must still arrive intact (the tiny 8-byte BufReader forces the
        // discard path across many fills).
        let mut input = vec![b'x'; 30];
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        let frames = frame_lines(&input, 10);
        assert_eq!(frames, vec![Err(30), Ok(b"ok".to_vec())]);
    }

    #[test]
    fn oversized_exactly_at_cap_is_served() {
        let mut input = vec![b'y'; 10];
        input.push(b'\n');
        let frames = frame_lines(&input, 10);
        assert_eq!(frames, vec![Ok(vec![b'y'; 10])]);
        let mut input = vec![b'y'; 11];
        input.push(b'\n');
        let frames = frame_lines(&input, 10);
        assert_eq!(frames, vec![Err(11)]);
    }

    #[test]
    fn oversized_then_eof_just_ends() {
        let frames = frame_lines(&[b'z'; 64], 10);
        assert_eq!(frames, vec![]);
    }
}
