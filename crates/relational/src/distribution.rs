//! Probability distributions over the tuples of a relation (Definition 7.1).
//!
//! The paper couples a nonempty relation `r` with a distribution `p` that is
//! strictly positive on `r` and zero elsewhere.  The marginal `p_X` on an
//! attribute set `X` assigns to each `X`-value the total probability of the
//! tuples projecting onto it; the Simpson function is then built from these
//! marginals in [`crate::simpson`].

use crate::relation::{Relation, Tuple};
use setlat::AttrSet;
use std::collections::HashMap;

/// A nonempty relation together with a strictly positive probability
/// distribution over its tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbabilisticRelation {
    relation: Relation,
    probabilities: Vec<f64>,
}

impl ProbabilisticRelation {
    /// Couples a relation with explicit tuple probabilities.
    ///
    /// # Panics
    /// Panics if the relation is empty, the probability vector has the wrong
    /// length, any probability is ≤ 0, or the probabilities do not sum to 1
    /// (within 1e-9).
    pub fn new(relation: Relation, probabilities: Vec<f64>) -> Self {
        assert!(!relation.is_empty(), "the relation must be nonempty");
        assert_eq!(
            probabilities.len(),
            relation.len(),
            "need exactly one probability per tuple"
        );
        assert!(
            probabilities.iter().all(|&p| p > 0.0),
            "the distribution must be strictly positive on every tuple of r"
        );
        let total: f64 = probabilities.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "probabilities must sum to 1 (sum = {total})"
        );
        ProbabilisticRelation {
            relation,
            probabilities,
        }
    }

    /// Couples a relation with the uniform distribution `p(t) = 1 / |r|`.
    ///
    /// # Panics
    /// Panics if the relation is empty.
    pub fn uniform(relation: Relation) -> Self {
        assert!(!relation.is_empty(), "the relation must be nonempty");
        let n = relation.len();
        ProbabilisticRelation {
            relation,
            probabilities: vec![1.0 / n as f64; n],
        }
    }

    /// The underlying relation.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// The number of attributes.
    pub fn arity(&self) -> usize {
        self.relation.arity()
    }

    /// The probability of tuple index `i`.
    pub fn probability(&self, i: usize) -> f64 {
        self.probabilities[i]
    }

    /// The probabilities, aligned with [`Relation::tuples`].
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// The marginal distribution `p_X`: a map from `X`-projections to their
    /// total probability.
    pub fn marginal(&self, x: AttrSet) -> HashMap<Vec<u32>, f64> {
        let mut out: HashMap<Vec<u32>, f64> = HashMap::new();
        for (t, &p) in self.relation.tuples().iter().zip(&self.probabilities) {
            *out.entry(Relation::project_tuple(t, x)).or_insert(0.0) += p;
        }
        out
    }

    /// The marginal probability `p_X(x_val)` of one specific `X`-value.
    pub fn marginal_probability(&self, x: AttrSet, value: &[u32]) -> f64 {
        self.relation
            .tuples()
            .iter()
            .zip(&self.probabilities)
            .filter(|(t, _)| Relation::project_tuple(t, x) == value)
            .map(|(_, &p)| p)
            .sum()
    }

    /// Iterates over `(tuple, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, f64)> + '_ {
        self.relation
            .tuples()
            .iter()
            .zip(self.probabilities.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        Relation::from_tuples(
            3,
            vec![
                vec![1, 10, 100],
                vec![1, 10, 200],
                vec![2, 20, 100],
                vec![2, 30, 100],
            ],
        )
    }

    #[test]
    fn uniform_distribution() {
        let pr = ProbabilisticRelation::uniform(sample());
        assert!((pr.probability(0) - 0.25).abs() < 1e-12);
        let total: f64 = pr.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn explicit_distribution_validation() {
        let r = sample();
        let pr = ProbabilisticRelation::new(r.clone(), vec![0.4, 0.3, 0.2, 0.1]);
        assert!((pr.probability(3) - 0.1).abs() < 1e-12);
        assert!(std::panic::catch_unwind(|| {
            ProbabilisticRelation::new(r.clone(), vec![0.5, 0.5])
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            ProbabilisticRelation::new(r.clone(), vec![0.5, 0.5, 0.0, 0.0])
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            ProbabilisticRelation::new(r.clone(), vec![0.4, 0.4, 0.4, 0.4])
        })
        .is_err());
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_relation_rejected() {
        let _ = ProbabilisticRelation::uniform(Relation::new(2));
    }

    #[test]
    fn marginals_sum_to_one() {
        let pr = ProbabilisticRelation::new(sample(), vec![0.4, 0.3, 0.2, 0.1]);
        for x in [
            AttrSet::EMPTY,
            AttrSet::from_indices([0]),
            AttrSet::from_indices([0, 2]),
            AttrSet::full(3),
        ] {
            let marginal = pr.marginal(x);
            let total: f64 = marginal.values().sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "marginal on {x:?} sums to {total}"
            );
        }
    }

    #[test]
    fn marginal_values() {
        let pr = ProbabilisticRelation::new(sample(), vec![0.4, 0.3, 0.2, 0.1]);
        let x = AttrSet::from_indices([0]);
        assert!((pr.marginal_probability(x, &[1]) - 0.7).abs() < 1e-12);
        assert!((pr.marginal_probability(x, &[2]) - 0.3).abs() < 1e-12);
        assert_eq!(pr.marginal(x).len(), 2);
        // Marginal on ∅ lumps everything together.
        assert_eq!(pr.marginal(AttrSet::EMPTY).len(), 1);
    }

    #[test]
    fn iteration() {
        let pr = ProbabilisticRelation::uniform(sample());
        assert_eq!(pr.iter().count(), 4);
        for (_, p) in pr.iter() {
            assert!(p > 0.0);
        }
    }
}
