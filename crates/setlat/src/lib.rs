//! # setlat — set functions and lattice decompositions
//!
//! This crate is the foundational substrate for the reproduction of
//! *Differential Constraints* (Sayrafi & Van Gucht, PODS 2005).  It provides:
//!
//! * [`AttrSet`] — compact bitset representation of subsets of a finite universe `S`;
//! * [`Universe`] — a named attribute universe with parsing/formatting helpers;
//! * [`Family`] — a set `𝒴` of subsets of `S` (the right-hand side of a
//!   differential constraint);
//! * [`SetFunction`] — a dense real-valued function `f : 2^S → ℝ`;
//! * Möbius/zeta transforms ([`mobius`]) relating a function to its *density
//!   function* (Remark 2.3 of the paper);
//! * `𝒴`-differentials ([`differential`], Definition 2.1);
//! * witness sets ([`witness`], Definition 2.5);
//! * lattice decompositions `L(X, 𝒴)` ([`lattice`], Definition 2.6) and the
//!   structural identities of Propositions 2.8 and 2.9.
//!
//! The crate is deliberately free of any notion of "constraint": it only knows
//! about sets, families, functions, and lattices.  The `diffcon` crate builds
//! the constraint language and its implication problem on top of this substrate.
//!
//! ## Quick example
//!
//! ```
//! use setlat::{Universe, AttrSet, Family, SetFunction, lattice};
//!
//! // Example 2.7 of the paper: S = {A,B,C,D}, L(A, {B, CD}) = {A, AC, AD}.
//! let u = Universe::from_names(["A", "B", "C", "D"]).unwrap();
//! let x = u.set(["A"]).unwrap();
//! let fam = Family::from_sets([u.set(["B"]).unwrap(), u.set(["C", "D"]).unwrap()]);
//! let l = lattice::lattice_decomposition(&u, x, &fam);
//! let expected: Vec<AttrSet> = vec![
//!     u.set(["A"]).unwrap(),
//!     u.set(["A", "C"]).unwrap(),
//!     u.set(["A", "D"]).unwrap(),
//! ];
//! assert_eq!(l.as_slice(), expected.as_slice());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrset;
pub mod differential;
pub mod family;
pub mod lattice;
pub mod mobius;
pub mod powerset;
pub mod setfn;
pub mod universe;
pub mod witness;

pub use attrset::AttrSet;
pub use family::Family;
pub use setfn::SetFunction;
pub use universe::Universe;

/// The maximum number of attributes supported by the bitset representation.
///
/// [`AttrSet`] stores a subset of the universe as a `u64` mask, so universes may
/// hold at most 64 attributes.  Dense [`SetFunction`]s additionally require the
/// universe to be small enough that `2^|S|` values fit comfortably in memory; see
/// [`setfn::MAX_DENSE_UNIVERSE`].
pub const MAX_UNIVERSE: usize = 64;
