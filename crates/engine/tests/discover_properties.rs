//! End-to-end properties of the discovery subsystem wired through the
//! engine: adopting discovered constraints must only ever *help*.
//!
//! Over 1000 random instances (universe sizes 3–4, random datasets and
//! knowns) the suite checks that
//!
//! * after `adopt`, every `bound` interval is contained in the
//!   pre-adoption interval (never wider), still contains the true support,
//!   and the session never reports the (true) state infeasible;
//! * constraint-pruned NDI mining
//!   ([`diffcon_bounds::mining::ndi_under_constraints`]) under the adopted
//!   cover scans no more candidates than without it, while storing a subset
//!   of the unconstrained representation with true supports.

use diffcon_bounds::mining::ndi_under_constraints;
use diffcon_bounds::problem::BoundsConfig;
use diffcon_discover::MinerConfig;
use diffcon_engine::Session;
use fis::basket::BasketDb;
use proptest::prelude::*;
use setlat::{AttrSet, Universe};

fn arb_db(n: usize, max_baskets: usize) -> impl Strategy<Value = BasketDb> {
    proptest::collection::vec(0u64..(1u64 << n), 1..max_baskets)
        .prop_map(move |masks| BasketDb::from_baskets(n, masks.into_iter().map(AttrSet::from_bits)))
}

/// Loads `db` into a fresh session, records the true supports of the chosen
/// known sets, and compares every subset's bound interval before and after
/// adoption.
fn check_bounds_tighten(n: usize, db: &BasketDb, known_masks: &[u64], config: &MinerConfig) {
    let universe = Universe::of_size(n);
    let mut session = Session::new(universe.clone());
    let records: Vec<String> = db
        .baskets()
        .iter()
        .map(|&b| fis::basket::format_record(&universe, b))
        .collect();
    session
        .load_records(records.iter().map(String::as_str))
        .expect("formatted baskets re-parse");
    for &mask in known_masks {
        let set = AttrSet::from_bits(mask & universe.full_set().bits());
        session.set_known(set, db.support(set) as f64);
    }
    let before: Vec<(AttrSet, f64, f64)> = universe
        .all_subsets()
        .map(|x| {
            let b = session
                .bound(x)
                .expect("true supports are never infeasible");
            (x, b.interval.lo, b.interval.hi)
        })
        .collect();
    let outcome = session
        .adopt_discovered(config)
        .expect("dataset was loaded");
    // Adopted premises are exactly the cover, all newly asserted into the
    // fresh session.
    assert_eq!(session.premises().len(), outcome.discovery.cover.len());
    for (x, lo, hi) in before {
        let after = session
            .bound(x)
            .expect("adopting true constraints keeps the state feasible");
        let truth = db.support(x) as f64;
        assert!(
            after.interval.lo >= lo && after.interval.hi <= hi,
            "bound widened at {x:?}: [{lo}, {hi}] -> {:?} on {db:?}",
            after.interval
        );
        assert!(
            after.interval.lo <= truth && truth <= after.interval.hi,
            "bound excludes the true support {truth} at {x:?} on {db:?}"
        );
    }
}

/// NDI mining under the adopted cover scans no more candidates and stores a
/// subset of the unconstrained representation.
fn check_ndi_prunes(n: usize, db: &BasketDb, kappa: usize, config: &MinerConfig) {
    let universe = Universe::of_size(n);
    let dataset = diffcon_discover::Dataset::from_db(universe.clone(), db.clone());
    let discovery = diffcon_discover::miner::mine(&dataset, config);
    let bounds_config = BoundsConfig::mining();
    let (constrained, with_stats) =
        ndi_under_constraints(db, &discovery.cover, kappa, &bounds_config)
            .expect("mined constraints hold on the data");
    let (unconstrained, without_stats) = ndi_under_constraints(db, &[], kappa, &bounds_config)
        .expect("no constraints, nothing to violate");
    assert!(
        with_stats.support_scans <= without_stats.support_scans,
        "constraint awareness increased scans: {with_stats:?} vs {without_stats:?} on {db:?}"
    );
    for (itemset, support) in &constrained.itemsets {
        assert_eq!(*support, db.support(*itemset));
        assert!(
            unconstrained.itemsets.contains_key(itemset),
            "constrained representation grew at {itemset:?} on {db:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Universe of 3: bounds only tighten under adoption.
    #[test]
    fn adopt_never_widens_bounds_n3(
        db in arb_db(3, 10),
        known_masks in proptest::collection::vec(0u64..8, 0..4),
    ) {
        check_bounds_tighten(3, &db, &known_masks, &MinerConfig::default());
    }

    /// Universe of 4, wider knowns.
    #[test]
    fn adopt_never_widens_bounds_n4(
        db in arb_db(4, 8),
        known_masks in proptest::collection::vec(0u64..16, 0..5),
    ) {
        check_bounds_tighten(4, &db, &known_masks, &MinerConfig::default());
    }

    /// NDI mining under the adopted cover scans no more candidates.
    #[test]
    fn adopt_never_adds_ndi_scans(
        db in arb_db(4, 10),
        kappa in 1usize..4,
    ) {
        check_ndi_prunes(4, &db, kappa, &MinerConfig::default());
    }

    /// The same holds at tighter miner budgets.
    #[test]
    fn adopt_never_adds_ndi_scans_narrow_budgets(
        db in arb_db(3, 10),
        kappa in 1usize..4,
        max_lhs in 0usize..=2,
        max_rhs in 0usize..=2,
    ) {
        let config = MinerConfig { max_lhs, max_rhs };
        check_ndi_prunes(3, &db, kappa, &config);
    }
}

#[test]
fn acceptance_scenario_end_to_end() {
    // The ISSUE's headline flow: ingest, discover, adopt, and observe a
    // strictly tighter bound and strictly fewer NDI scans.
    let universe = Universe::of_size(4);
    let mut session = Session::new(universe.clone());
    session
        .load_records("AB;ABC;ABD;B;C;CD;ABCD".split(';'))
        .unwrap();
    let a = universe.parse_set("A").unwrap();
    let ab = universe.parse_set("AB").unwrap();
    session.set_known(a, 4.0);
    let before = session.bound(ab).unwrap().interval;
    assert!(!before.is_exact(), "without constraints AB is not pinned");
    let outcome = session.adopt_discovered(&MinerConfig::default()).unwrap();
    assert!(outcome.newly_asserted > 0);
    let after = session.bound(ab).unwrap().interval;
    assert!(
        after.is_exact() && after.lo == 4.0,
        "A -> {{B}} pins σ(AB) = σ(A)"
    );

    let db = session.dataset().unwrap().db().clone();
    let cover = outcome.discovery.cover.clone();
    let (_, with_stats) = ndi_under_constraints(&db, &cover, 1, &BoundsConfig::mining()).unwrap();
    let (_, without_stats) = ndi_under_constraints(&db, &[], 1, &BoundsConfig::mining()).unwrap();
    assert!(
        with_stats.support_scans < without_stats.support_scans,
        "expected a strict scan reduction: {with_stats:?} vs {without_stats:?}"
    );
}
