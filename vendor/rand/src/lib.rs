//! Hermetic stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the workspace vendors the *subset* of the rand 0.8 API its
//! crates actually use:
//!
//! * [`rngs::StdRng`] — a seedable deterministic generator (xoshiro256++
//!   seeded through SplitMix64);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer and `f64` ranges;
//! * [`Rng::gen_bool`].
//!
//! Determinism is the only contract the workspace relies on: the same seed
//! always yields the same stream (tests assert reproducibility), and distinct
//! seeds yield distinct streams.  The streams produced here are **not**
//! identical to upstream rand's, which is fine — nothing in the repository
//! depends on upstream's exact values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // 53 bits of precision, same as a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample a uniform value from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++ with
    /// SplitMix64 seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<usize> = (0..32).map(|_| a.gen_range(0usize..1_000_000)).collect();
        let vb: Vec<usize> = (0..32).map(|_| b.gen_range(0usize..1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1u64..=5);
            assert!((1..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_and_bias() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&heads), "heads = {heads}");
    }
}
