//! Repository-level integration test: the `diffcon-engine` serving layer is
//! answer-equivalent to the `diffcon` decision procedures when driven through
//! the public umbrella crate, including through the `diffcond` wire protocol.

use diffcon::random::{self, ConstraintShape};
use diffcon::{implication, DiffConstraint};
use diffcon_engine::{Server, Session, SessionConfig};
use setlat::Universe;

#[test]
fn engine_and_reference_agree_across_the_workspace_api() {
    let universe = Universe::of_size(5);
    let shape = ConstraintShape::default();
    let mut session = Session::new(universe.clone());
    let mut current: Vec<DiffConstraint> = Vec::new();
    for seed in 0..50u64 {
        let (premises, goal) = random::random_instance(seed, &universe, 3, &shape, 0.5);
        for p in current.drain(..) {
            assert!(session.retract_constraint(&p));
        }
        for p in &premises {
            let (_, added) = session.assert_constraint(p);
            if added {
                current.push(p.clone());
            }
        }
        assert_eq!(
            session.implies(&goal).implied,
            implication::implies(&universe, &premises, &goal),
            "seed {seed}"
        );
    }
}

#[test]
fn wire_protocol_answers_match_the_library() {
    let universe = Universe::of_size(4);
    let mut server = Server::new(SessionConfig::default());
    assert!(server
        .handle_line("universe 4")
        .text
        .starts_with("ok universe"));
    let premises = ["A -> {B}", "B -> {C, D}"];
    for p in premises {
        assert!(server
            .handle_line(&format!("assert {p}"))
            .text
            .starts_with("ok assert"));
    }
    let parsed: Vec<DiffConstraint> = premises
        .iter()
        .map(|t| DiffConstraint::parse(t, &universe).unwrap())
        .collect();
    for goal_text in [
        "A -> {C, D}",
        "A -> {C}",
        "C -> {A}",
        "AB -> {B}",
        "A -> {B, CD}",
    ] {
        let goal = DiffConstraint::parse(goal_text, &universe).unwrap();
        let expected = implication::implies(&universe, &parsed, &goal);
        let reply = server.handle_line(&format!("implies {goal_text}")).text;
        let got = reply.starts_with("yes");
        assert!(
            got == expected && (reply.starts_with("yes") || reply.starts_with("no")),
            "protocol disagrees on {goal_text}: {reply}"
        );
    }
}
