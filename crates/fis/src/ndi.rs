//! Non-derivable itemsets (Calders & Goethals), the deduction-rule companion to
//! the disjunction-free representation of Section 6.1.1.
//!
//! For an itemset `I` and any subset `X ⊆ I`, inclusion–exclusion over the
//! supports of the sets between `X` and `I` yields a *deduction rule*
//!
//! ```text
//! σ(I) ≤ Σ_{X ⊆ J ⊂ I} (−1)^{|I∖J|+1} σ(J)     when |I ∖ X| is odd,
//! σ(I) ≥ Σ_{X ⊆ J ⊂ I} (−1)^{|I∖J|+1} σ(J)     when |I ∖ X| is even.
//! ```
//!
//! Taking the tightest bounds over all `X` gives an interval `[lo(I), hi(I)]`
//! guaranteed to contain `σ(I)`.  An itemset whose interval is a single point
//! is *derivable*: its support follows from the supports of its proper subsets
//! without counting — the same spirit as the disjunctive rules of the paper
//! (indeed a satisfied disjunctive rule forces one of these bounds to be
//! tight).  The *non-derivable itemsets* (NDI) therefore form yet another
//! concise representation; this module implements the bounds, the derivability
//! test and the NDI collection so the experiments can compare it with the
//! `FDFree`/`Bd⁻` representation.

use crate::basket::BasketDb;
use setlat::{powerset, AttrSet};
use std::collections::HashMap;

/// The deduction interval `[lower, upper]` for the support of an itemset,
/// computed from the supports of its proper subsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupportBounds {
    /// The greatest lower bound obtained from the even-difference rules.
    pub lower: i64,
    /// The least upper bound obtained from the odd-difference rules.
    pub upper: i64,
}

impl SupportBounds {
    /// Returns `true` iff the interval pins the support to a single value.
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }

    /// Width of the interval (`upper − lower`).
    pub fn width(&self) -> i64 {
        self.upper - self.lower
    }
}

/// Computes the deduction bounds of `itemset` given a support oracle for its
/// proper subsets.
///
/// `support_of` must return the exact support of every proper subset of
/// `itemset`; the empty itemset's support (the database size) is included.
///
/// # Panics
/// Panics if `itemset` is empty (the bounds are defined from proper subsets).
pub fn deduction_bounds_with<F: FnMut(AttrSet) -> usize>(
    itemset: AttrSet,
    mut support_of: F,
) -> SupportBounds {
    assert!(
        !itemset.is_empty(),
        "deduction bounds are defined for nonempty itemsets"
    );
    let mut lower = i64::MIN;
    let mut upper = i64::MAX;
    // One rule per subset X ⊆ I (X ≠ I).
    for x in powerset::proper_subsets(itemset) {
        let missing = itemset.difference(x).len();
        // Σ_{X ⊆ J ⊂ I} (−1)^{|I∖J|+1} σ(J)
        let mut bound: i64 = 0;
        for j in powerset::interval(x, itemset) {
            if j == itemset {
                continue;
            }
            let sign = if (itemset.difference(j).len() + 1).is_multiple_of(2) {
                1i64
            } else {
                -1i64
            };
            bound += sign * support_of(j) as i64;
        }
        if missing % 2 == 1 {
            upper = upper.min(bound);
        } else {
            lower = lower.max(bound);
        }
    }
    // Supports are nonnegative, and every itemset's support is bounded by the
    // support of any of its subsets; the rules above already imply both, but
    // clamp defensively for the degenerate single-rule cases.
    lower = lower.max(0);
    SupportBounds { lower, upper }
}

/// Computes the deduction bounds of `itemset` directly against a database.
pub fn deduction_bounds(db: &BasketDb, itemset: AttrSet) -> SupportBounds {
    deduction_bounds_with(itemset, |j| db.support(j))
}

/// Returns `true` iff the support of `itemset` is derivable from its proper
/// subsets' supports (the deduction interval is a single point).
pub fn is_derivable(db: &BasketDb, itemset: AttrSet) -> bool {
    deduction_bounds(db, itemset).is_exact()
}

/// The non-derivable-itemset representation at threshold `kappa`: every
/// frequent itemset that is *not* derivable, stored with its support.  The
/// empty itemset is always included (its support, `|B|`, cannot be deduced from
/// anything).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NdiRepresentation {
    /// The support threshold.
    pub kappa: usize,
    /// Frequent non-derivable itemsets with their supports.
    pub itemsets: HashMap<AttrSet, usize>,
}

impl NdiRepresentation {
    /// Builds the representation by exhaustive enumeration over the universe
    /// (intended for the ≤ 16-item universes used in the experiments).
    pub fn build(db: &BasketDb, kappa: usize) -> Self {
        let n = db.universe_size();
        assert!(
            n <= 20,
            "NDI enumeration over more than 20 items is infeasible"
        );
        let mut itemsets = HashMap::new();
        if db.len() >= kappa {
            itemsets.insert(AttrSet::EMPTY, db.len());
        }
        for mask in 1u64..(1u64 << n) {
            let itemset = AttrSet::from_bits(mask);
            let support = db.support(itemset);
            if support >= kappa && !is_derivable(db, itemset) {
                itemsets.insert(itemset, support);
            }
        }
        NdiRepresentation { kappa, itemsets }
    }

    /// Number of stored itemsets.
    pub fn size(&self) -> usize {
        self.itemsets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::border;
    use crate::generator;
    use setlat::Universe;

    fn sample() -> (Universe, BasketDb) {
        let u = Universe::of_size(5);
        let db = BasketDb::parse(&u, "ABC\nABD\nAB\nACD\nBCD\nABCD\nAE\nBE\nABE\nC\nAB").unwrap();
        (u, db)
    }

    #[test]
    fn bounds_contain_true_support() {
        let (u, db) = sample();
        for mask in 1u64..(1u64 << u.len()) {
            let itemset = AttrSet::from_bits(mask);
            let bounds = deduction_bounds(&db, itemset);
            let truth = db.support(itemset) as i64;
            assert!(
                bounds.lower <= truth && truth <= bounds.upper,
                "bounds {bounds:?} miss true support {truth} for {itemset:?}"
            );
        }
    }

    #[test]
    fn singleton_bounds_are_trivial() {
        // For a single item the only rule is X = ∅ (even difference? |I∖∅| = 1 odd):
        // σ(I) ≤ σ(∅); the lower bound degenerates to 0.
        let (_u, db) = sample();
        let bounds = deduction_bounds(&db, AttrSet::singleton(0));
        assert_eq!(bounds.upper, db.len() as i64);
        assert_eq!(bounds.lower, 0);
    }

    #[test]
    fn derivable_itemsets_have_exact_bounds() {
        let (u, db) = sample();
        for mask in 1u64..(1u64 << u.len()) {
            let itemset = AttrSet::from_bits(mask);
            let bounds = deduction_bounds(&db, itemset);
            if bounds.is_exact() {
                assert_eq!(bounds.lower, db.support(itemset) as i64);
                assert!(is_derivable(&db, itemset));
            } else {
                assert!(!is_derivable(&db, itemset));
                assert!(bounds.width() > 0);
            }
        }
    }

    #[test]
    fn functional_style_rule_makes_strict_supersets_derivable() {
        // If every basket containing A contains B (A ⇒ B), then for any I ⊋ {A,B}
        // the upper bound from X = I − {B} (σ(I) ≤ σ(I−{B})) meets the lower bound
        // from X = I − {B, c} for any third item c, pinning σ(I) exactly.  The
        // two-element set {A,B} itself is *not* derivable — deduction at level 2
        // only yields the interval [σ(A)+σ(B)−σ(∅), min(σ(A), σ(B))].
        let u = Universe::of_size(4);
        let db = BasketDb::parse(&u, "AB\nABC\nABD\nB\nC\nCD\nABCD").unwrap();
        assert_eq!(
            db.support(u.parse_set("A").unwrap()),
            db.support(u.parse_set("AB").unwrap())
        );
        for extra in ["C", "D", "CD"] {
            let itemset = u.parse_set(&format!("AB{extra}")).unwrap();
            assert!(
                is_derivable(&db, itemset),
                "itemset AB∪{extra:?} should be derivable from A ⇒ B"
            );
        }
        // Level-2 interval is the classical inclusion–exclusion sandwich.
        let bounds = deduction_bounds(&db, u.parse_set("AB").unwrap());
        assert_eq!(bounds.lower, 4 + 5 - 7);
        assert_eq!(bounds.upper, 4);
        assert!(!is_derivable(&db, u.parse_set("AB").unwrap()));
    }

    #[test]
    fn ndi_representation_is_a_subset_of_the_frequent_collection() {
        let (_u, db) = sample();
        for kappa in [1usize, 2, 3, 5] {
            let ndi = NdiRepresentation::build(&db, kappa);
            let frequent = border::count_frequent(&db, kappa);
            assert!(ndi.size() <= frequent);
            for (&itemset, &support) in &ndi.itemsets {
                assert_eq!(support, db.support(itemset));
                assert!(support >= kappa);
            }
        }
    }

    #[test]
    fn ndi_is_small_on_correlated_data() {
        // Quest-style data has heavy structure, so most frequent itemsets are
        // derivable and the NDI collection is much smaller.
        let db = generator::quest_like(
            3,
            &generator::QuestConfig {
                num_items: 8,
                num_baskets: 120,
                ..generator::QuestConfig::default()
            },
        );
        let kappa = 12;
        let ndi = NdiRepresentation::build(&db, kappa);
        let frequent = border::count_frequent(&db, kappa);
        assert!(
            ndi.size() * 2 < frequent.max(1),
            "expected NDI ({}) to be well under half of the frequent collection ({frequent})",
            ndi.size()
        );
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_itemset_rejected() {
        let (_u, db) = sample();
        let _ = deduction_bounds(&db, AttrSet::EMPTY);
    }
}
