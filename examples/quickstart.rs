//! Quickstart: differential constraints, implication, proofs and counterexamples.
//!
//! Run with `cargo run --example quickstart`.
//!
//! This walks through the objects of the paper on the paper's own examples:
//! the universe S = {A, B, C, D}, the constraint A → {B, CD} from the
//! introduction, the lattice decomposition of Example 2.7, the implication of
//! Example 3.4, a machine-checked derivation in the style of Example 4.3, and
//! an explicit counterexample for a non-implication.

use diffcon::prelude::*;
use diffcon::{counterexample, DiffConstraint};

fn main() {
    // ── The universe and a constraint ────────────────────────────────────────
    let u = Universe::of_size(4); // S = {A, B, C, D}
    let c = DiffConstraint::parse("A -> {B, CD}", &u).expect("valid syntax");
    println!("Constraint: {}", c.format(&u));
    println!(
        "  meaning: every basket/tuple group containing A also involves B, or C and D together"
    );

    // ── Lattice decomposition (Example 2.7) ──────────────────────────────────
    let lattice = c.lattice(&u);
    let rendered: Vec<String> = lattice.iter().map(|&s| u.format_set(s)).collect();
    println!("  L(A, {{B, CD}}) = {{{}}}", rendered.join(", "));

    // ── Satisfaction (Example 3.2, density semantics) ────────────────────────
    let f = SetFunction::from_fn(4, |x| if x.len() <= 1 { 2.0 } else { 1.0 });
    println!(
        "  a sample set function satisfies it: {}",
        semantics::satisfies(&f, &c)
    );

    // ── Implication (Example 3.4) ────────────────────────────────────────────
    let premises = vec![
        DiffConstraint::parse("A -> {B}", &u).unwrap(),
        DiffConstraint::parse("B -> {C}", &u).unwrap(),
    ];
    let goal = DiffConstraint::parse("A -> {C}", &u).unwrap();
    println!(
        "\n{{A → {{B}}, B → {{C}}}} ⊨ A → {{C}} ?  {}",
        implication::implies(&u, &premises, &goal)
    );

    // ── A machine-checked derivation (Figure 1 rules only) ──────────────────
    let proof = inference::derive(&u, &premises, &goal).expect("implied, hence derivable");
    proof.verify(&u, &premises).expect("the proof re-checks");
    println!("Derivation ({} steps):\n{}", proof.size(), proof.format(&u));

    // ── A counterexample for a non-implication ───────────────────────────────
    let bad = DiffConstraint::parse("C -> {A}", &u).unwrap();
    println!(
        "\n{{A → {{B}}, B → {{C}}}} ⊨ C → {{A}} ?  {}",
        implication::implies(&u, &premises, &bad)
    );
    let ce = counterexample::find(&u, &premises, &bad).expect("not implied");
    println!(
        "Counterexample witness set U = {} — the point-mass function f^U, the single\n\
         basket ({}) and a two-tuple relation agreeing exactly on {} all satisfy the\n\
         premises and violate the goal.",
        u.format_set(ce.witness_set),
        u.format_set(ce.witness_set),
        u.format_set(ce.witness_set),
    );
}
