//! Satisfaction semantics for differential constraints.
//!
//! The paper defines satisfaction through the *density* function (Definition
//! 3.1): `f ⊨ X → 𝒴` iff `d_f(U) = 0` for every `U ∈ L(X, 𝒴)`.  An earlier
//! line of work by the same authors used the *differential-based* semantics
//! `D^𝒴_f(X) = 0`; Remark 3.6 shows density-based satisfaction implies
//! differential-based satisfaction but not conversely, and that the two
//! coincide on functions with sign-definite densities (in particular on all
//! frequency functions, hence on support and Simpson functions).

use crate::constraint::DiffConstraint;
use setlat::{differential, mobius, powerset, AttrSet, SetFunction, Universe};

/// Numerical tolerance used when comparing real-valued densities to zero.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Density-based satisfaction (Definition 3.1): `d_f(U) = 0` for every
/// `U ∈ L(X, 𝒴)`.
pub fn satisfies(f: &SetFunction, constraint: &DiffConstraint) -> bool {
    satisfies_with_density(&mobius::density_function(f), constraint)
}

/// Density-based satisfaction given a precomputed density function of `f`.
///
/// Useful when checking many constraints against the same function: the Möbius
/// transform is done once.
pub fn satisfies_with_density(density: &SetFunction, constraint: &DiffConstraint) -> bool {
    let n = density.universe_size();
    powerset::supersets_within(constraint.lhs, n)
        .filter(|&u| constraint.lattice_contains(u))
        .all(|u| density.get(u).abs() <= DEFAULT_TOL)
}

/// Differential-based satisfaction (Remark 3.6): `D^𝒴_f(X) = 0`.
pub fn satisfies_differential(f: &SetFunction, constraint: &DiffConstraint) -> bool {
    differential::differential_at(f, constraint.lhs, &constraint.rhs).abs() <= DEFAULT_TOL
}

/// Returns `true` iff `f` satisfies every constraint in the set.
pub fn satisfies_all(f: &SetFunction, constraints: &[DiffConstraint]) -> bool {
    let density = mobius::density_function(f);
    constraints
        .iter()
        .all(|c| satisfies_with_density(&density, c))
}

/// The set of constraints from `candidates` satisfied by `f`.
pub fn satisfied_subset<'a>(
    f: &SetFunction,
    candidates: &'a [DiffConstraint],
) -> Vec<&'a DiffConstraint> {
    let density = mobius::density_function(f);
    candidates
        .iter()
        .filter(|c| satisfies_with_density(&density, c))
        .collect()
}

/// Enumerates every constraint over the universe that `f` satisfies, restricted
/// to right-hand sides whose members are singletons and at most `max_members`
/// of them.  (The unrestricted set of satisfied constraints is doubly
/// exponential; this restriction is what the mining-flavoured experiments use.)
pub fn mine_singleton_constraints(
    f: &SetFunction,
    universe: &Universe,
    max_members: usize,
) -> Vec<DiffConstraint> {
    let n = universe.len();
    let density = mobius::density_function(f);
    let mut out = Vec::new();
    for lhs in universe.all_subsets() {
        let outside: Vec<usize> = lhs.complement_in(n).iter().collect();
        // Enumerate nonempty subsets of `outside` of size ≤ max_members as the
        // singleton family.
        let k = outside.len();
        for chooser in 1u64..(1u64 << k) {
            if (chooser.count_ones() as usize) > max_members {
                continue;
            }
            let members: Vec<AttrSet> = (0..k)
                .filter(|i| (chooser >> i) & 1 == 1)
                .map(|i| AttrSet::singleton(outside[i]))
                .collect();
            let constraint = DiffConstraint::new(lhs, setlat::Family::from_sets(members));
            if satisfies_with_density(&density, &constraint) {
                out.push(constraint);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn example_3_2() {
        // S = {A,B,C}; f(∅) = f(C) = 2, f = 1 elsewhere.
        // d_f(C) = d_f(ABC) = 1, d_f = 0 elsewhere.
        // f ⊨ A → {B}, f ⊨ B → {C}, f ⊭ C → {A}.
        let u = Universe::of_size(3);
        let f = SetFunction::from_fn(3, |x| {
            if x == AttrSet::EMPTY || x == u.parse_set("C").unwrap() {
                2.0
            } else {
                1.0
            }
        });
        let d = mobius::density_function(&f);
        assert!((d.get(u.parse_set("C").unwrap()) - 1.0).abs() < 1e-12);
        assert!((d.get(u.parse_set("ABC").unwrap()) - 1.0).abs() < 1e-12);

        let a_b = DiffConstraint::parse("A -> {B}", &u).unwrap();
        let b_c = DiffConstraint::parse("B -> {C}", &u).unwrap();
        let c_a = DiffConstraint::parse("C -> {A}", &u).unwrap();
        assert!(satisfies(&f, &a_b));
        assert!(satisfies(&f, &b_c));
        assert!(!satisfies(&f, &c_a));
        assert!(satisfies_all(&f, &[a_b.clone(), b_c.clone()]));
        assert!(!satisfies_all(&f, &[a_b, b_c, c_a]));
    }

    #[test]
    fn remark_3_6_density_vs_differential() {
        // S = {A}; f(∅) = 0, f(A) = 1.  D^∅_f(∅) = 0 yet f ⊭ ∅ → ∅.
        let u = Universe::of_size(1);
        let mut f = SetFunction::zeros(1);
        f.set(AttrSet::singleton(0), 1.0);
        let c = DiffConstraint::parse(" -> {}", &u).unwrap();
        assert!(satisfies_differential(&f, &c));
        assert!(!satisfies(&f, &c));
    }

    #[test]
    fn density_satisfaction_implies_differential_satisfaction() {
        // One direction of Remark 3.6, checked on a grid of functions/constraints.
        let u = Universe::of_size(3);
        let constraints = [
            DiffConstraint::parse("A -> {B}", &u).unwrap(),
            DiffConstraint::parse("A -> {B, C}", &u).unwrap(),
            DiffConstraint::parse(" -> {A}", &u).unwrap(),
            DiffConstraint::parse("AB -> {C}", &u).unwrap(),
        ];
        for seed in 0u64..30 {
            let f =
                SetFunction::from_fn(3, |x| (((x.bits() + seed) * 2654435761) % 5) as f64 - 2.0);
            for c in &constraints {
                if satisfies(&f, c) {
                    assert!(satisfies_differential(&f, c));
                }
            }
        }
    }

    #[test]
    fn semantics_agree_on_frequency_functions() {
        // Remark 3.6 / Section 6: on nonnegative densities the two semantics coincide.
        let u = Universe::of_size(4);
        let constraints = [
            DiffConstraint::parse("A -> {B, CD}", &u).unwrap(),
            DiffConstraint::parse("B -> {C}", &u).unwrap(),
            DiffConstraint::parse(" -> {A, B}", &u).unwrap(),
        ];
        for seed in 0u64..20 {
            let density = SetFunction::from_fn(4, |x| ((x.bits() * 7 + seed) % 3) as f64);
            let f = mobius::from_density(&density);
            for c in &constraints {
                assert_eq!(
                    satisfies(&f, c),
                    satisfies_differential(&f, c),
                    "semantics disagree on a frequency function (seed {seed}, {:?})",
                    c
                );
            }
        }
    }

    #[test]
    fn trivial_constraints_always_satisfied() {
        let u = Universe::of_size(3);
        let trivial = DiffConstraint::parse("AB -> {B}", &u).unwrap();
        for seed in 0u64..10 {
            let f = SetFunction::from_fn(3, |x| (x.bits() as f64) * (seed as f64 + 1.0));
            assert!(satisfies(&f, &trivial));
            assert!(satisfies_differential(&f, &trivial));
        }
    }

    #[test]
    fn satisfied_subset_filters() {
        let u = Universe::of_size(3);
        let f = SetFunction::from_fn(3, |x| {
            if x == AttrSet::EMPTY || x == u.parse_set("C").unwrap() {
                2.0
            } else {
                1.0
            }
        });
        let candidates = vec![
            DiffConstraint::parse("A -> {B}", &u).unwrap(),
            DiffConstraint::parse("C -> {A}", &u).unwrap(),
        ];
        let sat = satisfied_subset(&f, &candidates);
        assert_eq!(sat.len(), 1);
        assert_eq!(sat[0], &candidates[0]);
    }

    #[test]
    fn mine_singleton_constraints_finds_known_ones() {
        let u = Universe::of_size(3);
        let f = SetFunction::from_fn(3, |x| {
            if x == AttrSet::EMPTY || x == u.parse_set("C").unwrap() {
                2.0
            } else {
                1.0
            }
        });
        let mined = mine_singleton_constraints(&f, &u, 2);
        let a_b = DiffConstraint::parse("A -> {B}", &u).unwrap();
        let b_c = DiffConstraint::parse("B -> {C}", &u).unwrap();
        assert!(mined.contains(&a_b));
        assert!(mined.contains(&b_c));
        // Every mined constraint is indeed satisfied.
        for c in &mined {
            assert!(satisfies(&f, c));
        }
        // And the non-satisfied C → {A} is absent.
        assert!(!mined.contains(&DiffConstraint::parse("C -> {A}", &u).unwrap()));
    }

    #[test]
    fn point_mass_counterexample_behaviour() {
        // The counterexample function of Theorem 3.5: f^U violates exactly the
        // constraints whose lattice contains U.
        let u = Universe::of_size(4);
        let target = u.parse_set("AC").unwrap();
        let f = SetFunction::point_mass(4, target, 1.0);
        let violated = DiffConstraint::parse("A -> {B, D}", &u).unwrap();
        assert!(violated.lattice_contains(target));
        assert!(!satisfies(&f, &violated));
        let satisfied = DiffConstraint::parse("A -> {C}", &u).unwrap();
        assert!(!satisfied.lattice_contains(target));
        assert!(satisfies(&f, &satisfied));
    }
}
