//! Uniform entry points over the implication decision procedures.
//!
//! The crate ships four interchangeable sound-and-complete deciders for
//! `C ⊨ X → 𝒴` — the polynomial FD-fragment closure check, the Theorem 3.5
//! lattice containment, the semantic counterexample search, and the SAT-backed
//! propositional translation.  Each lives in its own module with its own
//! signature; this module gives them a common, enumerable interface so that a
//! *planner* (such as the one in the `diffcon-engine` crate) can pick a
//! procedure per query, decide through it, and account for it, without
//! special-casing call sites.
//!
//! The FD-fragment procedure is only sound on inputs inside the single-member
//! fragment; [`ProcedureKind::applicable`] encodes each procedure's
//! precondition and [`decide`] panics if it is violated, mirroring
//! [`crate::fd_fragment::implies_polynomial`].

use crate::constraint::DiffConstraint;
use crate::{fd_fragment, implication, prop_bridge};
use setlat::Universe;
use std::fmt;

/// The four decision procedures for the implication problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProcedureKind {
    /// Polynomial attribute-closure check; sound only inside the
    /// single-member (FD) fragment of the paper's conclusion.
    FdFragment,
    /// Direct Theorem 3.5 lattice-containment check
    /// ([`implication::implies_lattice`]).
    Lattice,
    /// Counterexample-function search following the proof of Theorem 3.5
    /// ([`implication::implies_semantic`]).
    Semantic,
    /// DPLL refutation through the Section 5 propositional translation
    /// ([`prop_bridge::implies_sat`]).
    Sat,
}

/// All procedures, in the order a planner should prefer them (cheapest first
/// on their applicable domain).
pub const ALL_PROCEDURES: [ProcedureKind; 4] = [
    ProcedureKind::FdFragment,
    ProcedureKind::Lattice,
    ProcedureKind::Semantic,
    ProcedureKind::Sat,
];

impl ProcedureKind {
    /// Short stable identifier used in reports and the `diffcond` wire
    /// protocol (`fd`, `lattice`, `semantic`, `sat`).
    pub fn name(self) -> &'static str {
        match self {
            ProcedureKind::FdFragment => "fd",
            ProcedureKind::Lattice => "lattice",
            ProcedureKind::Semantic => "semantic",
            ProcedureKind::Sat => "sat",
        }
    }

    /// Returns `true` iff the procedure is sound for this instance.
    ///
    /// The three general procedures are always applicable; the FD-fragment
    /// check requires every premise and the goal to have single-member
    /// right-hand sides.
    pub fn applicable(self, premises: &[DiffConstraint], goal: &DiffConstraint) -> bool {
        match self {
            ProcedureKind::FdFragment => {
                fd_fragment::in_fragment(goal) && fd_fragment::set_in_fragment(premises)
            }
            ProcedureKind::Lattice | ProcedureKind::Semantic | ProcedureKind::Sat => true,
        }
    }
}

impl fmt::Display for ProcedureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Decides `premises ⊨ goal` with the chosen procedure.
///
/// # Panics
/// Panics if `kind` is [`ProcedureKind::FdFragment`] and the instance lies
/// outside the single-member fragment; check with
/// [`ProcedureKind::applicable`] first.
pub fn decide(
    kind: ProcedureKind,
    universe: &Universe,
    premises: &[DiffConstraint],
    goal: &DiffConstraint,
) -> bool {
    match kind {
        ProcedureKind::FdFragment => fd_fragment::implies_polynomial(premises, goal),
        ProcedureKind::Lattice => implication::implies_lattice(universe, premises, goal),
        ProcedureKind::Semantic => implication::implies_semantic(universe, premises, goal),
        ProcedureKind::Sat => prop_bridge::implies_sat(universe, premises, goal),
    }
}

/// An upper bound on the bitset operations the lattice procedure performs on
/// this instance: `2^{|S|−|X|} · (Σ_premise |𝒴'| + |𝒴|)`.
///
/// The bound is exact in structure (the procedure enumerates the supersets of
/// the goal's left-hand side and tests each against every premise family) and
/// pessimistic in constant (early exits prune most instances).  Planners use
/// it to route between the lattice procedure, whose cost is governed by
/// `|S| − |X|`, and the SAT procedure, whose cost is governed by the
/// refutation search instead.
pub fn lattice_cost_bound(
    universe: &Universe,
    premises: &[DiffConstraint],
    goal: &DiffConstraint,
) -> u128 {
    let free = universe.len().saturating_sub(goal.lhs.len()) as u32;
    let member_work: u128 = premises
        .iter()
        .map(|p| p.rhs.len().max(1) as u128)
        .sum::<u128>()
        + goal.rhs.len().max(1) as u128;
    (1u128 << free.min(127)) * member_work
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlat::{AttrSet, Family};

    fn u() -> Universe {
        Universe::of_size(4)
    }

    fn parse(u: &Universe, texts: &[&str]) -> Vec<DiffConstraint> {
        texts
            .iter()
            .map(|t| DiffConstraint::parse(t, u).unwrap())
            .collect()
    }

    #[test]
    fn applicability() {
        let u = u();
        let frag = parse(&u, &["A -> {B}", "B -> {CD}"]);
        let general = parse(&u, &["A -> {B, C}"]);
        let goal = DiffConstraint::parse("A -> {CD}", &u).unwrap();
        for kind in ALL_PROCEDURES {
            assert!(kind.applicable(&frag, &goal) || kind == ProcedureKind::FdFragment);
        }
        assert!(ProcedureKind::FdFragment.applicable(&frag, &goal));
        assert!(!ProcedureKind::FdFragment.applicable(&general, &goal));
        let wide_goal = DiffConstraint::parse("A -> {B, C}", &u).unwrap();
        assert!(!ProcedureKind::FdFragment.applicable(&frag, &wide_goal));
    }

    #[test]
    fn all_procedures_agree_on_their_domains() {
        let u = u();
        let premise_sets = [
            parse(&u, &["A -> {B}", "B -> {C}"]),
            parse(&u, &["A -> {BC, CD}", "C -> {D}"]),
            vec![],
        ];
        let goals = parse(&u, &["A -> {C}", "AB -> {D}", "C -> {A}", "AB -> {B}"]);
        for premises in &premise_sets {
            for goal in &goals {
                let reference = decide(ProcedureKind::Lattice, &u, premises, goal);
                for kind in ALL_PROCEDURES {
                    if kind.applicable(premises, goal) {
                        assert_eq!(
                            decide(kind, &u, premises, goal),
                            reference,
                            "{kind} disagrees on {}",
                            goal.format(&u)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = ALL_PROCEDURES.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["fd", "lattice", "semantic", "sat"]);
        assert_eq!(ProcedureKind::Sat.to_string(), "sat");
    }

    #[test]
    fn cost_bound_tracks_free_attributes() {
        let u = Universe::of_size(10);
        let premises = vec![DiffConstraint::new(
            AttrSet::singleton(0),
            Family::single(AttrSet::singleton(1)),
        )];
        let narrow = DiffConstraint::new(AttrSet::full(8), Family::single(AttrSet::singleton(9)));
        let wide =
            DiffConstraint::new(AttrSet::singleton(0), Family::single(AttrSet::singleton(9)));
        assert!(
            lattice_cost_bound(&u, &premises, &wide) > lattice_cost_bound(&u, &premises, &narrow)
        );
    }

    #[test]
    #[should_panic(expected = "fragment")]
    fn fd_decide_outside_fragment_panics() {
        let u = u();
        let premises = parse(&u, &["A -> {B, C}"]);
        let goal = DiffConstraint::parse("A -> {B}", &u).unwrap();
        let _ = decide(ProcedureKind::FdFragment, &u, &premises, &goal);
    }
}
