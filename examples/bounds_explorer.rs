//! Bound queries end to end: what differential constraints pin about a set
//! function you can only partially observe.
//!
//! ```console
//! $ cargo run --example bounds_explorer
//! ```
//!
//! The tour runs the same scenario at three levels — the raw `diffcon-bounds`
//! solver, the stateful engine session, and the `diffcond` wire protocol —
//! and finishes with constraint-aware NDI mining on a basket database.

use diffcon::DiffConstraint;
use diffcon_bounds::derive::derive;
use diffcon_bounds::{mining, BoundsConfig, BoundsProblem, SideConditions};
use diffcon_engine::{Server, Session, SessionConfig};
use fis::basket::BasketDb;
use setlat::{AttrSet, Universe};

fn main() {
    let u = Universe::of_size(4);

    // ── 1. The solver: one known value, one constraint ───────────────────
    println!("── diffcon-bounds: density-variable elimination ──");
    let constraints = vec![DiffConstraint::parse("A -> {B}", &u).unwrap()];
    let knowns = vec![(u.parse_set("A").unwrap(), 40.0)];
    let config = BoundsConfig::default();
    for (label, cs) in [("without", &Vec::new()), ("with   ", &constraints)] {
        let problem = BoundsProblem {
            universe: &u,
            constraints: cs,
            knowns: &knowns,
            side: SideConditions::support(),
        };
        let bound = derive(&problem, u.parse_set("AB").unwrap(), &config).unwrap();
        println!(
            "  f(AB) {label} A→{{B}}: {}  (route {}, exact: {})",
            bound.interval,
            bound.route.name(),
            bound.interval.is_exact()
        );
    }
    println!("  A → {{B}} zeroes the density on L(A,{{B}}) = {{A, AC, AD, ACD}},");
    println!("  so every surviving term of f(A) also feeds f(AB): σ(AB) = σ(A).\n");

    // ── 2. The session: incremental knowns, digests, the bound cache ─────
    println!("── engine session: known / forget / bound ──");
    let mut session = Session::new(u.clone());
    session.set_known(AttrSet::EMPTY, 100.0);
    session.set_known(u.parse_set("A").unwrap(), 40.0);
    session.set_known(u.parse_set("B").unwrap(), 70.0);
    let ab = u.parse_set("AB").unwrap();
    let sandwich = session.bound(ab).unwrap();
    println!(
        "  knowns σ(∅)=100 σ(A)=40 σ(B)=70 → f(AB) ∈ {}",
        sandwich.interval
    );
    let premise = DiffConstraint::parse("A -> {B}", &u).unwrap();
    session.assert_constraint(&premise);
    let pinned = session.bound(ab).unwrap();
    println!(
        "  assert A → {{B}}              → f(AB) ∈ {}",
        pinned.interval
    );
    let again = session.bound(ab).unwrap();
    println!(
        "  asked again                  → route {} (cached: {})",
        again.route_name(),
        again.cached
    );
    session.retract_constraint(&premise);
    println!(
        "  retract A → {{B}}             → f(AB) ∈ {} (digest-versioned)",
        session.bound(ab).unwrap().interval
    );
    println!();

    // ── 3. The wire protocol ─────────────────────────────────────────────
    println!("── diffcond protocol: the same conversation on the wire ──");
    let mut server = Server::new(SessionConfig::default());
    for line in [
        "universe 4",
        "known A = 40",
        "bound AB",
        "assert A -> {B}",
        "bound AB",
        "knowns",
        "stats",
    ] {
        println!("  > {line}");
        println!("  {}", server.handle_line(line).text);
    }
    println!();

    // ── 4. Constraint-aware NDI mining ───────────────────────────────────
    println!("── mining: fewer support scans under known constraints ──");
    let mu = Universe::of_size(4);
    let db = BasketDb::parse(&mu, "AB\nABC\nABD\nB\nC\nCD\nABCD").unwrap();
    let mined_constraints = vec![DiffConstraint::parse("A -> {B}", &mu).unwrap()];
    let (_, classic) = mining::ndi_under_constraints(&db, &[], 1, &BoundsConfig::mining()).unwrap();
    let (_, aware) =
        mining::ndi_under_constraints(&db, &mined_constraints, 1, &BoundsConfig::mining()).unwrap();
    println!(
        "  classic NDI build:          {} of {} itemsets scanned",
        classic.support_scans, classic.considered
    );
    println!(
        "  asserting A → {{B}}:          {} of {} itemsets scanned ({} pinned)",
        aware.support_scans, aware.considered, aware.derived_exact
    );
}
