//! E7 — Section 7: Simpson-function construction and differential-constraint
//! checking over probabilistic relations, versus relation size and arity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diffcon::rel_bridge;
use diffcon::DiffConstraint;
use diffcon_bench::workloads;
use relational::simpson;
use setlat::Universe;

fn bench_simpson(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_simpson");
    group.sample_size(15);
    for &tuples in &[50usize, 200, 800] {
        let pr = workloads::relational_workload(3, 8, tuples);
        group.bench_with_input(
            BenchmarkId::new("simpson_function", tuples),
            &pr,
            |b, pr| b.iter(|| simpson::simpson_function(pr)),
        );
        group.bench_with_input(BenchmarkId::new("density", tuples), &pr, |b, pr| {
            b.iter(|| simpson::simpson_density(pr))
        });
        let u = Universe::of_size(8);
        let constraints: Vec<DiffConstraint> = vec![
            DiffConstraint::parse("A -> {B}", &u).unwrap(),
            DiffConstraint::parse("B -> {C, D}", &u).unwrap(),
            DiffConstraint::parse("EF -> {G}", &u).unwrap(),
        ];
        group.bench_with_input(BenchmarkId::new("satisfaction", tuples), &pr, |b, pr| {
            b.iter(|| {
                constraints
                    .iter()
                    .filter(|c| rel_bridge::simpson_satisfies(pr, c))
                    .count()
            })
        });
    }
    for &arity in &[6usize, 9, 12] {
        let pr = workloads::relational_workload(5, arity, 200);
        group.bench_with_input(BenchmarkId::new("arity", arity), &pr, |b, pr| {
            b.iter(|| simpson::simpson_density(pr))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simpson);
criterion_main!(benches);
