//! Serving implication queries with `diffcon-engine`: sessions, caching,
//! batching, the planner, and the `diffcond` wire protocol.
//!
//! Run with: `cargo run --example engine_service`

use diffcon::DiffConstraint;
use diffcon_engine::{Server, Session, SessionConfig};
use setlat::Universe;

fn main() {
    // ── A session over the paper's 4-attribute examples ─────────────────────
    let u = Universe::of_size(4);
    let mut session = Session::new(u.clone());
    for text in ["A -> {B}", "B -> {C}", "A -> {BC, CD}"] {
        let c = DiffConstraint::parse(text, &u).unwrap();
        let (id, _) = session.assert_constraint(&c);
        println!("asserted #{:<2} {}", id.index(), c.format(&u));
    }

    // Single queries: the planner routes each to the cheapest procedure and
    // the answer cache serves repeats.
    for text in ["A -> {C}", "C -> {A}", "A -> {C}"] {
        let goal = DiffConstraint::parse(text, &u).unwrap();
        let outcome = session.implies(&goal);
        println!(
            "implies {:<12} -> {:5} via {} (cached: {})",
            text,
            outcome.implied,
            outcome.route_name(),
            outcome.cached
        );
    }

    // Batch evaluation: many goals at once, decided in parallel, answers
    // index-aligned.
    let goals: Vec<DiffConstraint> = ["AB -> {C}", "B -> {CD}", "C -> {B}", "AB -> {B}"]
        .iter()
        .map(|t| DiffConstraint::parse(t, &u).unwrap())
        .collect();
    let outcomes = session.implies_batch(&goals);
    for (goal, outcome) in goals.iter().zip(&outcomes) {
        println!("batch   {:<12} -> {}", goal.format(&u), outcome.implied);
    }

    // Incremental retraction invalidates exactly the affected answers.
    let transitivity_link = DiffConstraint::parse("B -> {C}", &u).unwrap();
    session.retract_constraint(&transitivity_link);
    let goal = DiffConstraint::parse("A -> {C}", &u).unwrap();
    println!(
        "after retracting B -> {{C}}: implies A -> {{C}} = {}",
        session.implies(&goal).implied
    );

    // Engine statistics: planner routing and cache effectiveness.
    let stats = session.stats();
    println!(
        "stats: {} queries ({} trivial), answer-cache hit ratio {:.2}",
        stats.planner.total_queries(),
        stats.planner.trivial,
        stats.answer_cache.hit_ratio()
    );

    // ── The same conversation over the diffcond wire protocol ───────────────
    println!("\n-- diffcond protocol transcript --");
    let mut server = Server::new(SessionConfig::default());
    for line in [
        "universe 4",
        "assert A -> {B}",
        "assert B -> {C}",
        "implies A -> {C}",
        "batch A -> {C}; C -> {A}; AB -> {B}",
        "witness C -> {A}",
        "derive A -> {C}",
        "stats",
        "quit",
    ] {
        let reply = server.handle_line(line);
        println!("> {line}\n< {}", reply.text);
    }
}
