//! Serving-layer property test for bound queries: interval soundness must
//! survive the engine's statefulness — answer caching, premise retraction
//! and re-assertion, value forgetting and replacement — on ≥ 1000 random
//! instances.
//!
//! Every outcome is cross-checked two ways: against the true support of the
//! underlying basket database (soundness) and against a fresh, cache-free
//! session over the same state (cache transparency).

use diffcon::DiffConstraint;
use diffcon_engine::Session;
use fis::basket::BasketDb;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};
use setlat::{AttrSet, Universe};

/// Thin deterministic stream over the vendored [`StdRng`], one per seed.
struct Rng(StdRng);

impl Rng {
    fn seeded(seed: u64) -> Rng {
        Rng(StdRng::seed_from_u64(seed))
    }

    fn next(&mut self) -> u64 {
        self.0.gen_range(0..u64::MAX)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.0.gen_range(0..n.max(1))
    }
}

/// A session holding exactly the given premises and knowns, with no cache
/// history.
fn fresh_session(
    universe: &Universe,
    premises: &[DiffConstraint],
    knowns: &[(AttrSet, f64)],
) -> Session {
    let mut s = Session::new(universe.clone());
    for p in premises {
        s.assert_constraint(p);
    }
    for &(x, v) in knowns {
        s.set_known(x, v);
    }
    s
}

#[test]
fn bound_soundness_survives_caching_and_retraction() {
    let mut instances = 0u32;
    for seed in 0..160u64 {
        let mut rng = Rng::seeded(seed.wrapping_mul(0x5851_F42D_4C95_7F2D) ^ 0xB0C);
        let n = 2 + (rng.below(4) as usize); // 2..=5 attributes
        let universe = Universe::of_size(n);
        let baskets = rng.below(14);
        let db = BasketDb::from_baskets(
            n,
            (0..baskets).map(|_| AttrSet::from_bits(rng.below(1 << n))),
        );
        // Constraints satisfied by the database (no basket in L(c)).
        let mut gen = diffcon::random::ConstraintGenerator::new(rng.next(), &universe);
        let shape = diffcon::random::ConstraintShape::default();
        let satisfied: Vec<DiffConstraint> = (0..30)
            .map(|_| gen.constraint(&shape))
            .filter(|c| !db.baskets().iter().any(|&b| c.lattice_contains(b)))
            .take(3)
            .collect();

        let mut session = Session::new(universe.clone());
        for c in &satisfied {
            session.assert_constraint(c);
        }

        // Interleave mutations and queries; after every step the session
        // must agree with a cache-free replica and contain the truth.
        for _ in 0..8 {
            match rng.below(5) {
                // Record a true value.
                0 => {
                    let x = AttrSet::from_bits(rng.below(1 << n));
                    session.set_known(x, db.support(x) as f64);
                }
                // Forget one.
                1 => {
                    if !session.knowns().is_empty() {
                        let i = rng.below(session.knowns().len() as u64) as usize;
                        let (x, _) = session.knowns()[i];
                        assert!(session.forget_known(x));
                    }
                }
                // Retract a premise.
                2 => {
                    if !session.premises().is_empty() {
                        let i = rng.below(session.premises().len() as u64) as usize;
                        let c = session.premises()[i].clone();
                        assert!(session.retract_constraint(&c));
                    }
                }
                // Re-assert a satisfied premise (a no-op when still held).
                _ => {
                    if !satisfied.is_empty() {
                        let i = rng.below(satisfied.len() as u64) as usize;
                        session.assert_constraint(&satisfied[i].clone());
                    }
                }
            }
            // Ask twice (the repeat exercises the bound cache) and replay
            // against a fresh session.
            let query = AttrSet::from_bits(rng.below(1 << n));
            let truth = db.support(query) as f64;
            let first = session
                .bound(query)
                .expect("true knowns + satisfied premises stay feasible");
            let second = session.bound(query).expect("cached answers stay feasible");
            assert!(second.cached, "repeat bound query must hit the cache");
            assert_eq!(first.interval, second.interval);
            assert!(
                first.interval.contains(truth, 1e-9),
                "seed {seed}: truth {truth} outside {} for {query:?}",
                first.interval
            );
            let premises = session.premises().to_vec();
            let knowns = session.knowns().to_vec();
            let replica = fresh_session(&universe, &premises, &knowns);
            let clean = replica.bound(query).expect("replica is feasible");
            assert_eq!(
                first.interval, clean.interval,
                "seed {seed}: cached session diverged from cache-free replica on {query:?}"
            );
            instances += 1;
        }
    }
    assert!(
        instances >= 1000,
        "property must cover ≥ 1000 instances, covered {instances}"
    );
}
