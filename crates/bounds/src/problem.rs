//! Problem statement, side conditions, budget configuration, and the cost
//! model the planner uses to route between the full propagation path and the
//! sound relaxation.

use crate::interval::Interval;
use diffcon::DiffConstraint;
use setlat::{AttrSet, Universe};
use std::fmt;

/// Largest universe the enumeration-based propagation path will touch: the
/// dense tables it allocates are `O(2^{|S|})`, so past this cap every query is
/// answered by the relaxation regardless of the ops budget.
pub const PROPAGATION_UNIVERSE_CAP: usize = 20;

/// Optional semantic side conditions on the unknown set function, enabling
/// the support-function interpretation of Section 6.
///
/// For the support function `σ_B` of a basket database, the density function
/// is the multiset count `m(U)` of baskets exactly equal to `U` — pointwise
/// nonnegative — and `σ_B` is antitone (`X ⊆ Y ⇒ σ(Y) ≤ σ(X)`).  Either
/// condition may be asserted independently; nonnegative density implies
/// antitonicity, but the converse does not hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SideConditions {
    /// Every density variable is `≥ 0` (the support-function/multiset case).
    pub nonnegative_density: bool,
    /// The function itself is antitone: `X ⊆ Y ⇒ f(Y) ≤ f(X)`.
    pub antitone: bool,
}

impl SideConditions {
    /// No side conditions: `f` ranges over all of `F(S)`.
    pub fn none() -> SideConditions {
        SideConditions::default()
    }

    /// The support-function interpretation: nonnegative density (hence also
    /// antitone).
    pub fn support() -> SideConditions {
        SideConditions {
            nonnegative_density: true,
            antitone: true,
        }
    }
}

/// Tuning knobs for bound derivation.
#[derive(Debug, Clone, Copy)]
pub struct BoundsConfig {
    /// Operation budget: queries whose [`propagation_cost_bound`] exceeds it
    /// are answered by the sound relaxation instead of the full enumeration.
    pub budget_ops: u128,
    /// Interval-propagation fixpoint rounds over the known-value equations
    /// (each round is a full sweep; propagation stops early at a fixpoint).
    pub rounds: usize,
    /// Whether to run the pairwise known-vs-query region-split pass.
    pub pairwise: bool,
}

impl Default for BoundsConfig {
    fn default() -> Self {
        BoundsConfig {
            // 2^26 word-ops keeps worst-case derivation in the tens of
            // milliseconds; the universe cap bounds memory independently.
            budget_ops: 1 << 26,
            rounds: 3,
            pairwise: true,
        }
    }
}

/// One interval-derivation instance: a universe, the asserted differential
/// constraints, a sparse map of known point values `f(X) = v`, and the side
/// conditions under which `f` is interpreted.
///
/// `knowns` must not repeat a set; values must be finite.  The borrow-only
/// design lets a serving layer keep its own incremental state (the engine
/// crate versions knowns by digest) and materialize a problem per query.
#[derive(Debug, Clone, Copy)]
pub struct BoundsProblem<'a> {
    /// The attribute universe `S`.
    pub universe: &'a Universe,
    /// Asserted differential constraints (the premise set `C`).
    pub constraints: &'a [DiffConstraint],
    /// Known point values `f(X) = v`, in any order, one entry per set.
    pub knowns: &'a [(AttrSet, f64)],
    /// Semantic side conditions on `f`.
    pub side: SideConditions,
}

/// Which derivation path produced a bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeriveRoute {
    /// The full density-variable elimination: alive-table construction,
    /// interval propagation over the known-value equations, the pairwise
    /// region-split pass, and the generalized inclusion–exclusion deduction
    /// pass.
    Propagation,
    /// The enumeration-free relaxation: known-point, containment
    /// (antitone/monotone) rules, and empty-family zero pinning only.
    Relaxed,
}

impl DeriveRoute {
    /// Stable short name for reports and the wire protocol.
    pub fn name(self) -> &'static str {
        match self {
            DeriveRoute::Propagation => "propagation",
            DeriveRoute::Relaxed => "relaxed",
        }
    }
}

/// A derived bound: the tightest interval the chosen path could prove, plus
/// the path that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivedBound {
    /// The sound interval `[lo, hi]` containing every value `f(query)` can
    /// take over functions consistent with the problem.
    pub interval: Interval,
    /// The derivation path.
    pub route: DeriveRoute,
}

/// Bound derivation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeriveError {
    /// The knowns contradict the constraints (or each other) under the side
    /// conditions: no consistent set function exists, so no interval does
    /// either.
    Infeasible,
}

impl fmt::Display for DeriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeriveError::Infeasible => {
                write!(f, "known values contradict the asserted constraints")
            }
        }
    }
}

impl std::error::Error for DeriveError {}

/// An upper bound on the operations the propagation path performs for one
/// query: alive-table construction (`2^{|S|}·(|C|+1)`), `rounds` propagation
/// sweeps plus one pairwise pass over the knowns (`(rounds+1)·|K|·2^{|S|}`),
/// the direct and deduction region enumerations (`≈ 2·2^{|S|}`), and the
/// deduction pass's interval-of-knowns checks (`≤ 3^{|query|}`, saturating).
///
/// Returns `u128::MAX` past [`PROPAGATION_UNIVERSE_CAP`], where the dense
/// tables themselves are off-limits.
pub fn propagation_cost_bound(
    universe: &Universe,
    n_constraints: usize,
    n_knowns: usize,
    query: AttrSet,
    config: &BoundsConfig,
) -> u128 {
    let n = universe.len();
    if n > PROPAGATION_UNIVERSE_CAP {
        return u128::MAX;
    }
    let table = 1u128 << n;
    let sweeps = (config.rounds as u128 + 1) * n_knowns as u128;
    let deduction_checks = 3u128
        .checked_pow(query.len() as u32)
        .unwrap_or(u128::MAX / 2);
    table
        .saturating_mul(n_constraints as u128 + sweeps + 3)
        .saturating_add(deduction_checks)
}

/// Returns `true` when a derivation cost bound fits a budget.  The
/// `u128::MAX` past-the-universe-cap sentinel never fits — no budget,
/// however large, may select the propagation path on a universe its dense
/// tables cannot represent.  Both [`crate::derive::derive`] and external
/// planners (the engine's bound-query router) must route through this
/// predicate so the sentinel semantics stay in one place.
pub fn fits_budget(cost: u128, budget: u128) -> bool {
    cost != u128::MAX && cost <= budget
}

/// The interval implied by an exactly-known query value.
pub(crate) fn known_point(problem: &BoundsProblem<'_>, query: AttrSet) -> Option<Interval> {
    problem
        .knowns
        .iter()
        .find(|(x, _)| *x == query)
        .map(|&(_, v)| Interval::point(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_condition_presets() {
        assert!(!SideConditions::none().nonnegative_density);
        assert!(!SideConditions::none().antitone);
        assert!(SideConditions::support().nonnegative_density);
        assert!(SideConditions::support().antitone);
    }

    #[test]
    fn cost_bound_scales_and_caps() {
        let small = Universe::of_size(4);
        let big = Universe::of_size(24);
        let config = BoundsConfig::default();
        let q = AttrSet::from_indices([0, 1]);
        let cheap = propagation_cost_bound(&small, 2, 3, q, &config);
        assert!(cheap < config.budget_ops);
        assert_eq!(
            propagation_cost_bound(&big, 0, 0, q, &config),
            u128::MAX,
            "past the universe cap the propagation path is never chosen"
        );
        // More knowns cost more.
        let more = propagation_cost_bound(&small, 2, 30, q, &config);
        assert!(more > cheap);
    }

    #[test]
    fn route_names() {
        assert_eq!(DeriveRoute::Propagation.name(), "propagation");
        assert_eq!(DeriveRoute::Relaxed.name(), "relaxed");
    }
}
