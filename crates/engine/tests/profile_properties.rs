//! Continuous-profiling invariants, tested end to end:
//!
//! * collapsed-stack dumps always agree with the sampler's own accounting:
//!   every line is well-formed (`class;tag;…;tag count`), the counts sum to
//!   exactly the number of samples taken, and every rendered stack is one
//!   the beacons really held — for *any* interleaving of stage pushes;
//! * the `/profile`, `/healthz`, and `/buildinfo` HTTP routes answer with
//!   the documented shapes, and unknown paths or parameters fail loudly;
//! * the `debug profile start|stop|dump` verbs drive the process-wide
//!   sampler through the ordinary request path;
//! * the warm cached query path performs zero heap allocations (the
//!   counting allocator is the engine's global allocator, so this is
//!   measured, not asserted by inspection);
//! * the slow-query stderr log is rate limited and drops are visible in
//!   `stats`, and a cold `stats recent` answers the explicit warming form.

use diffcon_engine::{metrics, Pipeline, Server, SessionConfig};
use diffcon_obs::profile;
use proptest::prelude::*;
use std::sync::Mutex;
use std::time::Duration;

/// Serializes tests that toggle process-global profiler state (the enabled
/// flag and the background sampler); the beacons and tag table are
/// append-only and safe to share.
static PROFILER: Mutex<()> = Mutex::new(());

fn lock_profiler() -> std::sync::MutexGuard<'static, ()> {
    PROFILER
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One collapsed-stack line: `frame(;frame)* count`, frames non-empty and
/// free of the `;`/space separators.
fn assert_collapsed_line(line: &str) {
    let (stack, count) = line.rsplit_once(' ').unwrap_or_else(|| {
        panic!("collapsed line has no count: {line:?}");
    });
    assert!(
        count.parse::<u64>().is_ok(),
        "collapsed count is not a number: {line:?}"
    );
    let frames: Vec<&str> = stack.split(';').collect();
    assert!(frames.len() >= 2, "stack has no tag frames: {line:?}");
    for frame in frames {
        assert!(
            !frame.is_empty() && !frame.contains(' '),
            "malformed frame in {line:?}"
        );
    }
}

static TAG_A: profile::StageTag = profile::StageTag::new("proptest.alpha");
static TAG_B: profile::StageTag = profile::StageTag::new("proptest.beta");
static TAG_C: profile::StageTag = profile::StageTag::new("proptest.gamma");

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any sequence of nested stage pushes, a [`profile::SampleSet`]'s
    /// collapsed rendering matches its own accounting exactly: counts sum
    /// to the samples taken, each line is well-formed, and each rendered
    /// stack is a prefix chain of the tags actually pushed.
    #[test]
    fn collapsed_stacks_agree_with_sampler_accounting(
        depths in proptest::collection::vec(0usize..4, 1..6),
        samples_per_depth in 1u32..4,
    ) {
        let _guard = lock_profiler();
        profile::set_enabled(true);
        let tags: [&'static profile::StageTag; 3] = [&TAG_A, &TAG_B, &TAG_C];
        let mut set = profile::SampleSet::new();
        let mut expected = 0u64;
        for &depth in &depths {
            // Hold `depth` nested stages open while sampling.
            let guards: Vec<profile::StageGuard> =
                tags.iter().take(depth).map(|t| profile::stage(t)).collect();
            for _ in 0..samples_per_depth {
                expected += set.sample_once();
            }
            drop(guards);
        }
        profile::set_enabled(false);
        prop_assert_eq!(set.samples(), expected);
        let collapsed = set.collapsed();
        let mut sum = 0u64;
        for line in collapsed.lines() {
            assert_collapsed_line(line);
            let (stack, count) = line.rsplit_once(' ').unwrap();
            sum += count.parse::<u64>().unwrap();
            // Any stack sampled off this thread is a prefix chain of the
            // tags we pushed (other threads' beacons contribute idle or
            // engine-tagged frames; both parse above).
            if stack.contains("proptest.") {
                let frames: Vec<&str> = stack.split(';').collect();
                let names = ["proptest.alpha", "proptest.beta", "proptest.gamma"];
                for (frame, expected_name) in frames[1..].iter().zip(names) {
                    prop_assert_eq!(*frame, expected_name, "stack {}", stack);
                }
            }
        }
        prop_assert_eq!(sum, expected, "collapsed counts disagree with samples()");
    }
}

#[test]
fn healthz_buildinfo_and_unknown_routes() {
    let health = metrics::http_routes("/healthz");
    assert_eq!(health.status, 200);
    assert!(
        health.body.starts_with("ok queue_depth="),
        "got: {}",
        health.body
    );
    let build = metrics::http_routes("/buildinfo");
    assert_eq!(build.status, 200);
    assert!(
        build.body.starts_with("name=diffcond version="),
        "got: {}",
        build.body
    );
    assert!(build.body.contains(" flavor="), "got: {}", build.body);
    assert_eq!(metrics::http_routes("/metrics").status, 200);
    assert_eq!(metrics::http_routes("/nope").status, 404);
    assert_eq!(metrics::http_routes("/profile?bogus=1").status, 400);
    assert_eq!(metrics::http_routes("/profile?seconds=x").status, 400);
}

#[test]
fn profile_endpoint_emits_wellformed_collapsed_stacks() {
    let _guard = lock_profiler();
    // Drive real queries while the window is open so worker beacons are
    // live and the dump contains engine stage frames, not just idle.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let driver = {
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut pipeline = Pipeline::new(SessionConfig::default(), 2);
            pipeline.push_line("universe 6");
            pipeline.push_line("assert A->{B}");
            pipeline.push_line("assert B->{C,DE}");
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                pipeline.push_line("implies A->{C,DE}");
                pipeline.push_line("implies AB->{C}");
                pipeline.push_line("stats");
            }
            pipeline.finish();
        })
    };
    let response = metrics::http_routes("/profile?seconds=1&hz=311");
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    driver.join().expect("driver thread");
    assert_eq!(response.status, 200);
    assert!(
        !response.body.trim().is_empty(),
        "profile window sampled nothing"
    );
    for line in response.body.lines() {
        assert_collapsed_line(line);
    }
    // ~311 hz over 1 s: the counts must be in the right order of magnitude.
    let total: u64 = response
        .body
        .lines()
        .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
        .sum();
    assert!(total >= 30, "implausibly few samples: {total}");
}

#[test]
fn debug_profile_verbs_drive_the_sampler() {
    let _guard = lock_profiler();
    let mut server = Server::new(SessionConfig::default());
    let start = server.handle_line("debug profile start").text;
    assert!(
        start.starts_with("ok profile running=1 hz="),
        "got: {start}"
    );
    assert!(profile::sampler_hz().is_some(), "sampler not running");
    // Idempotent: a second start reports the same running sampler.
    let again = server.handle_line("debug profile start").text;
    assert!(
        again.starts_with("ok profile running=1 hz="),
        "got: {again}"
    );
    std::thread::sleep(Duration::from_millis(60));
    let dump = server.handle_line("debug profile dump").text;
    assert!(dump.starts_with("profile samples="), "got: {dump}");
    let stop = server.handle_line("debug profile stop").text;
    assert!(
        stop.starts_with("ok profile running=0 samples="),
        "got: {stop}"
    );
    assert!(profile::sampler_hz().is_none(), "sampler still running");
    // Dump still renders the retained accumulation after stop.
    let post = server.handle_line("debug profile dump").text;
    assert!(post.starts_with("profile samples="), "got: {post}");
    for group in post.split(" | ").skip(1) {
        assert_collapsed_line(group);
    }
    let err = server.handle_line("debug profile frobnicate").text;
    assert!(err.starts_with("err "), "got: {err}");
}

#[test]
fn warm_cached_query_path_allocates_nothing() {
    // Pre-pay this thread's one-time profiling registration so the
    // measurement below sees only the query path's own behavior.
    profile::set_thread_class("test");
    let mut server = Server::new(SessionConfig::default());
    server.handle_line("universe 6");
    server.handle_line("assert A->{B}");
    server.handle_line("assert B->{C,DE}");
    let session = server.session().expect("session exists");
    let universe = session.universe().clone();
    let goal = diffcon::DiffConstraint::parse("A->{C,DE}", &universe).unwrap();
    let snapshot = session.snapshot();
    // Warm: the first call populates the answer cache.
    let cold = snapshot.implies(&goal);
    assert!(!cold.cached, "first query must miss");
    assert!(snapshot.implies(&goal).cached, "second query must hit");
    let (allocs_before, bytes_before) = profile::thread_alloc_counts();
    for _ in 0..1000 {
        let outcome = snapshot.implies(&goal);
        assert!(outcome.implied && outcome.cached);
    }
    let (allocs_after, bytes_after) = profile::thread_alloc_counts();
    assert_eq!(
        (allocs_after - allocs_before, bytes_after - bytes_before),
        (0, 0),
        "warm cached implies allocated"
    );
}

#[test]
fn slow_log_drops_are_rate_limited_and_visible_in_stats() {
    let mut pipeline = Pipeline::new(SessionConfig::default(), 2);
    pipeline.set_slow_query_us(Some(0));
    pipeline.push_line("universe 5");
    pipeline.push_line("assert A->{B}");
    // Far more instantly-"slow" queries than the 8-line burst allows: the
    // excess must be dropped and counted, not printed.
    let dropped_before = metrics_counter("diffcond_slow_log_dropped_total");
    for _ in 0..64 {
        pipeline.push_line("implies A->{B}");
    }
    let (replies, _) = pipeline.push_line("stats");
    pipeline.finish();
    let dropped_after = metrics_counter("diffcond_slow_log_dropped_total");
    assert!(
        dropped_after > dropped_before,
        "no slow-log drops recorded: {dropped_before} -> {dropped_after}"
    );
    let stats = replies
        .iter()
        .map(|r| r.text.as_str())
        .find(|t| t.starts_with("stats "))
        .expect("stats reply present")
        .to_string();
    let field = stats
        .split_whitespace()
        .find_map(|t| t.strip_prefix("slow_log_dropped="))
        .expect("stats must report slow_log_dropped once drops happened");
    assert!(field.parse::<u64>().unwrap() > 0, "got: {stats}");
}

#[test]
fn stats_recent_cold_start_answers_the_warming_form() {
    // The global frame ring is shared across the test binary, so drive the
    // deterministic cold/warm transition on a private registry…
    let fresh = diffcon_engine::EngineMetrics::default();
    let cold = fresh.recent();
    assert!(!cold.baseline, "first observation must lack a baseline");
    assert_eq!(cold.window, Duration::ZERO);
    assert_eq!((cold.requests, cold.replies), (0, 0));
    let warm = fresh.recent();
    assert!(warm.baseline, "first call must seed the ring");
    // …and check both wire forms against the grammar on the global one.
    let mut server = Server::new(SessionConfig::default());
    let first = server.handle_line("stats recent").text;
    assert!(
        first == "stats recent window_us=0 warming=1"
            || first.starts_with("stats recent window_us="),
        "got: {first}"
    );
    let second = server.handle_line("stats recent").text;
    assert!(
        second.starts_with("stats recent window_us=") && second.contains(" qps="),
        "warm reply must report rates: {second}"
    );
}

/// Reads one unlabeled counter out of the global exposition.
fn metrics_counter(name: &str) -> f64 {
    let text = diffcon_engine::EngineMetrics::global().exposition();
    diffcon_obs::parse_exposition(&text)
        .expect("exposition parses")
        .into_iter()
        .find(|s| s.name == name && s.labels.is_empty())
        .map(|s| s.value)
        .unwrap_or(0.0)
}
