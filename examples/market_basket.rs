//! Market-basket scenario (Section 6 of the paper): mining frequent itemsets,
//! building a condensed representation, and using differential-constraint
//! inference to shrink it further.
//!
//! Run with `cargo run --example market_basket`.
//!
//! The workflow mirrors Section 6.1.1:
//!   1. generate a correlated (Quest-style) basket database;
//!   2. mine the frequent itemsets with Apriori, and record the negative border;
//!   3. build the FDFree/Bd⁻ condensed representation of Bykowski & Rigotti and
//!      show it answers support queries without touching the data;
//!   4. extract satisfied disjunctive constraints and use the *inference system*
//!      to identify itemsets whose disjunctive status (hence redundancy) follows
//!      from the retained constraints alone — the paper's {A,C,D} example.

use diffcon::{fis_bridge, DiffConstraint};
use fis::condensed::{CondensedRepresentation, DerivedStatus};
use fis::generator::{quest_like, QuestConfig};
use fis::{apriori, border, disjunctive};
use setlat::{AttrSet, Universe};

fn main() {
    let num_items = 8;
    let u = Universe::of_size(num_items);
    let config = QuestConfig {
        num_items,
        num_baskets: 250,
        num_patterns: 5,
        avg_pattern_len: 3,
        patterns_per_basket: 2,
        noise_prob: 0.04,
    };
    let db = quest_like(2024, &config);
    let kappa = 60;
    println!(
        "Basket database: {} baskets over {} items, threshold κ = {kappa}",
        db.len(),
        db.universe_size()
    );

    // ── 1. Mine with Apriori ─────────────────────────────────────────────────
    let mined = apriori::apriori(&db, kappa);
    println!(
        "\nApriori: {} frequent itemsets, {} candidates counted, negative border of size {}",
        mined.num_frequent(),
        mined.candidates_counted,
        mined.negative_border.len()
    );
    let positive = border::positive_border(&db, kappa);
    println!(
        "Positive border (maximal frequent itemsets): {}",
        positive.len()
    );

    // ── 2. Condensed representation ──────────────────────────────────────────
    let repr = CondensedRepresentation::build(&db, kappa);
    println!(
        "\nFDFree/Bd⁻ representation: |FDFree| = {}, |Bd⁻| = {}, total {} (vs {} frequent itemsets)",
        repr.fdfree.len(),
        repr.border.len(),
        repr.size(),
        mined.num_frequent()
    );
    // Answer a few support queries from the representation alone.
    let queries = ["AB", "ABC", "FG", "ABCDEFGH"];
    for q in queries {
        let itemset = u.parse_set(q).unwrap();
        let derived = repr.derive(itemset);
        let truth = db.support(itemset);
        match derived {
            DerivedStatus::Frequent(s) => {
                println!("  support({q}) derived = {s} (actual {truth})");
                assert_eq!(s, truth);
            }
            DerivedStatus::Infrequent => {
                println!("  {q} derived infrequent (actual support {truth} < {kappa})");
                assert!(truth < kappa);
            }
        }
    }

    // ── 3. Disjunctive constraints and inference-based pruning ───────────────
    // Collect a few satisfied nontrivial disjunctive rules over the densest items.
    let scope = AttrSet::from_indices(0..5);
    let rules = disjunctive::satisfied_rules_within(&db, scope);
    let retained: Vec<DiffConstraint> = rules
        .iter()
        .filter(|r| !r.is_trivial() && r.lhs.len() <= 1)
        .take(4)
        .map(fis_bridge::from_disjunctive)
        .collect();
    println!("\nRetained disjunctive constraints (as differential constraints):");
    for c in &retained {
        println!("  {}", c.format(&u));
    }
    let inferable = fis_bridge::inferable_disjunctive_itemsets(&u, &retained);
    println!(
        "Itemsets whose disjunctive status follows by inference alone: {} of {}",
        inferable.len(),
        1u64 << num_items
    );
    // Soundness spot-check: each inferred disjunctive itemset really is disjunctive.
    for &w in inferable.iter().take(10) {
        assert!(disjunctive::is_disjunctive(&db, w, 3));
    }
    println!("(each inferred itemset was re-checked against the data — all disjunctive)");
}
