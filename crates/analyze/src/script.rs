//! Flow-sensitive linting of `diffcond` protocol scripts.
//!
//! The linter simulates the server's session-registry state line by line —
//! slots, universes, premises, knowns, datasets — *without executing
//! anything*, and reports requests that would fail or mislead at run time:
//! use of `mine`/`adopt`/`dataset` before `load`, `forget` of a never-set
//! known, `session use`/`close` of unknown slots, duplicate and redundant
//! asserts, mining past the measured wedge thresholds, and dead lines after
//! `quit`.  Slot bookkeeping mirrors the engine's registry exactly: one
//! initial slot with id 0, ids never reused, closing the current slot
//! falls back to the lowest remaining id, closing the last slot opens a
//! fresh one.
//!
//! The linter is deliberately parser-agnostic: a driver (the `diffcond
//! check` subcommand) parses each line with the *protocol's own parser* and
//! maps the result onto [`ScriptOp`], so there is exactly one grammar in the
//! tree and the linter can never drift from it.  Parse failures become
//! error diagnostics in the driver; everything the linter sees parsed.

use diffcon::{implication, DiffConstraint};
use diffcon_discover::{MAX_MINE_RHS_WORK, MAX_MINE_UNIVERSE};
use setlat::{AttrSet, Universe};
use std::collections::BTreeMap;
use std::fmt;

/// Diagnostic severity: errors fail the lint (nonzero exit), warnings
/// report code that runs but is suspect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Suspicious but executable (duplicate assert, dead line).
    Warn,
    /// Would fail (or is certain to answer `err`) at run time.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// One lint finding, positioned at a 1-based line and column.
///
/// Displays as `line:col: severity: message`; drivers prefix the file name
/// for the conventional `file:line:col: …` form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// 1-based line number in the script.
    pub line: usize,
    /// 1-based character column.
    pub col: usize,
    /// Finding severity.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.line, self.col, self.severity, self.message
        )
    }
}

/// Source position of one script line's parts, as the driver computed them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the verb token.
    pub verb_col: usize,
    /// 1-based column of the first argument token (the verb column when the
    /// request has no argument).
    pub arg_col: usize,
}

/// One parsed request, reduced to what the linter's state machine needs.
/// Drivers map the protocol parser's output onto this (constraint and set
/// arguments stay textual — they can only be parsed once a universe is
/// known, which is itself part of the simulated state).
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptOp {
    /// `universe <n>`.
    UniverseSize(usize),
    /// `universe A B C`.
    UniverseNames(Vec<String>),
    /// `session new`.
    SessionNew,
    /// `session use <id>`.
    SessionUse(u64),
    /// `session close [<id>]`.
    SessionClose(Option<u64>),
    /// `assert <constraint>`.
    Assert(String),
    /// `retract <constraint>`.
    Retract(String),
    /// A read-only constraint query: `implies`, `witness`, `derive`,
    /// `explain`.
    Goal(String),
    /// `batch <c1> ; <c2> ; …`.
    Batch(Vec<String>),
    /// `known <set> = <value>`.
    Known(String, f64),
    /// `forget <set>`.
    Forget(String),
    /// `bound <set>`.
    Bound(String),
    /// `load <b1> ; <b2> ; …`.
    Load(Vec<String>),
    /// `mine`/`adopt` with resolved budgets; `adopt` additionally asserts
    /// the discovered cover.
    Mine {
        /// Largest family size `|𝒴|` requested.
        max_rhs: usize,
        /// Whether the discovery is adopted as premises (`adopt`).
        adopt: bool,
    },
    /// `dataset`.
    Dataset,
    /// `reset`.
    Reset,
    /// `quit`.
    Quit,
    /// A verb that reads the current session but mutates nothing
    /// (`premises`, `knowns`, `stats`, `analyze`, …).
    Inspect,
    /// A verb with no session dependency at all (`help`, `trace`,
    /// `session list`, `debug …`, `stats recent`).
    Global,
}

/// Simulated per-slot session state.
#[derive(Debug, Clone, Default)]
struct Slot {
    universe: Option<Universe>,
    /// Asserted premises with the line that introduced each.
    premises: Vec<(DiffConstraint, usize)>,
    /// Whether `adopt` ran: the premise family is then data-dependent and
    /// the duplicate/redundant/retract checks go quiet instead of guessing.
    premises_inexact: bool,
    /// Known sets with the line that set each.
    knowns: Vec<(AttrSet, usize)>,
    has_dataset: bool,
}

/// The flow-sensitive script linter.  Feed ops in line order via
/// [`Linter::check`], then collect the findings with [`Linter::finish`].
#[derive(Debug)]
pub struct Linter {
    slots: BTreeMap<u64, Slot>,
    current: u64,
    next_id: u64,
    quit_line: Option<usize>,
    diagnostics: Vec<Diagnostic>,
}

impl Default for Linter {
    fn default() -> Self {
        Linter::new()
    }
}

impl Linter {
    /// A fresh linter: one empty slot with id 0, mirroring the server.
    pub fn new() -> Self {
        let mut slots = BTreeMap::new();
        slots.insert(0, Slot::default());
        Linter {
            slots,
            current: 0,
            next_id: 1,
            quit_line: None,
            diagnostics: Vec::new(),
        }
    }

    /// Records a diagnostic directly — the driver uses this for parse
    /// errors, which carry their own column information.
    pub fn report(&mut self, line: usize, col: usize, severity: Severity, message: String) {
        self.diagnostics.push(Diagnostic {
            line,
            col,
            severity,
            message,
        });
    }

    /// Consumes the linter, returning every finding in line order.
    pub fn finish(self) -> Vec<Diagnostic> {
        self.diagnostics
    }

    /// `true` iff any recorded diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    fn warn(&mut self, span: Span, col: usize, message: String) {
        self.report(span.line, col, Severity::Warn, message);
    }

    fn error(&mut self, span: Span, col: usize, message: String) {
        self.report(span.line, col, Severity::Error, message);
    }

    fn slot(&mut self) -> &mut Slot {
        self.slots
            .get_mut(&self.current)
            .expect("a current slot always exists")
    }

    /// The current slot's universe, or an error diagnostic mirroring the
    /// server's `no session (send `universe` first)` refusal.
    fn universe(&mut self, span: Span) -> Option<Universe> {
        match self.slot().universe.clone() {
            Some(u) => Some(u),
            None => {
                self.error(
                    span,
                    span.verb_col,
                    format!(
                        "no universe in session slot {} yet (send `universe` first)",
                        self.current
                    ),
                );
                None
            }
        }
    }

    fn parse_constraint(&mut self, span: Span, text: &str) -> Option<(Universe, DiffConstraint)> {
        let universe = self.universe(span)?;
        match DiffConstraint::parse(text, &universe) {
            Ok(c) => Some((universe, c)),
            Err(e) => {
                self.error(span, span.arg_col, e.to_string());
                None
            }
        }
    }

    fn parse_set(&mut self, span: Span, text: &str) -> Option<AttrSet> {
        let universe = self.universe(span)?;
        match universe.parse_set(text) {
            Ok(set) => Some(set),
            Err(e) => {
                self.error(span, span.arg_col, e.to_string());
                None
            }
        }
    }

    /// Checks one parsed request against the simulated state, then applies
    /// its state effects.
    pub fn check(&mut self, span: Span, op: &ScriptOp) {
        if let Some(quit) = self.quit_line {
            self.warn(
                span,
                span.verb_col,
                format!("unreachable: the script quits at line {quit}"),
            );
        }
        match op {
            ScriptOp::Global => {}
            ScriptOp::Quit => {
                if self.quit_line.is_none() {
                    self.quit_line = Some(span.line);
                }
            }
            ScriptOp::UniverseSize(n) => {
                if *n == 0 || *n > setlat::MAX_UNIVERSE {
                    self.error(
                        span,
                        span.arg_col,
                        format!("universe size must be in 1..={}", setlat::MAX_UNIVERSE),
                    );
                    return;
                }
                *self.slot() = Slot {
                    universe: Some(Universe::of_size(*n)),
                    ..Slot::default()
                };
            }
            ScriptOp::UniverseNames(names) => {
                if let Some(bad) = names.iter().find(|n| n.chars().count() != 1) {
                    self.error(
                        span,
                        span.arg_col,
                        format!("attribute names must be single characters, got `{bad}`"),
                    );
                    return;
                }
                match Universe::from_names(names.clone()) {
                    Ok(u) => {
                        *self.slot() = Slot {
                            universe: Some(u),
                            ..Slot::default()
                        };
                    }
                    Err(e) => self.error(span, span.arg_col, e.to_string()),
                }
            }
            ScriptOp::SessionNew => {
                let id = self.next_id;
                self.next_id += 1;
                self.slots.insert(id, Slot::default());
                self.current = id;
            }
            ScriptOp::SessionUse(id) => {
                if self.slots.contains_key(id) {
                    self.current = *id;
                } else {
                    self.error(span, span.arg_col, format!("no session slot with id {id}"));
                }
            }
            ScriptOp::SessionClose(id) => {
                let target = id.unwrap_or(self.current);
                if self.slots.remove(&target).is_none() {
                    self.error(
                        span,
                        span.arg_col,
                        format!("no session slot with id {target}"),
                    );
                    return;
                }
                if self.slots.is_empty() {
                    let fresh = self.next_id;
                    self.next_id += 1;
                    self.slots.insert(fresh, Slot::default());
                }
                if !self.slots.contains_key(&self.current) {
                    self.current = *self.slots.keys().next().expect("never left empty");
                }
            }
            ScriptOp::Reset => {
                if let Some(universe) = self.universe(span) {
                    *self.slot() = Slot {
                        universe: Some(universe),
                        ..Slot::default()
                    };
                }
            }
            ScriptOp::Assert(text) => {
                let Some((universe, constraint)) = self.parse_constraint(span, text) else {
                    return;
                };
                let line = span.line;
                let slot = self.slot();
                if !slot.premises_inexact {
                    if let Some(at) = slot
                        .premises
                        .iter()
                        .find(|(p, _)| *p == constraint)
                        .map(|(_, at)| *at)
                    {
                        self.warn(
                            span,
                            span.arg_col,
                            format!("duplicate assert: already asserted at line {at}"),
                        );
                        return;
                    }
                    let family: Vec<DiffConstraint> =
                        slot.premises.iter().map(|(p, _)| p.clone()).collect();
                    if implication::implies(&universe, &family, &constraint) {
                        self.warn(
                            span,
                            span.arg_col,
                            "redundant assert: already implied by the premises above".to_string(),
                        );
                    }
                }
                self.slot().premises.push((constraint, line));
            }
            ScriptOp::Retract(text) => {
                let Some((_, constraint)) = self.parse_constraint(span, text) else {
                    return;
                };
                let slot = self.slot();
                match slot.premises.iter().position(|(p, _)| *p == constraint) {
                    Some(i) => {
                        slot.premises.remove(i);
                    }
                    None if slot.premises_inexact => {}
                    None => self.error(
                        span,
                        span.arg_col,
                        "retract of a constraint that is not an asserted premise".to_string(),
                    ),
                }
            }
            ScriptOp::Goal(text) => {
                self.parse_constraint(span, text);
            }
            ScriptOp::Batch(texts) => {
                for text in texts {
                    if self.parse_constraint(span, text).is_none() {
                        return;
                    }
                }
            }
            ScriptOp::Known(set_text, value) => {
                let Some(set) = self.parse_set(span, set_text) else {
                    return;
                };
                let _ = value;
                let line = span.line;
                let slot = self.slot();
                match slot.knowns.iter_mut().find(|(x, _)| *x == set) {
                    Some(entry) => entry.1 = line,
                    None => slot.knowns.push((set, line)),
                }
            }
            ScriptOp::Forget(set_text) => {
                let Some(set) = self.parse_set(span, set_text) else {
                    return;
                };
                let slot = self.slot();
                match slot.knowns.iter().position(|(x, _)| *x == set) {
                    Some(i) => {
                        slot.knowns.remove(i);
                    }
                    None => self.error(
                        span,
                        span.arg_col,
                        "forget of a set that has no known value".to_string(),
                    ),
                }
            }
            ScriptOp::Bound(set_text) => {
                if self.parse_set(span, set_text).is_none() {
                    return;
                }
                if self.slot().knowns.is_empty() {
                    self.warn(
                        span,
                        span.verb_col,
                        "bound with no known values: the derived interval cannot be finite"
                            .to_string(),
                    );
                }
            }
            ScriptOp::Load(records) => {
                let Some(universe) = self.universe(span) else {
                    return;
                };
                let mut loaded = false;
                for (i, record) in records.iter().enumerate() {
                    let record = record.trim();
                    if record.is_empty() || record.starts_with('#') {
                        continue;
                    }
                    match universe.parse_set(record) {
                        Ok(_) => loaded = true,
                        Err(e) => self.error(span, span.arg_col, format!("record {}: {e}", i + 1)),
                    }
                }
                if loaded {
                    self.slot().has_dataset = true;
                }
            }
            ScriptOp::Mine { max_rhs, adopt } => {
                let Some(universe) = self.universe(span) else {
                    return;
                };
                if !self.slot().has_dataset {
                    let verb = if *adopt { "adopt" } else { "mine" };
                    self.error(
                        span,
                        span.verb_col,
                        format!("{verb} before any `load`: the session has no dataset"),
                    );
                    return;
                }
                let n = universe.len();
                if n > MAX_MINE_UNIVERSE {
                    self.error(
                        span,
                        span.verb_col,
                        format!(
                            "mining is limited to universes of at most {MAX_MINE_UNIVERSE} \
                             attributes (universe has {n})"
                        ),
                    );
                    return;
                }
                if max_rhs.saturating_mul(n) > MAX_MINE_RHS_WORK {
                    self.error(
                        span,
                        span.arg_col,
                        format!(
                            "mine budget too large: max |𝒴| × universe size must be at most \
                             {MAX_MINE_RHS_WORK}, got {max_rhs} × {n}"
                        ),
                    );
                    return;
                }
                if *adopt {
                    self.slot().premises_inexact = true;
                }
            }
            ScriptOp::Dataset => {
                if self.universe(span).is_some() && !self.slot().has_dataset {
                    self.error(
                        span,
                        span.verb_col,
                        "dataset before any `load`: the session has no dataset".to_string(),
                    );
                }
            }
            ScriptOp::Inspect => {
                self.universe(span);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(line: usize) -> Span {
        Span {
            line,
            verb_col: 1,
            arg_col: 8,
        }
    }

    fn lint(ops: &[ScriptOp]) -> Vec<Diagnostic> {
        let mut linter = Linter::new();
        for (i, op) in ops.iter().enumerate() {
            linter.check(span(i + 1), op);
        }
        linter.finish()
    }

    fn errors(diags: &[Diagnostic]) -> usize {
        diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    #[test]
    fn clean_script_lints_clean() {
        let diags = lint(&[
            ScriptOp::UniverseSize(4),
            ScriptOp::Assert("A -> {B}".into()),
            ScriptOp::Known("A".into(), 40.0),
            ScriptOp::Bound("AB".into()),
            ScriptOp::Goal("A -> {B, CD}".into()),
            ScriptOp::Quit,
        ]);
        assert!(diags.is_empty(), "got: {diags:?}");
    }

    #[test]
    fn use_before_universe_is_an_error() {
        let diags = lint(&[ScriptOp::Assert("A -> {B}".into())]);
        assert_eq!(errors(&diags), 1);
        assert!(diags[0].message.contains("universe"));
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn mine_and_dataset_before_load_are_errors() {
        let diags = lint(&[
            ScriptOp::UniverseSize(4),
            ScriptOp::Mine {
                max_rhs: 2,
                adopt: false,
            },
            ScriptOp::Dataset,
        ]);
        assert_eq!(errors(&diags), 2);
        assert!(diags[0].message.contains("before any `load`"));
    }

    #[test]
    fn load_enables_mining_and_wedge_thresholds_fire() {
        let diags = lint(&[
            ScriptOp::UniverseSize(14),
            ScriptOp::Load(vec!["AB".into(), "B".into()]),
            ScriptOp::Mine {
                max_rhs: 2,
                adopt: false,
            },
            // 3 × 14 = 42 > 33: past the family-budget wedge threshold.
            ScriptOp::Mine {
                max_rhs: 3,
                adopt: false,
            },
        ]);
        assert_eq!(errors(&diags), 1);
        assert!(diags[0].message.contains("mine budget too large"));
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn oversized_mining_universe_is_refused() {
        let diags = lint(&[
            ScriptOp::UniverseSize(16),
            ScriptOp::Load(vec!["AB".into()]),
            ScriptOp::Mine {
                max_rhs: 1,
                adopt: false,
            },
        ]);
        assert_eq!(errors(&diags), 1);
        assert!(diags[0].message.contains("at most 14"));
    }

    #[test]
    fn forget_of_never_set_known_is_an_error() {
        let diags = lint(&[
            ScriptOp::UniverseSize(3),
            ScriptOp::Known("A".into(), 4.0),
            ScriptOp::Forget("A".into()),
            ScriptOp::Forget("A".into()),
        ]);
        assert_eq!(errors(&diags), 1);
        assert_eq!(diags[0].line, 4);
        assert!(diags[0].message.contains("no known value"));
    }

    #[test]
    fn bound_with_no_knowns_warns() {
        let diags = lint(&[ScriptOp::UniverseSize(3), ScriptOp::Bound("AB".into())]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warn);
        assert!(diags[0].message.contains("no known values"));
    }

    #[test]
    fn duplicate_and_redundant_asserts_warn() {
        let diags = lint(&[
            ScriptOp::UniverseSize(4),
            ScriptOp::Assert("A -> {B}".into()),
            ScriptOp::Assert("A -> {B}".into()),
            ScriptOp::Assert("B -> {C}".into()),
            ScriptOp::Assert("A -> {C}".into()),
        ]);
        assert_eq!(diags.len(), 2);
        assert!(diags[0].message.contains("duplicate assert"));
        assert!(diags[0].message.contains("line 2"));
        assert!(diags[1].message.contains("redundant assert"));
        assert_eq!(errors(&diags), 0);
    }

    #[test]
    fn session_slot_bookkeeping_mirrors_the_registry() {
        let diags = lint(&[
            ScriptOp::UniverseSize(3),
            ScriptOp::SessionNew,      // slot 1, current
            ScriptOp::UniverseSize(4), // opens slot 1's session
            ScriptOp::SessionUse(0),   // back to slot 0
            ScriptOp::Assert("A -> {B}".into()),
            ScriptOp::SessionClose(Some(1)),
            ScriptOp::SessionUse(1), // error: closed
            ScriptOp::SessionUse(7), // error: never existed
        ]);
        assert_eq!(errors(&diags), 2);
        assert!(diags[0].message.contains("slot with id 1"));
        assert!(diags[1].message.contains("slot with id 7"));
    }

    #[test]
    fn closing_the_last_slot_opens_a_fresh_empty_one() {
        let diags = lint(&[
            ScriptOp::UniverseSize(3),
            ScriptOp::SessionClose(None),
            // The fresh slot has no universe: session-scoped verbs error.
            ScriptOp::Inspect,
        ]);
        assert_eq!(errors(&diags), 1);
        assert!(diags[0].message.contains("slot 1"));
    }

    #[test]
    fn retract_of_unasserted_premise_is_an_error() {
        let diags = lint(&[
            ScriptOp::UniverseSize(3),
            ScriptOp::Assert("A -> {B}".into()),
            ScriptOp::Retract("A -> {B}".into()),
            ScriptOp::Retract("A -> {B}".into()),
        ]);
        assert_eq!(errors(&diags), 1);
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn adopt_quiets_the_premise_tracking() {
        let diags = lint(&[
            ScriptOp::UniverseSize(3),
            ScriptOp::Load(vec!["AB".into(), "B".into()]),
            ScriptOp::Mine {
                max_rhs: 2,
                adopt: true,
            },
            // The adopted cover is data-dependent: retracting one of its
            // members must not be flagged.
            ScriptOp::Retract("A -> {B}".into()),
            ScriptOp::Assert("A -> {B}".into()),
        ]);
        assert!(diags.is_empty(), "got: {diags:?}");
    }

    #[test]
    fn lines_after_quit_warn_with_the_quit_line() {
        let diags = lint(&[
            ScriptOp::UniverseSize(3),
            ScriptOp::Quit,
            ScriptOp::Inspect,
            ScriptOp::Global,
        ]);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.severity == Severity::Warn));
        assert!(diags[0].message.contains("line 2"));
    }

    #[test]
    fn parse_errors_surface_at_the_argument_column() {
        let diags = lint(&[
            ScriptOp::UniverseSize(3),
            ScriptOp::Assert("A -> {Z}".into()),
            ScriptOp::Bound("Q".into()),
        ]);
        assert_eq!(errors(&diags), 2);
        assert!(diags.iter().all(|d| d.col == 8));
    }

    #[test]
    fn bad_load_records_carry_their_record_number() {
        let diags = lint(&[
            ScriptOp::UniverseSize(3),
            ScriptOp::Load(vec!["AB".into(), "XY".into()]),
        ]);
        assert_eq!(errors(&diags), 1);
        assert!(diags[0].message.starts_with("record 2:"));
    }

    #[test]
    fn diagnostics_render_in_file_line_col_form() {
        let d = Diagnostic {
            line: 3,
            col: 9,
            severity: Severity::Error,
            message: "boom".into(),
        };
        assert_eq!(d.to_string(), "3:9: error: boom");
    }
}
