//! Property-based tests for the propositional-logic substrate.
//!
//! The DPLL solver, the two CNF conversions, the minset machinery and the
//! implication constraints are cross-validated against exhaustive truth-table
//! evaluation on randomly generated formulas over a small variable universe.

use proplogic::cnf::{Clause, Cnf, Lit};
use proplogic::dpll::{DpllSolver, SatResult};
use proplogic::formula::Formula;
use proplogic::implication::ImplicationConstraint;
use proplogic::{minterm, tautology};
use proptest::prelude::*;
use setlat::{AttrSet, Family, Universe};

const N: usize = 4;

fn universe() -> Universe {
    Universe::of_size(N)
}

/// A recursive strategy for random formulas over `N` variables.
fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        (0..N).prop_map(Formula::var),
        Just(Formula::True),
        Just(Formula::False),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Formula::and),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Formula::or),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Formula::iff(a, b)),
        ]
    })
}

fn arb_set() -> impl Strategy<Value = AttrSet> {
    (0u64..(1u64 << N)).prop_map(AttrSet::from_bits)
}

fn arb_family() -> impl Strategy<Value = Family> {
    proptest::collection::vec((1u64..(1u64 << N)).prop_map(AttrSet::from_bits), 0..3)
        .prop_map(Family::from_sets)
}

fn brute_force_satisfiable(f: &Formula) -> bool {
    (0u64..(1u64 << N)).any(|mask| f.eval(AttrSet::from_bits(mask)))
}

fn brute_force_tautology(f: &Formula) -> bool {
    (0u64..(1u64 << N)).all(|mask| f.eval(AttrSet::from_bits(mask)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn nnf_preserves_semantics(f in arb_formula()) {
        let nnf = f.nnf();
        for mask in 0u64..(1 << N) {
            let a = AttrSet::from_bits(mask);
            prop_assert_eq!(f.eval(a), nnf.eval(a));
        }
    }

    #[test]
    fn distributive_cnf_is_equivalent(f in arb_formula()) {
        let cnf = Cnf::from_formula_distributive(&f, N);
        for mask in 0u64..(1 << N) {
            let a = AttrSet::from_bits(mask);
            prop_assert_eq!(f.eval(a), cnf.eval(a));
        }
    }

    #[test]
    fn dpll_matches_truth_table(f in arb_formula()) {
        let brute = brute_force_satisfiable(&f);
        let cnf = Cnf::from_formula_tseitin(&f, N);
        let result = DpllSolver::new(cnf).solve();
        prop_assert_eq!(brute, result.is_sat());
        if let SatResult::Sat(model) = result {
            // The returned model, restricted to the original variables, satisfies
            // the formula whenever the formula is satisfiable at all.
            prop_assert!(f.eval(model.intersect(AttrSet::full(N))));
        }
    }

    #[test]
    fn tautology_check_matches_truth_table(f in arb_formula()) {
        prop_assert_eq!(tautology::is_tautology(&f, N), brute_force_tautology(&f));
        prop_assert_eq!(tautology::is_contradiction(&f, N), !brute_force_satisfiable(&f));
    }

    #[test]
    fn minset_and_negminset_partition_assignments(f in arb_formula()) {
        let u = universe();
        let pos = minterm::minset(&f, &u);
        let neg = minterm::negminset(&f, &u);
        prop_assert_eq!(pos.len() + neg.len(), 1 << N);
        let rebuilt = minterm::disjunction_of_minterms(&pos, N);
        for mask in 0u64..(1 << N) {
            let a = AttrSet::from_bits(mask);
            prop_assert_eq!(f.eval(a), rebuilt.eval(a));
        }
    }

    #[test]
    fn implication_constraint_procedures_agree(
        lhs in arb_set(),
        fam in arb_family(),
        premises in proptest::collection::vec((arb_set(), arb_family()), 0..3),
    ) {
        let u = universe();
        let goal = ImplicationConstraint::new(lhs, fam);
        let premise_constraints: Vec<ImplicationConstraint> = premises
            .into_iter()
            .map(|(x, f)| ImplicationConstraint::new(x, f))
            .collect();
        prop_assert_eq!(
            goal.implied_by_sat(&premise_constraints, &u),
            goal.implied_by_exhaustive(&premise_constraints, &u)
        );
    }

    #[test]
    fn negminset_of_implication_constraint_is_its_lattice(lhs in arb_set(), fam in arb_family()) {
        let u = universe();
        let constraint = ImplicationConstraint::new(lhs, fam.clone());
        let mut neg = constraint.negminset(&u);
        neg.sort();
        let lattice = setlat::lattice::lattice_decomposition(&u, lhs, &fam);
        prop_assert_eq!(neg, lattice);
    }

    #[test]
    fn parser_roundtrips_through_format(f in arb_formula()) {
        let u = universe();
        let printed = f.format(&u);
        let reparsed = proplogic::parser::parse_formula(&printed, &u).unwrap();
        for mask in 0u64..(1 << N) {
            let a = AttrSet::from_bits(mask);
            prop_assert_eq!(f.eval(a), reparsed.eval(a));
        }
    }

    #[test]
    fn unit_clauses_force_their_literals(bits in 0u64..(1u64 << N)) {
        // A CNF consisting only of unit clauses has exactly one model (over the
        // mentioned variables), and DPLL finds it by propagation alone.
        let target = AttrSet::from_bits(bits);
        let mut cnf = Cnf::empty(N);
        for v in 0..N {
            let lit = if target.contains(v) { Lit::pos(v) } else { Lit::neg(v) };
            cnf.push(Clause::new([lit]));
        }
        let mut solver = DpllSolver::new(cnf);
        match solver.solve() {
            SatResult::Sat(model) => prop_assert_eq!(model.intersect(AttrSet::full(N)), target),
            SatResult::Unsat => prop_assert!(false, "unit CNF must be satisfiable"),
        }
        prop_assert_eq!(solver.stats().decisions, 0);
    }
}
