//! Tautology, contradiction and equivalence checks.
//!
//! Proposition 5.5 of the paper shows coNP-hardness of differential-constraint
//! implication by reduction from the DNF-tautology problem.  This module makes
//! both directions of that reduction runnable: it decides tautology/
//! contradiction of arbitrary formulas via SAT refutation, and provides the
//! specialised DNF-tautology entry point used by the reduction.

use crate::cnf::Cnf;
use crate::dnf::Dnf;
use crate::dpll::{is_satisfiable, DpllSolver, SatResult};
use crate::formula::Formula;
use setlat::{AttrSet, Universe};

/// Decides whether a formula is satisfiable (via Tseitin + DPLL).
pub fn satisfiable(formula: &Formula, num_vars: usize) -> bool {
    is_satisfiable(Cnf::from_formula_tseitin(formula, num_vars))
}

/// Returns a satisfying assignment of the *original* variables if one exists.
pub fn find_model(formula: &Formula, num_vars: usize) -> Option<AttrSet> {
    let cnf = Cnf::from_formula_tseitin(formula, num_vars);
    match DpllSolver::new(cnf).solve() {
        SatResult::Sat(model) => Some(model.intersect(AttrSet::full(num_vars.min(64)))),
        SatResult::Unsat => None,
    }
}

/// Decides whether a formula is a tautology: `φ` is valid iff `¬φ` is unsatisfiable.
pub fn is_tautology(formula: &Formula, num_vars: usize) -> bool {
    !satisfiable(&Formula::not(formula.clone()), num_vars)
}

/// Decides whether a formula is a contradiction (unsatisfiable).
pub fn is_contradiction(formula: &Formula, num_vars: usize) -> bool {
    !satisfiable(formula, num_vars)
}

/// Decides whether two formulas are logically equivalent.
pub fn are_equivalent(a: &Formula, b: &Formula, num_vars: usize) -> bool {
    is_tautology(&Formula::iff(a.clone(), b.clone()), num_vars)
}

/// Decides DNF tautology via SAT refutation: `⋁ψ` is a tautology iff
/// `⋀¬ψ` is unsatisfiable.  The negation of a DNF is directly a CNF (one clause
/// per term), so no auxiliary variables are needed — this is exactly the
/// reduction exploited in the proof of Proposition 5.5.
pub fn dnf_is_tautology(dnf: &Dnf, universe: &Universe) -> bool {
    let n = universe.len();
    let mut cnf = Cnf::empty(n);
    for term in &dnf.terms {
        // ¬(⋀P ∧ ⋀¬Q) = ⋁_{p∈P} ¬p ∨ ⋁_{q∈Q} q.
        let lits = term
            .positive
            .iter()
            .map(crate::cnf::Lit::neg)
            .chain(term.negative.iter().map(crate::cnf::Lit::pos));
        cnf.push(crate::cnf::Clause::new(lits));
    }
    !is_satisfiable(cnf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnf::DnfTerm;

    #[test]
    fn excluded_middle() {
        let f = Formula::or([Formula::var(0), Formula::not(Formula::var(0))]);
        assert!(is_tautology(&f, 1));
        assert!(!is_contradiction(&f, 1));
    }

    #[test]
    fn simple_contradiction() {
        let f = Formula::and([Formula::var(0), Formula::not(Formula::var(0))]);
        assert!(is_contradiction(&f, 1));
        assert!(!is_tautology(&f, 1));
        assert_eq!(find_model(&f, 1), None);
    }

    #[test]
    fn contingent_formula() {
        let f = Formula::var(0);
        assert!(!is_tautology(&f, 2));
        assert!(!is_contradiction(&f, 2));
        let model = find_model(&f, 2).expect("satisfiable");
        assert!(f.eval(model));
    }

    #[test]
    fn equivalence_of_de_morgan() {
        let a = Formula::not(Formula::and([Formula::var(0), Formula::var(1)]));
        let b = Formula::or([Formula::not(Formula::var(0)), Formula::not(Formula::var(1))]);
        assert!(are_equivalent(&a, &b, 2));
        assert!(!are_equivalent(&a, &Formula::var(0), 2));
    }

    #[test]
    fn dnf_tautology_agrees_with_exhaustive() {
        let u = Universe::of_size(3);
        // (x ∧ y) ∨ ¬x ∨ (x ∧ ¬y) is a tautology.
        let taut = Dnf::new([
            DnfTerm::new(AttrSet::from_indices([0, 1]), AttrSet::EMPTY),
            DnfTerm::new(AttrSet::EMPTY, AttrSet::from_indices([0])),
            DnfTerm::new(AttrSet::from_indices([0]), AttrSet::from_indices([1])),
        ]);
        assert!(taut.is_tautology_exhaustive(&u));
        assert!(dnf_is_tautology(&taut, &u));

        // x ∨ y is not.
        let not_taut = Dnf::new([
            DnfTerm::new(AttrSet::from_indices([0]), AttrSet::EMPTY),
            DnfTerm::new(AttrSet::from_indices([1]), AttrSet::EMPTY),
        ]);
        assert!(!not_taut.is_tautology_exhaustive(&u));
        assert!(!dnf_is_tautology(&not_taut, &u));
    }

    #[test]
    fn dnf_tautology_on_random_instances() {
        // Deterministic pseudo-random DNF instances, cross-checked against
        // exhaustive evaluation.
        let u = Universe::of_size(4);
        let mut state: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..60 {
            let mut terms = Vec::new();
            for _ in 0..4 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let pos = AttrSet::from_bits((state >> 11) & 0xF);
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let neg = AttrSet::from_bits((state >> 23) & 0xF).difference(pos);
                terms.push(DnfTerm::new(pos, neg));
            }
            let dnf = Dnf::new(terms);
            assert_eq!(
                dnf.is_tautology_exhaustive(&u),
                dnf_is_tautology(&dnf, &u),
                "disagreement on {dnf:?}"
            );
        }
    }
}
