//! Hermetic stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment has no registry access, so this crate implements the
//! small parallel-iterator surface the `diffcon-engine` crate uses, on top of
//! [`std::thread::scope`]:
//!
//! * `slice.par_iter().map(f).collect::<Vec<_>>()` — order-preserving
//!   parallel map over a slice (also reachable through `Vec` via deref);
//! * [`join`] — run two closures, potentially in parallel;
//! * [`current_num_threads`] — the parallelism the pool will use;
//! * [`ThreadPoolBuilder`] / [`ThreadPool`] — an explicitly sized pool whose
//!   [`ThreadPool::install`] scope overrides the worker count the parallel
//!   operations above use (rayon's thread-local pool registry, reduced to a
//!   thread-local integer).  An explicit pool can ask for *more* workers
//!   than cores, which servers use to overlap many in-flight requests even
//!   on small machines.
//!
//! Work is split into one contiguous chunk per available core; each chunk is
//! processed on its own scoped thread and the results are concatenated in
//! input order, so `collect` observes exactly the sequential ordering.  For
//! the workloads the engine serves (hundreds-to-thousands of independent
//! implication queries of comparable cost) contiguous chunking is within a
//! few percent of a work-stealing pool without any of its machinery.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::fmt;
use std::num::NonZeroUsize;

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`] for the
    /// duration of its closure; `0` means "no override, use the hardware".
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel operations will use: the installed
/// pool's size inside [`ThreadPool::install`], the hardware parallelism
/// otherwise.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.with(Cell::get);
    if installed > 0 {
        return installed;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Whether the current thread is inside a [`ThreadPool::install`] scope.
/// Parallel operations then honor the pool's size down to one item per
/// worker instead of amortizing spawn cost with the per-4-items cap.
fn explicit_pool_installed() -> bool {
    POOL_THREADS.with(Cell::get) > 0
}

/// Pins the calling (worker) thread's parallelism.  Spawned chunk workers
/// of an explicitly sized pool run with an override of 1, so nested
/// `par_iter`s inside a worker stay serial instead of multiplying the
/// operator's thread budget by the hardware parallelism.
fn set_worker_override(n: usize) {
    POOL_THREADS.with(|c| c.set(n));
}

/// Builder for an explicitly sized [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// The error type rayon's builder can return.  The shim's build never fails;
/// the type exists so caller code matches the real crate.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder; without [`ThreadPoolBuilder::num_threads`] the pool
    /// sizes itself to the hardware.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads (`0` = hardware parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.  The shim spawns scoped threads per operation rather
    /// than keeping persistent workers, so building never fails.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let num_threads = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads })
    }
}

/// An explicitly sized worker pool.  [`ThreadPool::install`] runs a closure
/// with [`current_num_threads`] (and therefore every `par_iter` issued from
/// the closure's thread) pinned to the pool's size — which may deliberately
/// exceed the core count, so I/O-bound or latency-hiding workloads can keep
/// more requests in flight than the machine has cores.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with this pool's worker count installed for parallel
    /// operations issued from the current thread.  Nested installs restore
    /// the outer override on exit (panic-safe via a drop guard).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(POOL_THREADS.with(|c| c.replace(self.num_threads)));
        op()
    }
}

/// Runs both closures, in parallel when more than one thread is available,
/// and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon-shim: join closure panicked");
        (ra, rb)
    })
}

/// The traits that make `par_iter` available on slices and `Vec`s.
pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, ParallelIterator};
}

/// Parallel iterator types.
pub mod iter {
    use super::{current_num_threads, explicit_pool_installed};

    /// Conversion of `&self` into a parallel iterator (rayon's
    /// `IntoParallelRefIterator`, restricted to slices).
    pub trait IntoParallelRefIterator<'data> {
        /// The element type yielded by the iterator.
        type Item: 'data;
        /// The parallel iterator produced.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Creates a parallel iterator over borrowed elements.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = SliceIter<'data, T>;

        fn par_iter(&'data self) -> SliceIter<'data, T> {
            SliceIter { slice: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = SliceIter<'data, T>;

        fn par_iter(&'data self) -> SliceIter<'data, T> {
            SliceIter { slice: self }
        }
    }

    /// Minimal parallel-iterator interface: `map` then `collect`.
    pub trait ParallelIterator: Sized {
        /// The element type.
        type Item;

        /// Maps each element through `f` (evaluated in parallel at `collect`).
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync,
        {
            Map { base: self, f }
        }

        /// Runs the pipeline and collects the results **in input order**.
        fn collect<C>(self) -> C
        where
            C: FromIterator<Self::Item>,
            Self::Item: Send;
    }

    /// Parallel iterator over a slice.
    pub struct SliceIter<'data, T> {
        slice: &'data [T],
    }

    /// A mapped parallel iterator.
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    impl<'data, T: Sync + 'data> ParallelIterator for SliceIter<'data, T> {
        type Item = &'data T;

        fn collect<C>(self) -> C
        where
            C: FromIterator<&'data T>,
        {
            self.slice.iter().collect()
        }
    }

    impl<'data, T, R, F> ParallelIterator for Map<SliceIter<'data, T>, F>
    where
        T: Sync + 'data,
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        type Item = R;

        fn collect<C>(self) -> C
        where
            C: FromIterator<R>,
        {
            parallel_map_slice(self.base.slice, &self.f)
                .into_iter()
                .collect()
        }
    }

    /// Order-preserving parallel map over a slice: one contiguous chunk per
    /// worker thread, results concatenated in input order.
    fn parallel_map_slice<'data, T, R, F>(items: &'data [T], f: &F) -> Vec<R>
    where
        T: Sync + 'data,
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        let n = items.len();
        // An explicitly installed pool is a statement of intended
        // concurrency — the caller wants request-level overlap even for
        // small waves — so it is honored up to one worker per item.  The
        // default hardware-sized path instead caps workers at one per 4
        // items: spawning an OS thread costs tens of microseconds, so tiny
        // fine-grained batches use few threads (or none).
        let available = current_num_threads();
        let threads = if explicit_pool_installed() {
            available.min(n)
        } else {
            available.min(n.div_ceil(4))
        };
        if threads <= 1 || n < 2 {
            return items.iter().map(f).collect();
        }
        // Workers of an explicit pool must not fan out further: the wave is
        // already split across the operator's thread budget, so nested
        // parallel maps inside a worker run serially (override = 1).  The
        // default path leaves workers at the hardware default (0 = unset).
        let worker_override = usize::from(explicit_pool_installed());
        let chunk = n.div_ceil(threads);
        let mut out: Vec<Vec<R>> = Vec::with_capacity(threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|part| {
                    s.spawn(move || {
                        super::set_worker_override(worker_override);
                        part.iter().map(f).collect::<Vec<R>>()
                    })
                })
                .collect();
            for h in handles {
                out.push(h.join().expect("rayon-shim: worker thread panicked"));
            }
        });
        out.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_map_on_small_and_empty_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
        let one = vec![41u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "ok");
        assert_eq!(a, 2);
        assert_eq!(b, "ok");
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn pool_install_overrides_and_restores_worker_count() {
        let outside = super::current_num_threads();
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(7)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 7);
        let seen = pool.install(super::current_num_threads);
        assert_eq!(seen, 7);
        // Nested installs shadow and restore.
        let inner = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let (outer_seen, inner_seen) = pool.install(|| {
            (
                super::current_num_threads(),
                inner.install(super::current_num_threads),
            )
        });
        assert_eq!((outer_seen, inner_seen), (7, 2));
        assert_eq!(super::current_num_threads(), outside);
    }

    #[test]
    fn explicit_pools_parallelize_small_waves() {
        use std::collections::HashSet;
        // Under an installed pool, 4 items across 4 workers really run on 4
        // distinct threads (one chunk each) — the per-4-items spawn cap only
        // applies to the default hardware-sized path.
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let items = [0u32, 1, 2, 3];
        let ids: HashSet<std::thread::ThreadId> = pool
            .install(|| {
                items
                    .par_iter()
                    .map(|_| std::thread::current().id())
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .collect();
        assert_eq!(ids.len(), 4, "each item should get its own worker");
        // Without a pool the same 4-item map stays on the calling thread
        // (the per-4-items cap yields a single worker).
        let here = std::thread::current().id();
        let ids: HashSet<std::thread::ThreadId> = items
            .par_iter()
            .map(|_| std::thread::current().id())
            .collect::<Vec<_>>()
            .into_iter()
            .collect();
        assert_eq!(ids, HashSet::from([here]));
    }

    #[test]
    fn explicit_pool_workers_do_not_nest_parallelism() {
        // A worker of an explicit pool sees parallelism 1, so a nested
        // par_iter inside it cannot multiply the operator's thread budget.
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let items = [0u32, 1];
        let nested: Vec<usize> = pool.install(|| {
            items
                .par_iter()
                .map(|_| super::current_num_threads())
                .collect()
        });
        assert_eq!(nested, vec![1, 1]);
    }

    #[test]
    fn pool_sized_past_the_core_count_runs_parallel_maps() {
        // More workers than this machine has cores: the pool must still
        // produce order-preserving results (the server uses oversubscription
        // to overlap requests on small machines).
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = pool.install(|| input.par_iter().map(|x| x * 3).collect());
        let expected: Vec<u64> = input.iter().map(|x| x * 3).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn builder_zero_means_hardware() {
        let pool = super::ThreadPoolBuilder::new().build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }
}
