//! Lattice decompositions `L(X, 𝒴)` (Definition 2.6 of the paper) and
//! semilattice utilities.
//!
//! The paper defines `L(X, 𝒴) = ⋃_{W ∈ 𝒲(𝒴)} [X, W̄]` where `W̄` is the complement
//! of the witness set `W` in `S`.  The proof of Proposition 2.9 gives the
//! equivalent — and computationally far more convenient — characterization
//!
//! ```text
//! L(X, 𝒴) = { U | X ⊆ U ⊆ S  and  no member of 𝒴 is contained in U }.
//! ```
//!
//! Both forms are implemented here ([`lattice_decomposition`] uses the
//! characterization; [`lattice_via_witnesses`] uses the witness-union form) and
//! their equality is verified in tests and property tests.
//!
//! The membership test [`in_lattice`] is the workhorse of the implication
//! decision procedure in the `diffcon` crate: by Theorem 3.5,
//! `C ⊨ X → 𝒴  ⇔  L(X, 𝒴) ⊆ L(C)`, and membership of a single set `U` in some
//! `L(X', 𝒴')` is an `O(|𝒴'|)` bitset check.

use crate::attrset::AttrSet;
use crate::family::Family;
use crate::powerset::{interval, supersets_within};
use crate::universe::Universe;
use crate::witness::witness_sets;

/// Membership test: `U ∈ L(X, 𝒴)` iff `X ⊆ U` and no member of `𝒴` is contained
/// in `U` (Proposition 2.9).  `O(|𝒴|)` bitset operations.
#[inline]
pub fn in_lattice(x: AttrSet, fam: &Family, u: AttrSet) -> bool {
    x.is_subset(u) && !fam.some_member_contained_in(u)
}

/// Computes the full lattice decomposition `L(X, 𝒴)` over the given universe, as
/// a sorted vector of sets.
///
/// The size of `L(X, 𝒴)` can be exponential in `|S|`; callers that only need a
/// membership test should use [`in_lattice`] instead.
pub fn lattice_decomposition(universe: &Universe, x: AttrSet, fam: &Family) -> Vec<AttrSet> {
    let n = universe.len();
    let mut out: Vec<AttrSet> = supersets_within(x, n)
        .filter(|&u| !fam.some_member_contained_in(u))
        .collect();
    out.sort();
    out
}

/// Computes `L(X, 𝒴)` directly from Definition 2.6: the union over witness sets
/// `W ∈ 𝒲(𝒴)` of the intervals `[X, W̄]` (complement taken in `S`).
///
/// Exponentially slower than [`lattice_decomposition`] in the worst case; kept
/// as an executable form of the paper's original definition and used to
/// cross-validate the characterization.
pub fn lattice_via_witnesses(universe: &Universe, x: AttrSet, fam: &Family) -> Vec<AttrSet> {
    let n = universe.len();
    let mut out: Vec<AttrSet> = Vec::new();
    for w in witness_sets(fam) {
        let hi = w.complement_in(n);
        for u in interval(x, hi) {
            out.push(u);
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Counts `|L(X, 𝒴)|` without materializing the decomposition, by
/// inclusion–exclusion over the members of `𝒴`:
///
/// `|L(X, 𝒴)| = Σ_{𝒵 ⊆ 𝒴, X ∪ ⋃𝒵 consistent} (−1)^{|𝒵|} 2^{|S| − |X ∪ ⋃𝒵|}`.
///
/// Each term counts the supersets of `X ∪ ⋃𝒵`; the alternating sum removes the
/// sets that contain some member of `𝒴`.
pub fn lattice_size(universe: &Universe, x: AttrSet, fam: &Family) -> i128 {
    let n = universe.len();
    let members = fam.members();
    let k = members.len();
    assert!(
        k <= 30,
        "inclusion-exclusion over more than 30 members is infeasible"
    );
    let mut total: i128 = 0;
    for chooser in 0u64..(1u64 << k) {
        let mut union = x;
        for (i, &m) in members.iter().enumerate() {
            if (chooser >> i) & 1 == 1 {
                union = union.union(m);
            }
        }
        let sign: i128 = if chooser.count_ones() % 2 == 0 { 1 } else { -1 };
        total += sign * (1i128 << (n - union.len()));
    }
    total
}

/// Returns `true` iff `L(X, 𝒴)` is empty, i.e. the constraint `X → 𝒴` is trivial
/// (some member of `𝒴` is contained in `X`).
pub fn lattice_is_empty(x: AttrSet, fam: &Family) -> bool {
    fam.some_member_subset_of(x)
}

/// Checks Proposition 2.8 for concrete arguments:
/// `L(X, 𝒴) = L(X, 𝒴 ∪ {Z}) ∪ L(X ∪ Z, 𝒴)`.
///
/// Returns `true` when the identity holds (it always should; this is exposed so
/// tests and property tests can exercise the identity through the public API).
pub fn proposition_2_8_holds(universe: &Universe, x: AttrSet, fam: &Family, z: AttrSet) -> bool {
    let lhs = lattice_decomposition(universe, x, fam);
    let mut rhs = lattice_decomposition(universe, x, &fam.with_member(z));
    rhs.extend(lattice_decomposition(universe, x.union(z), fam));
    rhs.sort();
    rhs.dedup();
    lhs == rhs
}

/// Returns `true` iff the collection of sets is a *meet-semilattice* under
/// intersection: every pair of members has its intersection in the collection.
pub fn is_meet_semilattice(sets: &[AttrSet]) -> bool {
    closed_under(sets, AttrSet::intersect)
}

/// Returns `true` iff the collection of sets is a *join-semilattice* under
/// union: every pair of members has its union in the collection.
pub fn is_join_semilattice(sets: &[AttrSet]) -> bool {
    closed_under(sets, AttrSet::union)
}

fn closed_under(sets: &[AttrSet], op: impl Fn(AttrSet, AttrSet) -> AttrSet) -> bool {
    let mut sorted: Vec<AttrSet> = sets.to_vec();
    sorted.sort();
    sorted.dedup();
    for (i, &a) in sorted.iter().enumerate() {
        for &b in &sorted[i + 1..] {
            if sorted.binary_search(&op(a, b)).is_err() {
                return false;
            }
        }
    }
    true
}

/// The union `L(C) = ⋃ L(X_i, 𝒴_i)` over a list of `(X, 𝒴)` pairs, materialized
/// as a sorted deduplicated vector.  Used by exhaustive reference
/// implementations of the implication problem; the production decision
/// procedure in `diffcon` avoids materializing this set.
pub fn lattice_union(universe: &Universe, parts: &[(AttrSet, Family)]) -> Vec<AttrSet> {
    let mut out: Vec<AttrSet> = Vec::new();
    for (x, fam) in parts {
        out.extend(lattice_decomposition(universe, *x, fam));
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abcd() -> Universe {
        Universe::of_size(4)
    }

    fn fam(u: &Universe, members: &[&str]) -> Family {
        Family::from_sets(members.iter().map(|m| u.parse_set(m).unwrap()))
    }

    fn sets(u: &Universe, names: &[&str]) -> Vec<AttrSet> {
        let mut v: Vec<AttrSet> = names.iter().map(|s| u.parse_set(s).unwrap()).collect();
        v.sort();
        v
    }

    #[test]
    fn example_2_7_first_decomposition() {
        // L(A, {B, CD}) = {A, AC, AD}.
        let u = abcd();
        let x = u.parse_set("A").unwrap();
        let f = fam(&u, &["B", "CD"]);
        assert_eq!(
            lattice_decomposition(&u, x, &f),
            sets(&u, &["A", "AC", "AD"])
        );
    }

    #[test]
    fn example_2_7_second_decomposition() {
        // L(A, {BC, BD}) = {A, AB, AC, AD, ACD}.
        let u = abcd();
        let x = u.parse_set("A").unwrap();
        let f = fam(&u, &["BC", "BD"]);
        assert_eq!(
            lattice_decomposition(&u, x, &f),
            sets(&u, &["A", "AB", "AC", "AD", "ACD"])
        );
    }

    #[test]
    fn witness_form_matches_characterization() {
        let u = abcd();
        let x = u.parse_set("A").unwrap();
        for members in [
            vec!["B", "CD"],
            vec!["BC", "BD"],
            vec!["B"],
            vec!["BCD"],
            vec!["B", "C", "D"],
        ] {
            let f = fam(&u, &members);
            assert_eq!(
                lattice_decomposition(&u, x, &f),
                lattice_via_witnesses(&u, x, &f),
                "mismatch for family {members:?}"
            );
        }
    }

    #[test]
    fn empty_family_gives_full_interval() {
        // L(X, ∅) = [X, S]: with no members, no exclusion applies.
        let u = abcd();
        let x = u.parse_set("AB").unwrap();
        let l = lattice_decomposition(&u, x, &Family::empty());
        assert_eq!(l.len(), 4);
        for s in &l {
            assert!(x.is_subset(*s));
        }
        assert_eq!(l, lattice_via_witnesses(&u, x, &Family::empty()));
    }

    #[test]
    fn trivial_constraint_has_empty_lattice() {
        let u = abcd();
        let x = u.parse_set("AB").unwrap();
        let f = fam(&u, &["B", "CD"]); // B ⊆ AB ⇒ trivial
        assert!(lattice_is_empty(x, &f));
        assert!(lattice_decomposition(&u, x, &f).is_empty());
        assert_eq!(lattice_size(&u, x, &f), 0);
    }

    #[test]
    fn membership_agrees_with_enumeration() {
        let u = abcd();
        let x = u.parse_set("A").unwrap();
        let f = fam(&u, &["B", "CD"]);
        let l = lattice_decomposition(&u, x, &f);
        for s in u.all_subsets() {
            assert_eq!(in_lattice(x, &f, s), l.contains(&s), "mismatch at {s:?}");
        }
    }

    #[test]
    fn lattice_size_matches_enumeration() {
        let u = Universe::of_size(6);
        let x = u.parse_set("A").unwrap();
        let f = Family::from_sets([
            u.parse_set("BC").unwrap(),
            u.parse_set("DE").unwrap(),
            u.parse_set("F").unwrap(),
        ]);
        assert_eq!(
            lattice_size(&u, x, &f),
            lattice_decomposition(&u, x, &f).len() as i128
        );
    }

    #[test]
    fn proposition_2_8_spot_checks() {
        let u = abcd();
        let x = u.parse_set("A").unwrap();
        let f = fam(&u, &["B", "CD"]);
        for z in ["B", "C", "CD", "BD", "ABCD", ""] {
            assert!(
                proposition_2_8_holds(&u, x, &f, u.parse_set(z).unwrap()),
                "Proposition 2.8 failed for Z = {z}"
            );
        }
    }

    #[test]
    fn example_3_2_lattices() {
        // S = {A,B,C}: L(A, {B}) = {A, AC}, L(B, {C}) = {B, AB}, L(C, {A}) = {C, BC}.
        let u = Universe::of_size(3);
        let l1 = lattice_decomposition(&u, u.parse_set("A").unwrap(), &fam(&u, &["B"]));
        assert_eq!(l1, sets(&u, &["A", "AC"]));
        let l2 = lattice_decomposition(&u, u.parse_set("B").unwrap(), &fam(&u, &["C"]));
        assert_eq!(l2, sets(&u, &["B", "AB"]));
        let l3 = lattice_decomposition(&u, u.parse_set("C").unwrap(), &fam(&u, &["A"]));
        assert_eq!(l3, sets(&u, &["C", "BC"]));
    }

    #[test]
    fn remark_3_6_lattice_of_empty_constraint() {
        // S = {A}: L(∅, ∅) = {∅, A}.
        let u = Universe::of_size(1);
        let l = lattice_decomposition(&u, AttrSet::EMPTY, &Family::empty());
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn remark_4_5_atomic_lattices() {
        // For U ∈ L(X, 𝒴): L(U, {{z} | z ∈ S − U}) = {U}.
        let u = abcd();
        let x = u.parse_set("A").unwrap();
        let f = fam(&u, &["B", "CD"]);
        for member in lattice_decomposition(&u, x, &f) {
            let complement_singletons = Family::of_singletons(member.complement_in(u.len()));
            let l = lattice_decomposition(&u, member, &complement_singletons);
            assert_eq!(l, vec![member]);
        }
    }

    #[test]
    fn semilattice_checks() {
        let u = abcd();
        // {A, AB, AC, ABC} is both meet- and join-closed.
        let closed = sets(&u, &["A", "AB", "AC", "ABC"]);
        assert!(is_meet_semilattice(&closed));
        assert!(is_join_semilattice(&closed));
        // {AB, AC} is neither meet- nor join-closed (misses A and ABC).
        let open = sets(&u, &["AB", "AC"]);
        assert!(!is_meet_semilattice(&open));
        assert!(!is_join_semilattice(&open));
        // An interval [X, W̄] is always both.
        let iv: Vec<AttrSet> =
            interval(u.parse_set("A").unwrap(), u.parse_set("ACD").unwrap()).collect();
        assert!(is_meet_semilattice(&iv));
        assert!(is_join_semilattice(&iv));
    }

    #[test]
    fn lattice_union_combines_constraints() {
        // Example 3.4: C = {A → {B}, B → {C}} has
        // L(C) = {A, AC} ∪ {B, AB} = {A, AC, B, AB}, which contains L(A, {C}) = {A, AB}.
        let u = Universe::of_size(3);
        let parts = vec![
            (u.parse_set("A").unwrap(), fam(&u, &["B"])),
            (u.parse_set("B").unwrap(), fam(&u, &["C"])),
        ];
        let lc = lattice_union(&u, &parts);
        assert_eq!(lc, sets(&u, &["A", "AC", "B", "AB"]));
        let goal = lattice_decomposition(&u, u.parse_set("A").unwrap(), &fam(&u, &["C"]));
        for g in goal {
            assert!(lc.contains(&g));
        }
    }
}
