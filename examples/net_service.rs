//! End-to-end network serving demo: drive a `diffcond` TCP server with the
//! blocking client, exercising every layer the wire adds — framing, session
//! namespaces, typed interval parsing, error replies, admission limits, and
//! graceful shutdown.
//!
//! By default the example spawns its own in-process [`NetServer`] on an
//! ephemeral loopback port.  Set `DIFFCOND_ADDR=HOST:PORT` to drive an
//! externally started `diffcond serve` instead — that is how the CI
//! release-smoke step checks the real binary over a real socket — and
//! `DIFFCOND_BINARY=1` to negotiate the compact binary framing (the server
//! must run with `--binary`) and additionally exercise the fixed-width
//! mask frames of the hot verbs:
//!
//! ```text
//! $ ./target/release/diffcond serve --addr 127.0.0.1:7979 --threads 4 --binary &
//! $ DIFFCOND_ADDR=127.0.0.1:7979 cargo run --release --example net_service
//! $ DIFFCOND_ADDR=127.0.0.1:7979 DIFFCOND_BINARY=1 cargo run --release --example net_service
//! ```
//!
//! Every reply is checked, so a zero exit status is a verified transcript.

use diffcon_engine::client::{Client, ClientError};
use diffcon_engine::net::{NetConfig, NetServer, ShutdownHandle};
use std::time::Duration;

fn binary_mode() -> bool {
    std::env::var("DIFFCOND_BINARY").is_ok_and(|v| v == "1")
}

fn connect(addr: &str) -> Client {
    let mut last_err = None;
    // An externally launched server may still be binding; retry briefly.
    for _ in 0..50 {
        let attempt = if binary_mode() {
            Client::connect_binary(addr)
        } else {
            Client::connect(addr)
        };
        match attempt {
            Ok(mut client) => {
                client
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("read timeout");
                return client;
            }
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    panic!("cannot connect to {addr}: {:?}", last_err);
}

fn check(client: &mut Client, request: &str, expect_head: &str) -> String {
    let reply = client.raw_request(request).expect("round trip");
    println!("> {request}\n{reply}");
    assert!(
        reply.starts_with(expect_head),
        "`{request}` answered `{reply}`, expected head `{expect_head}`"
    );
    reply
}

fn main() {
    // Either an external server (CI smoke) or a private in-process one.
    let external = std::env::var("DIFFCOND_ADDR").ok();
    let mut shutdown: Option<ShutdownHandle> = None;
    let addr = match &external {
        Some(addr) => addr.clone(),
        None => {
            let server = NetServer::bind(
                "127.0.0.1:0",
                NetConfig {
                    threads: 2,
                    // Accept the handshake so `DIFFCOND_BINARY=1` works
                    // against the private server too; text connections are
                    // unaffected (framing is negotiated per connection).
                    binary: true,
                    ..NetConfig::default()
                },
            )
            .expect("bind an ephemeral loopback port");
            let addr = server.local_addr().to_string();
            shutdown = Some(server.shutdown_handle());
            std::thread::spawn(move || server.run().expect("accept loop"));
            addr
        }
    };
    println!("connecting to {addr}\n");

    // ── A full conversation over one connection ─────────────────────────
    let mut client = connect(&addr);
    check(&mut client, "universe 4", "ok universe n=4");
    check(&mut client, "assert A -> {B}", "ok assert id=0 added=1");
    check(&mut client, "assert B -> {C}", "ok assert id=1 added=1");
    check(&mut client, "implies A -> {C}", "yes");
    check(&mut client, "implies C -> {A}", "no");
    check(
        &mut client,
        "batch A -> {C}; C -> {A}; AB -> {B}",
        "results n=3 y n y",
    );
    check(&mut client, "known A = 40", "ok known set=A value=40");
    // Typed interval round trip: the premise pins f(AB) to f(A) exactly.
    let interval = client.bound("AB").expect("typed bound");
    println!("> bound AB (typed)\n[{}, {}]", interval.lo, interval.hi);
    assert!(interval.is_exact() && interval.lo == 40.0);
    // Session slots inside one connection work exactly as on stdin.
    check(&mut client, "session new", "ok session id=1");
    check(&mut client, "universe 3", "ok universe n=3");
    check(&mut client, "session list", "sessions n=2 current=1");
    check(&mut client, "session use 0", "ok session id=0");
    check(&mut client, "premises", "premises n=2");

    // ── The hot verbs as fixed-width mask frames (binary mode only) ─────
    if client.is_binary() {
        // A=bit0 … D=bit3: `implies A -> {C}` is lhs=0b0001, rhs=[0b0100].
        client
            .send_implies_mask(0b0001, &[0b0100])
            .expect("mask frame send");
        let reply = client.recv().expect("mask frame reply");
        println!("> implies mask lhs=0b0001 rhs=[0b0100]\n{reply}");
        assert!(reply.starts_with("yes"), "mask implies answered `{reply}`");
        client.send_bound_mask(0b0011).expect("mask frame send");
        let reply = client.recv().expect("mask frame reply");
        println!("> bound mask set=0b0011\n{reply}");
        assert!(
            reply.starts_with("bound lo=40"),
            "mask bound answered `{reply}`"
        );
    }

    // ── Error replies never cost the connection ─────────────────────────
    check(&mut client, "implies A -> {Z}", "err");
    check(&mut client, "quit now", "err quit expects no argument");
    let oversized = format!("implies {}", "A".repeat(2 * 64 * 1024));
    if client.is_binary() {
        // A binary frame declaring an over-limit length is a *fatal*
        // framing violation: one `err` reply, then the server closes.
        // Probe it on a throwaway connection so the conversation above
        // keeps its socket.
        let mut probe = connect(&addr);
        probe.send(&oversized).expect("oversized frame send");
        let reply = probe.recv().expect("oversized frame reply");
        println!(
            "> implies AAAA… ({} bytes, binary frame)\n{reply}",
            oversized.len()
        );
        assert!(reply.starts_with("err request line exceeds"));
        match probe.recv() {
            // A reset is equally valid: the server closed while unread
            // request bytes were still queued, so the kernel answers RST.
            Err(ClientError::Closed) | Err(ClientError::Io(_)) => {
                println!("(connection closed by server, as framed)");
            }
            other => panic!("expected a close after a fatal frame, got {other:?}"),
        }
    } else {
        let reply = client
            .raw_request(&oversized)
            .expect("oversized round trip");
        println!("> implies AAAA… ({} bytes)\n{reply}", oversized.len());
        assert!(reply.starts_with("err request line exceeds"));
    }
    check(&mut client, "implies A -> {C}", "yes");

    // ── A second connection is a fresh, isolated namespace ──────────────
    let mut other = connect(&addr);
    match other.request("premises") {
        Err(ClientError::Server(m)) => {
            println!("\nsecond connection: err {m}");
            assert!(m.starts_with("no session"));
        }
        other => panic!("expected a no-session error, got {other:?}"),
    }
    check(&mut other, "universe 4", "ok universe n=4");
    check(&mut other, "premises", "premises n=0");

    // ── Pipelined scripts drain in request order ────────────────────────
    let script: Vec<String> = (0..64)
        .map(|i| {
            if i % 2 == 0 {
                "implies A -> {C}".to_string()
            } else {
                "implies C -> {A}".to_string()
            }
        })
        .collect();
    let replies = client
        .run_script(script.iter().map(String::as_str))
        .expect("pipelined script");
    assert_eq!(replies.len(), 64);
    for (i, reply) in replies.iter().enumerate() {
        let head = if i % 2 == 0 { "yes" } else { "no" };
        assert!(reply.starts_with(head), "reply {i} was `{reply}`");
    }
    println!("\npipelined 64 queries: all answered in order");

    // ── Graceful shutdown ───────────────────────────────────────────────
    client.quit().expect("graceful quit");
    other.quit().expect("graceful quit");
    println!("both connections quit cleanly (`bye` + close)");
    if let Some(handle) = shutdown {
        handle.shutdown();
        println!(
            "server stopped after serving its connections \
             (refused at capacity: {})",
            handle.refused_connections()
        );
    }
    println!("\nnet_service: every reply verified");
}
