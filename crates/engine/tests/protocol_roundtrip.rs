//! Round-trip and grammar coverage for the `diffcond` wire protocol.
//!
//! Two directions are exercised, each over every verb (including the
//! discovery verbs `load` / `mine` / `adopt` / `dataset`):
//!
//! * **requests** — `parse_request(&format_request(r)) == Ok(r)` for
//!   randomized instances of every request form;
//! * **responses** — a server driven through randomized conversations only
//!   ever emits lines that parse under the response grammar of the protocol
//!   rustdoc, checked head-by-head (fields, counts, and listed constraints
//!   re-parse as claimed).

use diffcon::DiffConstraint;
use diffcon_engine::protocol::{format_request, parse_request, ProfileAction};
use diffcon_engine::{Request, Server, SessionConfig};
use proptest::prelude::*;
use setlat::Universe;

// ── Request generators ──────────────────────────────────────────────────

const UNIVERSE_N: usize = 4;

/// A random constraint in the trimmed wire form the parser emits
/// (`A->{B,CD}`), so the raw request text round-trips exactly.
fn arb_constraint_text() -> impl Strategy<Value = String> {
    let u = Universe::of_size(UNIVERSE_N);
    (
        0u64..(1u64 << UNIVERSE_N),
        proptest::collection::vec(0u64..(1u64 << UNIVERSE_N), 0..3),
    )
        .prop_map(move |(lhs, members)| {
            let constraint = DiffConstraint::new(
                setlat::AttrSet::from_bits(lhs),
                members
                    .into_iter()
                    .map(setlat::AttrSet::from_bits)
                    .collect(),
            );
            diffcon_engine::protocol::format_wire(&constraint, &u)
        })
}

/// A random set in compact notation (`"AB"`, or `"{}"` for the empty set).
fn arb_set_text() -> impl Strategy<Value = String> {
    let u = Universe::of_size(UNIVERSE_N);
    (0u64..(1u64 << UNIVERSE_N)).prop_map(move |mask| {
        let set = setlat::AttrSet::from_bits(mask);
        if set.is_empty() {
            "{}".to_string()
        } else {
            u.format_set(set)
        }
    })
}

fn arb_budgets() -> impl Strategy<Value = Option<(usize, usize)>> {
    (0u64..2, 0usize..5, 0usize..5).prop_map(|(some, lhs, rhs)| (some == 1).then_some((lhs, rhs)))
}

/// One random request of every form, uniformly across verbs.
fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (1usize..10)
            .prop_map(|n| Request::Universe(diffcon_engine::protocol::UniverseSpec::Size(n))),
        proptest::collection::vec(0u8..26, 1..5).prop_map(|ids| {
            let names = ids
                .into_iter()
                .map(|i| ((b'A' + i) as char).to_string())
                .collect();
            Request::Universe(diffcon_engine::protocol::UniverseSpec::Names(names))
        }),
        Just(Request::SessionNew),
        (0u64..4).prop_map(Request::SessionUse),
        (0u64..2, 0u64..4).prop_map(|(some, id)| Request::SessionClose((some == 1).then_some(id))),
        Just(Request::SessionList),
        arb_constraint_text().prop_map(Request::Assert),
        arb_constraint_text().prop_map(Request::Retract),
        arb_constraint_text().prop_map(Request::Implies),
        proptest::collection::vec(arb_constraint_text(), 1..4).prop_map(Request::Batch),
        arb_constraint_text().prop_map(Request::Witness),
        arb_constraint_text().prop_map(Request::Derive),
        arb_constraint_text().prop_map(Request::Explain),
        any::<bool>().prop_map(Request::Trace),
        (arb_set_text(), -100.0f64..100.0).prop_map(|(s, v)| Request::Known(s, v)),
        arb_set_text().prop_map(Request::Forget),
        arb_set_text().prop_map(Request::Bound),
        proptest::collection::vec(arb_set_text(), 1..5).prop_map(Request::Load),
        arb_budgets().prop_map(Request::Mine),
        arb_budgets().prop_map(Request::Adopt),
        Just(Request::Dataset),
        Just(Request::Premises),
        Just(Request::Knowns),
        Just(Request::Stats),
        Just(Request::StatsRecent),
        (0u64..2, 1usize..6).prop_map(|(some, n)| Request::DebugRecent((some == 1).then_some(n))),
        (0u64..1000).prop_map(Request::DebugTrace),
        prop_oneof![
            Just(ProfileAction::Start),
            Just(ProfileAction::Stop),
            Just(ProfileAction::Dump),
        ]
        .prop_map(Request::DebugProfile),
        Just(Request::Reset),
        Just(Request::Help),
        Just(Request::Quit),
        Just(Request::Empty),
    ]
}

// ── Response grammar validation ─────────────────────────────────────────

fn is_number(token: &str) -> bool {
    token.parse::<f64>().is_ok()
}

fn is_boundval(token: &str) -> bool {
    token == "inf" || token == "-inf" || is_number(token)
}

fn field_value<'a>(tokens: &[&'a str], key: &str) -> Option<&'a str> {
    tokens
        .iter()
        .find_map(|t| t.strip_prefix(&format!("{key}=")))
}

/// Validates one response line against the grammar in the protocol rustdoc.
/// Panics (with the offending line) when it does not conform.
fn validate_reply(universe: Option<&Universe>, line: &str) {
    if line.is_empty() {
        return; // Request::Empty
    }
    let mut tokens: Vec<&str> = line.split_whitespace().collect();
    // Under `trace on` every deferred-query reply carries a trailing
    // ` epoch=N` suffix; validate and strip it before the per-head checks
    // (which pin arities for `results`, `witness`, and `mined`).
    if matches!(
        tokens[0],
        "yes" | "no" | "results" | "witness" | "proof" | "unprovable" | "bound" | "mined" | "err"
    ) {
        if let Some(epoch) = tokens.last().and_then(|t| t.strip_prefix("epoch=")) {
            assert!(epoch.parse::<u64>().is_ok(), "epoch not numeric: {line}");
            tokens.pop();
        }
    }
    let (head, rest) = (tokens[0], &tokens[1..]);
    let parses_as_constraint = |text: &str| {
        universe
            .map(|u| DiffConstraint::parse(text, u).is_ok())
            // Replies listing constraints only arise once a session exists.
            .unwrap_or(false)
    };
    match head {
        "ok" | "bye" | "unprovable" => {}
        "err" => assert!(!rest.is_empty(), "bare err: {line}"),
        "yes" | "no" => {
            for key in ["route", "cached", "us"] {
                assert!(field_value(rest, key).is_some(), "{key} missing: {line}");
            }
        }
        "results" => {
            let n: usize = field_value(rest, "n")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("results without n=: {line}"));
            assert_eq!(rest.len(), n + 1, "results arity: {line}");
            assert!(
                rest[1..].iter().all(|t| *t == "y" || *t == "n"),
                "results tokens: {line}"
            );
        }
        "witness" => {
            assert!(
                rest == ["none"] || (rest.len() == 1 && rest[0].starts_with("set=")),
                "witness form: {line}"
            );
        }
        "proof" => {
            for key in ["size", "depth"] {
                let v = field_value(rest, key).unwrap_or_else(|| panic!("{key} missing: {line}"));
                assert!(is_number(v), "{key} not numeric: {line}");
            }
        }
        "bound" => {
            for key in ["lo", "hi"] {
                let v = field_value(rest, key).unwrap_or_else(|| panic!("{key} missing: {line}"));
                assert!(is_boundval(v), "{key} not a BOUNDVAL: {line}");
            }
            let route =
                field_value(rest, "route").unwrap_or_else(|| panic!("route missing: {line}"));
            assert!(
                ["cached", "propagation", "relaxed"].contains(&route),
                "bound route: {line}"
            );
        }
        "mined" => {
            let cover: usize = field_value(rest, "cover")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("mined without cover=: {line}"));
            assert!(
                field_value(rest, "minimal").is_some(),
                "minimal missing: {line}"
            );
            let listed = &rest[2..];
            assert_eq!(listed.len(), cover, "mined arity: {line}");
            for c in listed {
                assert!(
                    parses_as_constraint(c),
                    "unparseable constraint `{c}`: {line}"
                );
            }
        }
        "dataset" => {
            for key in ["baskets", "items"] {
                let v = field_value(rest, key).unwrap_or_else(|| panic!("{key} missing: {line}"));
                assert!(is_number(v), "{key} not numeric: {line}");
            }
            assert!(
                field_value(rest, "occurring").is_some(),
                "occurring missing: {line}"
            );
        }
        "premises" => {
            let n: usize = field_value(rest, "n")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("premises without n=: {line}"));
            let listed = &rest[1..];
            assert_eq!(listed.len(), n, "premises arity: {line}");
            for c in listed {
                assert!(parses_as_constraint(c), "unparseable premise `{c}`: {line}");
            }
        }
        "knowns" => {
            let n: usize = field_value(rest, "n")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("knowns without n=: {line}"));
            let listed = &rest[1..];
            assert_eq!(listed.len(), n, "knowns arity: {line}");
            for entry in listed {
                let (_, value) = entry
                    .split_once('=')
                    .unwrap_or_else(|| panic!("known entry `{entry}`: {line}"));
                assert!(is_boundval(value), "known value `{value}`: {line}");
            }
        }
        "stats" => {
            // A cold-start `stats recent` (no baseline frame yet) answers
            // the explicit warming form instead of zero rates.
            if rest == ["recent", "window_us=0", "warming=1"] {
                return;
            }
            assert!(
                field_value(rest, "queries").is_some(),
                "queries missing: {line}"
            );
            if rest.first() == Some(&"recent") {
                for key in ["window_us", "qps", "replies", "queue_p50us", "reply_p99us"] {
                    let v =
                        field_value(rest, key).unwrap_or_else(|| panic!("{key} missing: {line}"));
                    assert!(is_number(v), "{key} not numeric: {line}");
                }
            }
        }
        "flight" => {
            let n: usize = field_value(rest, "n")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("flight without n=: {line}"));
            let records: Vec<&[&str]> = if rest.iter().any(|t| t.starts_with("trace=")) {
                let body = &rest[rest
                    .iter()
                    .position(|t| t.starts_with("trace="))
                    .expect("position exists")..];
                body.split(|t| *t == "|").collect()
            } else {
                Vec::new()
            };
            assert_eq!(records.len(), n, "flight record count: {line}");
            for record in records {
                for key in ["trace", "conn", "slot", "cached", "queue_us", "epoch"] {
                    let v = field_value(record, key)
                        .unwrap_or_else(|| panic!("{key} missing in record: {line}"));
                    assert!(is_number(v), "{key} not numeric: {line}");
                }
                for key in ["verb", "route"] {
                    assert!(
                        field_value(record, key).is_some(),
                        "{key} missing in record: {line}"
                    );
                }
            }
        }
        "explain" => {
            let verdict =
                field_value(rest, "verdict").unwrap_or_else(|| panic!("verdict missing: {line}"));
            assert!(
                verdict == "yes" || verdict == "no",
                "explain verdict: {line}"
            );
            let route =
                field_value(rest, "route").unwrap_or_else(|| panic!("route missing: {line}"));
            assert!(
                ["trivial", "fd", "lattice", "sat"].contains(&route),
                "explain route: {line}"
            );
            for key in [
                "cached",
                "epoch",
                "probe_us",
                "plan_us",
                "decide_us",
                "total_us",
                "trace",
                "queue_us",
            ] {
                let v = field_value(rest, key).unwrap_or_else(|| panic!("{key} missing: {line}"));
                assert!(is_number(v), "{key} not numeric: {line}");
            }
        }
        "profile" => {
            for key in ["samples", "stacks"] {
                let v = field_value(rest, key).unwrap_or_else(|| panic!("{key} missing: {line}"));
                assert!(is_number(v), "{key} not numeric: {line}");
            }
            let stacks: usize = field_value(rest, "stacks")
                .and_then(|v| v.parse().ok())
                .expect("stacks checked numeric above");
            // `profile samples=N stacks=K stack count | stack count | …`:
            // the first stack pair rides in the fields group, the rest are
            // `|`-separated pairs.
            let groups: Vec<&[&str]> = rest.split(|t| *t == "|").collect();
            let check_pair = |stack: &str, count: &str| {
                assert!(
                    stack.split(';').count() >= 2 && stack.split(';').all(|f| !f.is_empty()),
                    "malformed stack `{stack}`: {line}"
                );
                assert!(
                    count.parse::<u64>().is_ok(),
                    "stack count `{count}`: {line}"
                );
            };
            if stacks == 0 {
                assert_eq!(groups.len(), 1, "stackless dump has groups: {line}");
                assert_eq!(groups[0].len(), 2, "stackless dump arity: {line}");
            } else {
                assert_eq!(groups.len(), stacks, "profile group count: {line}");
                assert_eq!(groups[0].len(), 4, "first profile group arity: {line}");
                check_pair(groups[0][2], groups[0][3]);
                for group in &groups[1..] {
                    assert_eq!(group.len(), 2, "profile group arity: {line}");
                    check_pair(group[0], group[1]);
                }
            }
        }
        "sessions" => {
            let n: usize = field_value(rest, "n")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("sessions without n=: {line}"));
            assert!(
                field_value(rest, "current").is_some(),
                "current missing: {line}"
            );
            let listed = &rest[2..];
            assert_eq!(listed.len(), n, "sessions arity: {line}");
            for desc in listed {
                // slotdesc ::= ID ":" ("-" | "u" NUMBER "p" NUMBER)
                let (id, state) = desc
                    .split_once(':')
                    .unwrap_or_else(|| panic!("slotdesc `{desc}`: {line}"));
                assert!(id.parse::<u64>().is_ok(), "slot id `{id}`: {line}");
                if state != "-" {
                    let body = state
                        .strip_prefix('u')
                        .unwrap_or_else(|| panic!("slotdesc state `{state}`: {line}"));
                    let (u, rest) = body
                        .split_once('p')
                        .unwrap_or_else(|| panic!("slotdesc state `{state}`: {line}"));
                    let (p, q) = rest
                        .split_once('q')
                        .unwrap_or_else(|| panic!("slotdesc state `{state}`: {line}"));
                    assert!(u.parse::<usize>().is_ok(), "slot universe `{u}`: {line}");
                    assert!(p.parse::<usize>().is_ok(), "slot premises `{p}`: {line}");
                    assert!(q.parse::<u64>().is_ok(), "slot queries `{q}`: {line}");
                }
            }
        }
        other => panic!("unknown response head `{other}`: {line}"),
    }
}

/// Feeds a request sequence to a fresh server and validates every reply,
/// tracking the active universe so listed constraints can be re-parsed.
fn run_and_validate(requests: &[Request]) {
    let mut server = Server::new(SessionConfig::default());
    for request in requests {
        let line = format_request(request);
        // The request side of the round trip.
        assert_eq!(
            parse_request(&line).as_ref(),
            Ok(request),
            "request round-trip failed for `{line}`"
        );
        let reply = server.handle_line(&line);
        // Track the *current slot's* universe (session verbs switch slots,
        // so it can change on any request) for re-parsing listed
        // constraints.
        let universe = server.session().map(|s| s.universe().clone());
        validate_reply(universe.as_ref(), &reply.text);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Every randomly generated request formats and re-parses identically.
    #[test]
    fn requests_round_trip(request in arb_request()) {
        let line = format_request(&request);
        prop_assert_eq!(parse_request(&line), Ok(request));
    }

    /// Random conversations (all verbs, valid and failing) produce only
    /// grammar-conforming replies.
    #[test]
    fn responses_conform_to_the_grammar(
        requests in proptest::collection::vec(arb_request(), 1..30),
    ) {
        // Prefix with a universe so most requests land in a live session;
        // the random tail still exercises the no-session error paths.
        let mut script = vec![Request::Universe(
            diffcon_engine::protocol::UniverseSpec::Size(UNIVERSE_N),
        )];
        script.extend(requests);
        run_and_validate(&script);
    }
}

/// A deterministic conversation touching every response head once, so
/// grammar coverage does not depend on random luck.
#[test]
fn every_response_verb_is_covered() {
    let script = [
        "",
        "# comment",
        "help",
        "universe 4",
        "assert A->{B}",
        "implies A->{B}",
        "implies B->{A}",
        "batch A->{B} ; B->{A}",
        "witness B->{A}",
        "witness A->{B}",
        "derive A->{B}",
        "derive B->{A}",
        "explain A->{B}",
        "explain B->{A}",
        "trace on",
        "implies A->{B}",
        "witness A->{B}",
        "batch A->{B} ; B->{A}",
        "trace off",
        "known A = 3",
        "bound AB",
        "knowns",
        "load AB ; ABC ; B",
        "dataset",
        "mine",
        "adopt",
        "premises",
        "stats",
        "stats recent",
        "debug recent",
        "debug recent 2",
        "debug trace 1",
        "debug profile start",
        "debug profile dump",
        "debug profile stop",
        "forget A",
        "frobnicate",
        "session list",
        "session new",
        "session list",
        "session use 0",
        "session close 1",
        "session close 99",
        "reset",
        "quit",
    ];
    let mut server = Server::new(SessionConfig::default());
    let universe = Universe::of_size(4);
    for line in script {
        let reply = server.handle_line(line);
        validate_reply(Some(&universe), &reply.text);
    }
}
