//! Hermetic stand-in for the [`epoll`](https://crates.io/crates/epoll) crate.
//!
//! The build environment has no registry access, so this crate implements the
//! small readiness-API surface the `diffcon-engine` reactor uses, as safe
//! wrappers over the raw Linux syscalls (declared `extern "C"` against the
//! libc that `std` already links — no new dependency):
//!
//! * [`Epoll`] — an owned `epoll(7)` instance created with `EPOLL_CLOEXEC`,
//!   closed on drop;
//! * [`Interest`] — readable/writable registration with optional
//!   edge-triggering, always including peer-hangup notification;
//! * [`Epoll::add`] / [`Epoll::modify`] / [`Epoll::delete`] — registration
//!   keyed by a caller-chosen `u64` token (the reactor uses connection slab
//!   indices);
//! * [`Epoll::wait`] — blocks for readiness into a reusable [`Events`]
//!   buffer, retrying `EINTR` internally so callers never see spurious
//!   interruptions;
//! * [`raise_nofile_limit`] — a `setrlimit(RLIMIT_NOFILE)` helper for the
//!   many-connection soak harness (the only non-epoll syscall here, kept in
//!   this crate because the engine itself forbids `unsafe`).
//!
//! The wrappers are memory-safe for any argument values: file descriptors
//! are passed by value (a stale fd yields `EBADF`, an `io::Error`, never
//! undefined behavior), event buffers are sized and owned by [`Events`],
//! and every return value is checked and converted through
//! [`std::io::Error::last_os_error`].
//!
//! Linux-only by construction (the reactor is gated the same way); other
//! platforms get a compile error naming the missing API rather than a
//! runtime surprise.

#![cfg(target_os = "linux")]
#![deny(missing_docs)]

use std::io;
use std::os::fd::RawFd;

/// `epoll_event.events` bit: readable.
const EPOLLIN: u32 = 0x001;
/// `epoll_event.events` bit: writable.
const EPOLLOUT: u32 = 0x004;
/// `epoll_event.events` bit: error condition (always reported).
const EPOLLERR: u32 = 0x008;
/// `epoll_event.events` bit: hangup (always reported).
const EPOLLHUP: u32 = 0x010;
/// `epoll_event.events` bit: peer closed its writing end.
const EPOLLRDHUP: u32 = 0x2000;
/// `epoll_event.events` bit: edge-triggered delivery.
const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;

/// `RLIMIT_NOFILE` on every Linux architecture.
const RLIMIT_NOFILE: i32 = 7;

/// The kernel's `struct epoll_event`.  Packed on x86-64 (the kernel ABI
/// there packs the 32-bit event mask against the 64-bit data word); the
/// natural `repr(C)` layout everywhere else.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct RawEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
struct RawRlimit {
    cur: u64,
    max: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut RawEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut RawEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut RawRlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RawRlimit) -> i32;
}

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
    /// Edge-triggered delivery: one wakeup per readiness *transition*; the
    /// owner must drain to `WouldBlock`.  Level-triggered (the default)
    /// re-reports readiness every wait while it persists.
    pub edge: bool,
}

impl Interest {
    /// Level-triggered readable.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
        edge: false,
    };
    /// Level-triggered writable.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
        edge: false,
    };
    /// Level-triggered readable + writable.
    pub const READ_WRITE: Interest = Interest {
        read: true,
        write: true,
        edge: false,
    };

    fn bits(self) -> u32 {
        let mut bits = 0;
        if self.read {
            // Peer half-close rides with read interest only: a write-only
            // registration (e.g. a connection draining its output backlog
            // after EOF) must not be re-woken every wait by a persistent
            // level-triggered RDHUP it can do nothing about.
            bits |= EPOLLIN | EPOLLRDHUP;
        }
        if self.write {
            bits |= EPOLLOUT;
        }
        if self.edge {
            bits |= EPOLLET;
        }
        bits
    }
}

/// One delivered readiness event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    events: u32,
}

impl Event {
    /// The fd is readable (includes peer hangup: a final `read` will report
    /// the remaining bytes, then EOF).
    pub fn readable(&self) -> bool {
        self.events & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0
    }

    /// The fd is writable.
    pub fn writable(&self) -> bool {
        self.events & EPOLLOUT != 0
    }

    /// An error or hangup condition is pending (reported even when not
    /// requested); the owner should read to collect the error / EOF.
    pub fn is_error(&self) -> bool {
        self.events & (EPOLLERR | EPOLLHUP) != 0
    }

    /// The peer closed its writing end (half-close); bytes may remain.
    pub fn is_rdhup(&self) -> bool {
        self.events & EPOLLRDHUP != 0
    }
}

/// A reusable buffer [`Epoll::wait`] fills with ready [`Event`]s.
pub struct Events {
    raw: Vec<RawEvent>,
    len: usize,
}

impl Events {
    /// A buffer that can carry up to `capacity` events per wait (the batch
    /// the reactor processes per wakeup).
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            raw: vec![RawEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Events delivered by the most recent wait.
    pub fn len(&self) -> usize {
        self.len
    }

    /// No events were delivered (timeout expired).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the delivered events.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.len].iter().map(|raw| Event {
            token: raw.data,
            events: raw.events,
        })
    }
}

/// An owned epoll instance (closed on drop).
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

// The epoll fd is just an integer handle; all operations go through the
// kernel, which serializes them.  `&self` methods are safe from any thread.
unsafe impl Send for Epoll {}
unsafe impl Sync for Epoll {}

impl Epoll {
    /// Creates an epoll instance with `EPOLL_CLOEXEC`.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: no pointers cross the boundary; the return value is a new
        // fd or -1 with errno set.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, event: Option<(u64, Interest)>) -> io::Result<()> {
        let mut raw = event.map(|(token, interest)| RawEvent {
            events: interest.bits(),
            data: token,
        });
        let ptr = raw
            .as_mut()
            .map_or(std::ptr::null_mut(), |r| r as *mut RawEvent);
        // SAFETY: `ptr` is null (DEL) or points at a live stack RawEvent for
        // the duration of the call; invalid fds surface as EBADF.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, ptr) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, Some((token, interest)))
    }

    /// Changes the interest (and/or token) of a registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, Some((token, interest)))
    }

    /// Removes a registration.  Removing an fd that was already closed (and
    /// therefore auto-deregistered) reports `ENOENT`/`EBADF`, which callers
    /// tearing a connection down may ignore.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Blocks until at least one registered fd is ready (or the timeout
    /// expires), filling `events`.  `timeout_ms`: `None` blocks forever;
    /// `Some(0)` polls.  Returns the number of events delivered; `EINTR` is
    /// retried internally.
    pub fn wait(&self, events: &mut Events, timeout_ms: Option<i32>) -> io::Result<usize> {
        let timeout = timeout_ms.unwrap_or(-1);
        loop {
            // SAFETY: the buffer pointer and capacity come from the same
            // live Vec; the kernel writes at most `capacity` entries.
            let rc = unsafe {
                epoll_wait(
                    self.fd,
                    events.raw.as_mut_ptr(),
                    events.raw.len() as i32,
                    timeout,
                )
            };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            events.len = rc as usize;
            return Ok(rc as usize);
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is the epoll fd this struct owns; double-close
        // is impossible because drop runs once.
        unsafe { close(self.fd) };
    }
}

/// Raises the process's `RLIMIT_NOFILE` soft limit toward `target` (raising
/// the hard limit too when the process may, e.g. under `CAP_SYS_RESOURCE`),
/// and returns the soft limit actually in effect afterwards.  Lowering never
/// happens: a `target` below the current soft limit leaves it unchanged.
///
/// The many-connection soak tests call this first and then size themselves
/// to what the kernel actually granted.
pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
    let mut limit = RawRlimit { cur: 0, max: 0 };
    // SAFETY: the pointer references a live stack struct the kernel fills.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut limit) } < 0 {
        return Err(io::Error::last_os_error());
    }
    if target <= limit.cur {
        return Ok(limit.cur);
    }
    // Try the full target first (raising the hard limit needs privilege),
    // then fall back to raising the soft limit to the existing hard one.
    let attempts = [
        RawRlimit {
            cur: target,
            max: target.max(limit.max),
        },
        RawRlimit {
            cur: target.min(limit.max),
            max: limit.max,
        },
    ];
    for attempt in attempts {
        // SAFETY: the pointer references a live stack struct the kernel reads.
        if unsafe { setrlimit(RLIMIT_NOFILE, &attempt) } == 0 {
            return Ok(attempt.cur);
        }
    }
    Ok(limit.cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    fn nonblocking_pair() -> (UnixStream, UnixStream) {
        let (a, b) = UnixStream::pair().expect("socketpair");
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn waits_for_readable_and_reports_the_token() {
        let epoll = Epoll::new().unwrap();
        let (mut a, b) = nonblocking_pair();
        epoll.add(b.as_raw_fd(), 7, Interest::READ).unwrap();
        let mut events = Events::with_capacity(8);
        // Nothing written yet: a zero-timeout poll delivers nothing.
        assert_eq!(epoll.wait(&mut events, Some(0)).unwrap(), 0);
        a.write_all(b"x").unwrap();
        assert_eq!(epoll.wait(&mut events, Some(1000)).unwrap(), 1);
        let event = events.iter().next().unwrap();
        assert_eq!(event.token, 7);
        assert!(event.readable());
        assert!(!event.writable());
    }

    #[test]
    fn modify_switches_interest_and_delete_removes() {
        let epoll = Epoll::new().unwrap();
        let (_a, b) = nonblocking_pair();
        epoll.add(b.as_raw_fd(), 1, Interest::READ).unwrap();
        // An idle socket is writable the moment we ask for writability.
        epoll.modify(b.as_raw_fd(), 2, Interest::WRITE).unwrap();
        let mut events = Events::with_capacity(4);
        assert_eq!(epoll.wait(&mut events, Some(1000)).unwrap(), 1);
        let event = events.iter().next().unwrap();
        assert_eq!(event.token, 2);
        assert!(event.writable());
        epoll.delete(b.as_raw_fd()).unwrap();
        assert_eq!(epoll.wait(&mut events, Some(0)).unwrap(), 0);
    }

    #[test]
    fn edge_triggered_reports_a_transition_once() {
        let epoll = Epoll::new().unwrap();
        let (mut a, mut b) = nonblocking_pair();
        let interest = Interest {
            edge: true,
            ..Interest::READ
        };
        epoll.add(b.as_raw_fd(), 3, interest).unwrap();
        a.write_all(b"edge").unwrap();
        let mut events = Events::with_capacity(4);
        assert_eq!(epoll.wait(&mut events, Some(1000)).unwrap(), 1);
        // Without draining, edge-triggered does not re-report.
        assert_eq!(epoll.wait(&mut events, Some(0)).unwrap(), 0);
        // Draining then writing again produces a fresh edge.
        let mut sink = [0u8; 16];
        let n = b.read(&mut sink).unwrap();
        assert_eq!(n, 4);
        a.write_all(b"more").unwrap();
        assert_eq!(epoll.wait(&mut events, Some(1000)).unwrap(), 1);
    }

    #[test]
    fn peer_hangup_reports_readable() {
        let epoll = Epoll::new().unwrap();
        let (a, b) = nonblocking_pair();
        epoll.add(b.as_raw_fd(), 9, Interest::READ).unwrap();
        drop(a);
        let mut events = Events::with_capacity(4);
        assert_eq!(epoll.wait(&mut events, Some(1000)).unwrap(), 1);
        let event = events.iter().next().unwrap();
        assert!(event.readable(), "hangup must wake readers so they see EOF");
        assert!(event.is_rdhup() || event.is_error());
    }

    #[test]
    fn bad_fd_is_an_error_not_ub() {
        let epoll = Epoll::new().unwrap();
        assert!(epoll.add(-1, 0, Interest::READ).is_err());
        assert!(epoll.delete(987654).is_err());
    }

    #[test]
    fn nofile_limit_reports_a_usable_value() {
        let limit = raise_nofile_limit(1024).expect("getrlimit works");
        assert!(limit >= 1024 || limit > 0);
        // Asking for less than the current limit is a no-op report.
        let again = raise_nofile_limit(1).unwrap();
        assert!(again >= limit.min(1024));
    }
}
