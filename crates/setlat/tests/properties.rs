//! Property-based tests for the set-function and lattice substrate.
//!
//! These exercise the core identities of Section 2 of the paper on randomly
//! generated functions, sets and families:
//!
//! * Möbius inversion is a bijection (Remark 2.3, equations (4)/(5));
//! * `D^𝒴_f(X) = Σ_{U ∈ L(X,𝒴)} d_f(U)` (Proposition 2.9);
//! * `L(X, 𝒴) = L(X, 𝒴 ∪ {Z}) ∪ L(X ∪ Z, 𝒴)` (Proposition 2.8);
//! * the witness-union form of `L` equals the containment characterization;
//! * every interval `[X, W̄]` is a meet- and join-semilattice.

use proptest::prelude::*;
use setlat::{
    differential, lattice, mobius, powerset, witness, AttrSet, Family, SetFunction, Universe,
};

const N: usize = 6;

fn arb_set() -> impl Strategy<Value = AttrSet> {
    (0u64..(1u64 << N)).prop_map(AttrSet::from_bits)
}

fn arb_nonempty_set() -> impl Strategy<Value = AttrSet> {
    (1u64..(1u64 << N)).prop_map(AttrSet::from_bits)
}

fn arb_family(max_members: usize) -> impl Strategy<Value = Family> {
    proptest::collection::vec(arb_nonempty_set(), 0..=max_members).prop_map(Family::from_sets)
}

fn arb_function() -> impl Strategy<Value = SetFunction> {
    proptest::collection::vec(-10.0f64..10.0, 1usize << N)
        .prop_map(|values| SetFunction::from_values(N, values))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mobius_zeta_roundtrip(f in arb_function()) {
        let d = mobius::density_function(&f);
        let back = mobius::from_density(&d);
        prop_assert!(back.max_abs_diff(&f) < 1e-9);
    }

    #[test]
    fn zeta_mobius_roundtrip(d in arb_function()) {
        let f = mobius::from_density(&d);
        let back = mobius::density_function(&f);
        prop_assert!(back.max_abs_diff(&d) < 1e-9);
    }

    #[test]
    fn fast_mobius_matches_naive(f in arb_function()) {
        let fast = mobius::density_function(&f);
        let naive = mobius::density_function_naive(&f);
        prop_assert!(fast.max_abs_diff(&naive) < 1e-9);
    }

    #[test]
    fn proposition_2_9(f in arb_function(), x in arb_set(), fam in arb_family(4)) {
        let d = mobius::density_function(&f);
        let direct = differential::differential_at(&f, x, &fam);
        let via = differential::differential_via_density(&d, x, &fam);
        prop_assert!((direct - via).abs() < 1e-7,
            "D^Y_f(X) = {direct} but density sum = {via}");
    }

    #[test]
    fn proposition_2_8(x in arb_set(), fam in arb_family(4), z in arb_set()) {
        let u = Universe::of_size(N);
        prop_assert!(lattice::proposition_2_8_holds(&u, x, &fam, z));
    }

    #[test]
    fn lattice_characterization_matches_witness_form(x in arb_set(), fam in arb_family(4)) {
        let u = Universe::of_size(N);
        prop_assert_eq!(
            lattice::lattice_decomposition(&u, x, &fam),
            lattice::lattice_via_witnesses(&u, x, &fam)
        );
    }

    #[test]
    fn lattice_size_matches_enumeration(x in arb_set(), fam in arb_family(4)) {
        let u = Universe::of_size(N);
        prop_assert_eq!(
            lattice::lattice_size(&u, x, &fam),
            lattice::lattice_decomposition(&u, x, &fam).len() as i128
        );
    }

    #[test]
    fn lattice_membership_matches_enumeration(x in arb_set(), fam in arb_family(4), u_set in arb_set()) {
        let u = Universe::of_size(N);
        let l = lattice::lattice_decomposition(&u, x, &fam);
        prop_assert_eq!(lattice::in_lattice(x, &fam, u_set), l.contains(&u_set));
    }

    #[test]
    fn witness_count_matches_enumeration(fam in arb_family(4)) {
        prop_assert_eq!(
            witness::count_witness_sets(&fam),
            witness::witness_sets(&fam).len() as i128
        );
    }

    #[test]
    fn minimal_witnesses_generate_all(fam in arb_family(4)) {
        let all = witness::witness_sets(&fam);
        let minimal = witness::minimal_witness_sets(&fam);
        for w in &all {
            prop_assert!(minimal.iter().any(|m| m.is_subset(*w)));
        }
        // And every minimal witness is a witness.
        for m in &minimal {
            prop_assert!(witness::is_witness(&fam, *m) || fam.is_empty());
        }
    }

    #[test]
    fn intervals_are_semilattices(lo in arb_set(), hi in arb_set()) {
        let iv: Vec<AttrSet> = powerset::interval(lo, hi).collect();
        if !iv.is_empty() {
            prop_assert!(lattice::is_meet_semilattice(&iv));
            prop_assert!(lattice::is_join_semilattice(&iv));
        }
    }

    #[test]
    fn subsets_iter_is_exact(set in arb_set()) {
        let subs: Vec<AttrSet> = powerset::subsets(set).collect();
        prop_assert_eq!(subs.len() as u128, powerset::subset_count(set));
        let mut dedup = subs.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), subs.len());
        for s in subs {
            prop_assert!(s.is_subset(set));
        }
    }

    #[test]
    fn density_of_frequency_like_function_is_recovered(values in proptest::collection::vec(0.0f64..5.0, 1usize << N)) {
        // Build a nonnegative density, reconstruct f, and check f is recognized as
        // a frequency function (Section 6 of the paper).
        let d = SetFunction::from_values(N, values);
        let f = mobius::from_density(&d);
        prop_assert!(differential::is_frequency_function(&f, 1e-7));
    }

    #[test]
    fn point_mass_density(u_set in arb_set(), c in -5.0f64..5.0) {
        let f = SetFunction::point_mass(N, u_set, c);
        let d = mobius::density_function(&f);
        for (x, v) in d.iter() {
            if x == u_set {
                prop_assert!((v - c).abs() < 1e-9);
            } else {
                prop_assert!(v.abs() < 1e-9);
            }
        }
    }

    #[test]
    fn family_normalization_is_idempotent(fam in arb_family(5)) {
        let renorm = Family::from_sets(fam.iter());
        prop_assert_eq!(fam, renorm);
    }

    #[test]
    fn trivial_iff_empty_lattice(x in arb_set(), fam in arb_family(4)) {
        let u = Universe::of_size(N);
        let trivial = fam.some_member_subset_of(x);
        let empty = lattice::lattice_decomposition(&u, x, &fam).is_empty();
        prop_assert_eq!(trivial, empty);
    }
}
