//! The derivation passes: density-variable elimination by interval
//! propagation, the pairwise region-split pass, the generalized
//! inclusion–exclusion deduction pass, and the enumeration-free relaxation.
//!
//! # The propagation path
//!
//! Write `d` for the density function of the unknown `f`, so that
//! `f(X) = Σ_{X ⊆ U} d(U)` (eq. (5) of the paper).  Each asserted constraint
//! zeroes `d` on its lattice decomposition (Definition 3.1), leaving a set of
//! *alive* variables; each known value `f(X) = v` becomes the linear equation
//! `Σ_{U ⊇ X, U alive} d(U) = v`; nonnegative density (the support-function
//! interpretation) seeds every variable with `[0, ∞)`.  The passes:
//!
//! 1. **Interval propagation** — for each equation and each alive variable in
//!    it, `d(U) = v − Σ_{W ≠ U} d(W)` tightens `d(U)`'s interval from the
//!    others'; swept to a budgeted fixpoint.
//! 2. **Direct evaluation** — `f(Y)` is the sum of its alive variables'
//!    intervals.  When the constraints kill the whole row, `f(Y) = 0` exactly.
//! 3. **Pairwise region split** — for each known `f(X) = v`,
//!    `f(Y) = v + Σ_{U ⊇ Y, U ⊉ X∪Y} d(U) − Σ_{U ⊇ X, U ⊉ X∪Y} d(U)`,
//!    an exact identity whose two region sums are bounded by the variable
//!    intervals (for `X ⊆ Y` this is the monotonicity sandwich).
//! 4. **Deduction** — for each `X ⊆ Y` with every `f(J)`, `X ⊆ J ⊊ Y` known,
//!    the Möbius identity
//!    `Σ_{X ⊆ J ⊆ Y} (−1)^{|J∖X|} f(J) = Σ_{U ⊇ X, U∩Y = X} d(U)`
//!    resolves `f(Y)` against the right-hand region's interval.  With no
//!    constraints and nonnegative density the region sum is bounded below by
//!    `0` and this pass *is* the Calders–Goethals deduction-rule system
//!    (`fis::ndi`); constraints that kill a region turn its rule into an
//!    equality, which is where the strictly tighter intervals come from.
//!
//! Every candidate interval is an exact linear identity evaluated over sound
//! variable intervals, so their intersection is sound; an empty intersection
//! (or an unsatisfiable equation) witnesses infeasibility.

use crate::interval::{Interval, SumAcc};
use crate::problem::{
    fits_budget, known_point, propagation_cost_bound, BoundsConfig, BoundsProblem, DeriveError,
    DeriveRoute, DerivedBound,
};
use diffcon::density;
use setlat::{powerset, AttrSet};

/// Comparison tolerance for infeasibility detection (the serving workloads
/// are integral, so this only absorbs float noise from adversarial inputs).
const TOL: f64 = 1e-9;

/// Derives the tightest interval for `f(query)` the configured budget allows:
/// the full propagation path when [`propagation_cost_bound`] fits
/// `config.budget_ops`, the sound relaxation otherwise.
pub fn derive(
    problem: &BoundsProblem<'_>,
    query: AttrSet,
    config: &BoundsConfig,
) -> Result<DerivedBound, DeriveError> {
    let cost = propagation_cost_bound(
        problem.universe,
        problem.constraints.len(),
        problem.knowns.len(),
        query,
        config,
    );
    if fits_budget(cost, config.budget_ops) {
        derive_propagated(problem, query, config)
    } else {
        derive_relaxed(problem, query)
    }
}

/// The full propagation path (see the module docs).  Unconditional: callers
/// that want budget routing should use [`derive()`].
///
/// # Panics
/// Panics if the universe exceeds
/// [`crate::problem::PROPAGATION_UNIVERSE_CAP`] attributes.
pub fn derive_propagated(
    problem: &BoundsProblem<'_>,
    query: AttrSet,
    config: &BoundsConfig,
) -> Result<DerivedBound, DeriveError> {
    let state = propagate(problem, config)?;
    let interval = evaluate(problem, &state, query, config)?;
    Ok(DerivedBound {
        interval,
        route: DeriveRoute::Propagation,
    })
}

/// Dense per-variable state at the pass-1 fixpoint: the alive classification,
/// each density variable's interval, and the knowns as a mask-indexed table
/// (`NaN` = unknown).  Query-independent, so one propagation serves any
/// number of [`evaluate`] calls.
struct Propagated {
    lo: Vec<f64>,
    hi: Vec<f64>,
    val: Vec<f64>,
}

/// Pass 1 of the module docs: alive classification and interval propagation
/// over the known-value equations, to a budgeted fixpoint.
///
/// # Panics
/// Panics if the universe exceeds
/// [`crate::problem::PROPAGATION_UNIVERSE_CAP`] attributes.
fn propagate(
    problem: &BoundsProblem<'_>,
    config: &BoundsConfig,
) -> Result<Propagated, DeriveError> {
    let universe = problem.universe;
    let n = universe.len();
    assert!(
        n <= crate::problem::PROPAGATION_UNIVERSE_CAP,
        "propagation path supports at most {} attributes (got {n})",
        crate::problem::PROPAGATION_UNIVERSE_CAP
    );
    let size = 1usize << n;

    // Alive classification and per-variable intervals.  Dead variables are
    // pinned to [0, 0] and never relaxed or tightened.
    let alive = density::alive_table(universe, problem.constraints);
    let (init_lo, init_hi) = if problem.side.nonnegative_density {
        (0.0, f64::INFINITY)
    } else {
        (f64::NEG_INFINITY, f64::INFINITY)
    };
    let mut lo = vec![0.0f64; size];
    let mut hi = vec![0.0f64; size];
    for mask in 0..size {
        if alive[mask] {
            lo[mask] = init_lo;
            hi[mask] = init_hi;
        }
    }

    // Known values as a mask-indexed table (NaN = unknown) for the deduction
    // pass's interval-of-knowns checks.
    let mut val = vec![f64::NAN; size];
    for &(x, v) in problem.knowns {
        val[x.bits() as usize] = v;
    }

    // Pass 1: interval propagation over the known-value equations.
    for _ in 0..config.rounds {
        let mut changed = false;
        for &(x, v) in problem.knowns {
            let mut lo_sum = SumAcc::new();
            let mut hi_sum = SumAcc::new();
            for u in powerset::supersets_within(x, n) {
                let m = u.bits() as usize;
                lo_sum.add(lo[m]);
                hi_sum.add(hi[m]);
            }
            if lo_sum.total() > v + TOL || hi_sum.total() < v - TOL {
                return Err(DeriveError::Infeasible);
            }
            for u in powerset::supersets_within(x, n) {
                let m = u.bits() as usize;
                if !alive[m] {
                    continue;
                }
                // d(U) = v − Σ_{W ≠ U} d(W): others' lower bounds cap d(U)
                // above, others' upper bounds support it below.
                let new_hi = v - lo_sum.total_without(lo[m]);
                let new_lo = v - hi_sum.total_without(hi[m]);
                if new_hi < hi[m] {
                    hi[m] = new_hi;
                    changed = true;
                }
                if new_lo > lo[m] {
                    lo[m] = new_lo;
                    changed = true;
                }
                if lo[m] > hi[m] {
                    if lo[m] > hi[m] + TOL {
                        return Err(DeriveError::Infeasible);
                    }
                    hi[m] = lo[m];
                }
            }
        }
        if !changed {
            break;
        }
    }

    Ok(Propagated { lo, hi, val })
}

/// Passes 0 and 2–4 of the module docs: intersects every candidate identity
/// for `f(query)` over the propagated variable intervals.  An empty
/// intersection witnesses infeasibility.
fn evaluate(
    problem: &BoundsProblem<'_>,
    state: &Propagated,
    query: AttrSet,
    config: &BoundsConfig,
) -> Result<Interval, DeriveError> {
    let n = problem.universe.len();
    let (lo, hi, val) = (&state.lo, &state.hi, &state.val);

    let sum_over = |sets: &mut dyn Iterator<Item = AttrSet>| -> Interval {
        let mut lo_sum = SumAcc::new();
        let mut hi_sum = SumAcc::new();
        for u in sets {
            let m = u.bits() as usize;
            lo_sum.add(lo[m]);
            hi_sum.add(hi[m]);
        }
        Interval::new(lo_sum.total(), hi_sum.total())
    };

    let mut acc = Interval::UNBOUNDED;
    let mut meet = |candidate: Interval| -> Result<(), DeriveError> {
        acc = acc
            .intersect(&candidate, TOL)
            .ok_or(DeriveError::Infeasible)?;
        Ok(())
    };

    // Pass 0: an exactly known query value.
    if let Some(point) = known_point(problem, query) {
        meet(point)?;
    }

    // Pass 2: direct evaluation of the query's alive row.
    meet(sum_over(&mut powerset::supersets_within(query, n)))?;

    // Pass 3: pairwise region split against every known value.
    for &(x, v) in problem.knowns {
        if x == query {
            continue;
        }
        if config.pairwise {
            let join = x.union(query);
            let gained =
                sum_over(&mut powerset::supersets_within(query, n).filter(|u| !join.is_subset(*u)));
            let lost =
                sum_over(&mut powerset::supersets_within(x, n).filter(|u| !join.is_subset(*u)));
            meet(Interval::new(
                v + gained.lo - lost.hi,
                v + gained.hi - lost.lo,
            ))?;
        }
        if problem.side.antitone {
            if x.is_proper_subset(query) {
                meet(Interval::new(f64::NEG_INFINITY, v))?;
            } else if query.is_proper_subset(x) {
                meet(Interval::new(v, f64::INFINITY))?;
            }
        }
    }

    // Pass 4: generalized inclusion–exclusion deduction.
    let complement = query.complement_in(n);
    'rules: for x in powerset::proper_subsets(query) {
        let missing = query.difference(x).len();
        // All 2^{|Y∖X|} − 1 proper members of [X, Y] must be known; skip
        // rules that cannot possibly satisfy that.
        if (problem.knowns.len() as u128) < (1u128 << missing) - 1 {
            continue;
        }
        let mut signed_knowns = 0.0f64;
        for j in powerset::interval(x, query) {
            if j == query {
                continue;
            }
            let v = val[j.bits() as usize];
            if v.is_nan() {
                continue 'rules;
            }
            let sign = if j.difference(x).len().is_multiple_of(2) {
                1.0
            } else {
                -1.0
            };
            signed_knowns += sign * v;
        }
        // Σ_{X ⊆ J ⊆ Y} (−1)^{|J∖X|} f(J) = Σ_{U ⊇ X, U∩Y = X} d(U): the
        // right-hand region is X ∪ V over V ⊆ S∖Y.
        let region = sum_over(&mut powerset::subsets(complement).map(|v_set| x.union(v_set)));
        let candidate = if missing.is_multiple_of(2) {
            // f(Y) = region − signed_knowns.
            region.shift(-signed_knowns)
        } else {
            // f(Y) = signed_knowns − region.
            region.reflect(signed_knowns)
        };
        meet(candidate)?;
    }

    Ok(acc)
}

/// Largest universe for which [`check_feasibility`] sweeps every query set.
/// Below this cap the verdict is *exact* with respect to the propagation
/// path: the check reports infeasibility iff some [`derive_propagated`]
/// query on the same problem would (the engine's `bound` verb included).
/// Past it the check is sound but one-sided — a reported contradiction is
/// real, but query-time detection may still catch more.
pub const FEASIBILITY_SWEEP_CAP: usize = 10;

/// Checks the knowns' joint satisfiability under the constraints and side
/// conditions *before* query time, without deriving any interval.
///
/// Three layers, cheapest first, each sound at any universe size:
///
/// 1. per-known relaxation checks (negative supports, values on
///    constraint-killed rows, antitone pair violations) — exactly the
///    contradictions [`derive_relaxed`] would report;
/// 2. the pass-1 interval-propagation fixpoint over the known-value
///    equations, when the universe and budget admit the dense tables;
/// 3. below [`FEASIBILITY_SWEEP_CAP`], a full query sweep evaluating every
///    subset against the propagated state, making the verdict coincide
///    exactly with "some `bound` query would report infeasible".
///
/// # Errors
/// [`DeriveError::Infeasible`] when no set function consistent with the
/// problem exists (as far as the layers above can tell).
pub fn check_feasibility(
    problem: &BoundsProblem<'_>,
    config: &BoundsConfig,
) -> Result<(), DeriveError> {
    for &(x, v) in problem.knowns {
        if problem.side.nonnegative_density && v < -TOL {
            return Err(DeriveError::Infeasible);
        }
        if v.abs() > TOL
            && problem
                .constraints
                .iter()
                .any(|c| c.rhs.is_empty() && c.lhs.is_subset(x))
        {
            return Err(DeriveError::Infeasible);
        }
        if problem.side.antitone || problem.side.nonnegative_density {
            for &(y, w) in problem.knowns {
                if x.is_proper_subset(y) && w > v + TOL {
                    return Err(DeriveError::Infeasible);
                }
            }
        }
    }
    let n = problem.universe.len();
    let cost = propagation_cost_bound(
        problem.universe,
        problem.constraints.len(),
        problem.knowns.len(),
        problem.universe.full_set(),
        config,
    );
    if !fits_budget(cost, config.budget_ops) {
        return Ok(());
    }
    let state = propagate(problem, config)?;
    if n <= FEASIBILITY_SWEEP_CAP {
        for mask in 0..(1u64 << n) {
            evaluate(problem, &state, AttrSet::from_bits(mask), config)?;
        }
    }
    Ok(())
}

/// The enumeration-free sound relaxation: exact knowns, containment
/// (monotonicity) rules under the antitone/support side conditions, the
/// nonnegativity floor, and zero pinning by empty-family constraints
/// (`X' → ∅` with `X' ⊆ Y` kills the whole row `[Y, S]`).
pub fn derive_relaxed(
    problem: &BoundsProblem<'_>,
    query: AttrSet,
) -> Result<DerivedBound, DeriveError> {
    let mut acc = Interval::UNBOUNDED;
    let mut meet = |candidate: Interval| -> Result<(), DeriveError> {
        acc = acc
            .intersect(&candidate, TOL)
            .ok_or(DeriveError::Infeasible)?;
        Ok(())
    };

    if problem.side.nonnegative_density {
        meet(Interval::nonnegative())?;
    }
    if let Some(point) = known_point(problem, query) {
        meet(point)?;
    }
    if problem.side.antitone || problem.side.nonnegative_density {
        for &(x, v) in problem.knowns {
            if x.is_proper_subset(query) {
                meet(Interval::new(f64::NEG_INFINITY, v))?;
            } else if query.is_proper_subset(x) {
                meet(Interval::new(v, f64::INFINITY))?;
            }
        }
    }
    if problem
        .constraints
        .iter()
        .any(|c| c.rhs.is_empty() && c.lhs.is_subset(query))
    {
        meet(Interval::point(0.0))?;
    }

    Ok(DerivedBound {
        interval: acc,
        route: DeriveRoute::Relaxed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::SideConditions;
    use diffcon::DiffConstraint;
    use setlat::Universe;

    fn parse(u: &Universe, texts: &[&str]) -> Vec<DiffConstraint> {
        texts
            .iter()
            .map(|t| DiffConstraint::parse(t, u).unwrap())
            .collect()
    }

    fn knowns(u: &Universe, entries: &[(&str, f64)]) -> Vec<(AttrSet, f64)> {
        entries
            .iter()
            .map(|(s, v)| (u.parse_set(s).unwrap(), *v))
            .collect()
    }

    fn derive_support(
        u: &Universe,
        constraints: &[DiffConstraint],
        k: &[(AttrSet, f64)],
        query: &str,
    ) -> Result<DerivedBound, DeriveError> {
        let problem = BoundsProblem {
            universe: u,
            constraints,
            knowns: k,
            side: SideConditions::support(),
        };
        derive(
            &problem,
            u.parse_set(query).unwrap(),
            &BoundsConfig::default(),
        )
    }

    #[test]
    fn acceptance_example_constraint_pins_the_superset() {
        // After `assert A -> {B}` and `known A = 40`, `bound AB` must be
        // strictly tighter than the constraint-free interval — here exact.
        let u = Universe::of_size(4);
        let c = parse(&u, &["A -> {B}"]);
        let k = knowns(&u, &[("A", 40.0)]);
        let with = derive_support(&u, &c, &k, "AB").unwrap();
        assert_eq!(with.interval, Interval::point(40.0));
        assert_eq!(with.route, DeriveRoute::Propagation);
        let without = derive_support(&u, &[], &k, "AB").unwrap();
        assert_eq!(without.interval, Interval::new(0.0, 40.0));
        assert!(with.interval.width() < without.interval.width());
    }

    #[test]
    fn monotone_sandwich_without_constraints() {
        let u = Universe::of_size(3);
        let k = knowns(&u, &[("", 10.0), ("AB", 4.0)]);
        // ∅ ⊆ A ⊆ AB: the support interpretation sandwiches f(A).
        let b = derive_support(&u, &[], &k, "A").unwrap();
        assert_eq!(b.interval, Interval::new(4.0, 10.0));
    }

    #[test]
    fn inclusion_exclusion_lower_bound() {
        // The classical sandwich: σ(AB) ≥ σ(A) + σ(B) − σ(∅).
        let u = Universe::of_size(2);
        let k = knowns(&u, &[("", 7.0), ("A", 4.0), ("B", 5.0)]);
        let b = derive_support(&u, &[], &k, "AB").unwrap();
        assert_eq!(b.interval, Interval::new(2.0, 4.0));
    }

    #[test]
    fn empty_family_constraint_pins_zero() {
        let u = Universe::of_size(3);
        let c = parse(&u, &["A -> {}"]);
        let b = derive_support(&u, &c, &[], "AB").unwrap();
        assert_eq!(b.interval, Interval::point(0.0));
    }

    #[test]
    fn infeasible_knowns_are_detected() {
        let u = Universe::of_size(3);
        // Antitone violation under the support interpretation.
        let k = knowns(&u, &[("A", 3.0), ("AB", 8.0)]);
        assert_eq!(
            derive_support(&u, &[], &k, "ABC"),
            Err(DeriveError::Infeasible)
        );
        // Constraint A → {B} forces σ(A) = σ(AB); contradictory knowns.
        let c = parse(&u, &["A -> {B}"]);
        let k = knowns(&u, &[("A", 5.0), ("AB", 3.0)]);
        assert_eq!(
            derive_support(&u, &c, &k, "AC"),
            Err(DeriveError::Infeasible)
        );
    }

    #[test]
    fn no_side_conditions_leave_unknowns_unbounded() {
        let u = Universe::of_size(2);
        let k = knowns(&u, &[("A", 4.0)]);
        let problem = BoundsProblem {
            universe: &u,
            constraints: &[],
            knowns: &k,
            side: SideConditions::none(),
        };
        let b = derive(
            &problem,
            u.parse_set("AB").unwrap(),
            &BoundsConfig::default(),
        )
        .unwrap();
        assert_eq!(b.interval, Interval::UNBOUNDED);
        // …but full constraint + known coverage still pins exactly.
        let c = parse(&u, &["A -> {B}"]);
        let problem = BoundsProblem {
            universe: &u,
            constraints: &c,
            knowns: &k,
            side: SideConditions::none(),
        };
        let b = derive(
            &problem,
            u.parse_set("AB").unwrap(),
            &BoundsConfig::default(),
        )
        .unwrap();
        assert_eq!(b.interval, Interval::point(4.0));
    }

    #[test]
    fn relaxed_route_past_the_budget() {
        let u = Universe::of_size(24);
        let k = knowns(&u, &[("", 100.0), ("ABCD", 30.0)]);
        let b = derive_support(&u, &[], &k, "AB").unwrap();
        assert_eq!(b.route, DeriveRoute::Relaxed);
        // Monotone sandwich still applies: ABCD ⊇ AB ⊇ ∅.
        assert_eq!(b.interval, Interval::new(30.0, 100.0));
    }

    #[test]
    fn maximal_budget_still_respects_the_universe_cap() {
        // A budget of u128::MAX must not defeat the cost bound's sentinel
        // and panic inside the propagation path on an oversized universe.
        let u = Universe::of_size(24);
        let k = knowns(&u, &[("", 10.0)]);
        let problem = BoundsProblem {
            universe: &u,
            constraints: &[],
            knowns: &k,
            side: SideConditions::support(),
        };
        let config = BoundsConfig {
            budget_ops: u128::MAX,
            ..BoundsConfig::default()
        };
        let b = derive(&problem, u.parse_set("AB").unwrap(), &config).unwrap();
        assert_eq!(b.route, DeriveRoute::Relaxed);
    }

    #[test]
    fn relaxed_route_detects_direct_contradictions() {
        let u = Universe::of_size(24);
        let k = knowns(&u, &[("A", -5.0)]);
        assert_eq!(
            derive_support(&u, &[], &k, "A"),
            Err(DeriveError::Infeasible)
        );
    }

    #[test]
    fn feasibility_check_agrees_with_query_time_detection() {
        let u = Universe::of_size(3);
        let config = BoundsConfig::default();
        // Feasible: a consistent antitone chain.
        let k = knowns(&u, &[("", 10.0), ("A", 4.0), ("AB", 2.0)]);
        let problem = BoundsProblem {
            universe: &u,
            constraints: &[],
            knowns: &k,
            side: SideConditions::support(),
        };
        assert_eq!(check_feasibility(&problem, &config), Ok(()));
        // Infeasible without any query: antitone violation.
        let k = knowns(&u, &[("A", 3.0), ("AB", 8.0)]);
        let problem = BoundsProblem {
            universe: &u,
            constraints: &[],
            knowns: &k,
            side: SideConditions::support(),
        };
        assert_eq!(
            check_feasibility(&problem, &config),
            Err(DeriveError::Infeasible)
        );
        // Constraint-induced contradiction: A → {B} forces σ(A) = σ(AB).
        let c = parse(&u, &["A -> {B}"]);
        let k = knowns(&u, &[("A", 5.0), ("AB", 3.0)]);
        let problem = BoundsProblem {
            universe: &u,
            constraints: &c,
            knowns: &k,
            side: SideConditions::support(),
        };
        assert_eq!(
            check_feasibility(&problem, &config),
            Err(DeriveError::Infeasible)
        );
    }

    #[test]
    fn feasibility_check_stays_sound_past_the_budget() {
        let u = Universe::of_size(24);
        let config = BoundsConfig::default();
        // Past the universe cap only the relaxation-layer checks run: a
        // direct contradiction is still caught…
        let k = knowns(&u, &[("A", -5.0)]);
        let problem = BoundsProblem {
            universe: &u,
            constraints: &[],
            knowns: &k,
            side: SideConditions::support(),
        };
        assert_eq!(
            check_feasibility(&problem, &config),
            Err(DeriveError::Infeasible)
        );
        // …and a consistent sandwich passes.
        let k = knowns(&u, &[("", 100.0), ("ABCD", 30.0)]);
        let problem = BoundsProblem {
            universe: &u,
            constraints: &[],
            knowns: &k,
            side: SideConditions::support(),
        };
        assert_eq!(check_feasibility(&problem, &config), Ok(()));
    }

    #[test]
    fn feasibility_check_pins_constraint_killed_rows() {
        let u = Universe::of_size(3);
        let c = parse(&u, &["A -> {}"]);
        let k = knowns(&u, &[("AB", 4.0)]);
        let problem = BoundsProblem {
            universe: &u,
            constraints: &c,
            knowns: &k,
            side: SideConditions::support(),
        };
        assert_eq!(
            check_feasibility(&problem, &BoundsConfig::default()),
            Err(DeriveError::Infeasible)
        );
    }

    #[test]
    fn antitone_only_side_condition() {
        let u = Universe::of_size(3);
        let k = knowns(&u, &[("A", 4.0)]);
        let problem = BoundsProblem {
            universe: &u,
            constraints: &[],
            knowns: &k,
            side: SideConditions {
                nonnegative_density: false,
                antitone: true,
            },
        };
        let b = derive(
            &problem,
            u.parse_set("AB").unwrap(),
            &BoundsConfig::default(),
        )
        .unwrap();
        // No nonnegativity: only the antitone ceiling applies.
        assert_eq!(b.interval, Interval::new(f64::NEG_INFINITY, 4.0));
    }
}
