//! Socket-level serving properties: the `diffcond serve` TCP front-end must
//! be *transparent* — byte-identical reply streams to the in-process
//! [`Pipeline`] on the same scripts (up to the non-semantic telemetry
//! fields, exactly the PR-4 equivalence contract) — and *unwedgeable*:
//! malformed frames, oversized lines, random bytes, split writes, and early
//! disconnects must produce `err` replies or dropped connections, never a
//! panic, and the server must stay accept-ready throughout.

use diffcon_engine::client::{Client, ClientError};
use diffcon_engine::net::{NetConfig, NetServer, ShutdownHandle};
use diffcon_engine::{Pipeline, SessionConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};
use setlat::{AttrSet, Universe};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const UNIVERSE_N: usize = 4;

/// A generous failure deadline: a correct server answers in microseconds;
/// only a deadlocked one runs into this, and the test then fails loudly
/// with a timeout error instead of hanging CI.
const DEADLINE: Duration = Duration::from_secs(30);

/// Tiny caches so eviction churn is constant, as in the PR-4 suites.
fn tiny_config() -> SessionConfig {
    SessionConfig {
        answer_cache_capacity: 4,
        lattice_cache_capacity: 2,
        prop_cache_capacity: 2,
        bound_cache_capacity: 2,
        cache_shards: 2,
        ..SessionConfig::default()
    }
}

/// Binds a server on an ephemeral loopback port and runs its accept loop on
/// a background thread.  The thread ends when the handle shuts it down.
fn spawn_server(config: NetConfig) -> (SocketAddr, ShutdownHandle) {
    let server = NetServer::bind("127.0.0.1:0", config).expect("loopback bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    std::thread::spawn(move || server.run().expect("accept loop"));
    (addr, handle)
}

fn connect(addr: SocketAddr) -> Client {
    let mut client = Client::connect_timeout(&addr, DEADLINE).expect("connect");
    client.set_read_timeout(Some(DEADLINE)).expect("timeout");
    client
}

/// One quick health probe: a fresh connection must serve a full
/// request/response exchange (the accept-ready assertion of the fuzz
/// suite).
fn assert_accept_ready(addr: SocketAddr) {
    let mut probe = connect(addr);
    assert_eq!(
        probe.raw_request("universe 2").expect("health probe"),
        "ok universe n=2 attrs=A,B"
    );
    probe.quit().expect("health probe quit");
}

/// Strips the telemetry fields (`us=`, `cached=`, `route=`) that
/// legitimately differ between runs; `stats` lines reduce to their head.
/// Identical to the PR-4 pipeline-vs-serial normalization.
fn normalize(text: &str) -> String {
    if text.starts_with("stats") {
        return "stats".to_string();
    }
    text.split_whitespace()
        .filter(|t| !t.starts_with("us=") && !t.starts_with("cached=") && !t.starts_with("route="))
        .collect::<Vec<_>>()
        .join(" ")
}

/// The reply stream the in-process [`Pipeline`] produces on `lines`.
fn in_process_replies(lines: &[String], threads: usize) -> Vec<String> {
    let mut pipeline = Pipeline::new(tiny_config(), threads);
    let mut replies = Vec::new();
    for line in lines {
        let (released, quit) = pipeline.push_line(line);
        replies.extend(released.into_iter().filter(|r| !r.text.is_empty()));
        if quit {
            return replies.into_iter().map(|r| normalize(&r.text)).collect();
        }
    }
    replies.extend(pipeline.finish());
    replies
        .into_iter()
        .filter(|r| !r.text.is_empty())
        .map(|r| normalize(&r.text))
        .collect()
}

/// Drives `lines` over one TCP connection (pipelined) and returns the
/// normalized reply stream.
fn tcp_replies(addr: SocketAddr, lines: &[String]) -> Vec<String> {
    let mut client = connect(addr);
    let replies = client
        .run_script(lines.iter().map(String::as_str))
        .expect("script round trip");
    replies.iter().map(|r| normalize(r)).collect()
}

// ── Random-script generators (the PR-4 serving vocabulary) ──────────────

fn arb_constraint_text() -> impl Strategy<Value = String> {
    let u = Universe::of_size(UNIVERSE_N);
    (
        0u64..(1u64 << UNIVERSE_N),
        proptest::collection::vec(0u64..(1u64 << UNIVERSE_N), 0..3),
    )
        .prop_map(move |(lhs, members)| {
            let constraint = diffcon::DiffConstraint::new(
                AttrSet::from_bits(lhs),
                members.into_iter().map(AttrSet::from_bits).collect(),
            );
            diffcon_engine::protocol::format_wire(&constraint, &u)
        })
}

fn arb_set_text() -> impl Strategy<Value = String> {
    let u = Universe::of_size(UNIVERSE_N);
    (0u64..(1u64 << UNIVERSE_N)).prop_map(move |mask| {
        let set = AttrSet::from_bits(mask);
        if set.is_empty() {
            "{}".to_string()
        } else {
            u.format_set(set)
        }
    })
}

/// One random request line — queries, churn, session control, and a salting
/// of malformed lines (trailing garbage, unknown verbs), because error
/// replies must be position-faithful over the wire too.
fn arb_line() -> impl Strategy<Value = String> {
    prop_oneof![
        arb_constraint_text().prop_map(|c| format!("implies {c}")),
        arb_constraint_text().prop_map(|c| format!("implies {c}")),
        proptest::collection::vec(arb_constraint_text(), 1..4)
            .prop_map(|cs| format!("batch {}", cs.join(" ; "))),
        arb_set_text().prop_map(|s| format!("bound {s}")),
        arb_constraint_text().prop_map(|c| format!("witness {c}")),
        arb_constraint_text().prop_map(|c| format!("derive {c}")),
        arb_constraint_text().prop_map(|c| format!("assert {c}")),
        arb_constraint_text().prop_map(|c| format!("retract {c}")),
        (arb_set_text(), 0u32..50).prop_map(|(s, v)| format!("known {s} = {v}")),
        arb_set_text().prop_map(|s| format!("forget {s}")),
        proptest::collection::vec(arb_set_text(), 1..4)
            .prop_map(|bs| format!("load {}", bs.join(" ; "))),
        Just("session new".to_string()),
        (0u64..4).prop_map(|id| format!("session use {id}")),
        Just("session close".to_string()),
        Just("session list".to_string()),
        Just("universe 4".to_string()),
        Just("premises".to_string()),
        Just("knowns".to_string()),
        Just("dataset".to_string()),
        Just("stats".to_string()),
        Just("stats now".to_string()),
        Just("frobnicate".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random multi-request scripts replayed over TCP produce reply
    /// streams identical to the in-process pipeline on the same scripts,
    /// at 1–3 workers per connection.
    #[test]
    fn tcp_reply_stream_equals_in_process_pipeline(
        body in proptest::collection::vec(arb_line(), 1..30),
        threads in 1usize..4,
    ) {
        let mut lines = vec!["universe 4".to_string()];
        lines.extend(body);
        let (addr, handle) = spawn_server(NetConfig {
            session: tiny_config(),
            threads,
            ..NetConfig::default()
        });
        let want = in_process_replies(&lines, threads);
        let got = tcp_replies(addr, &lines);
        handle.shutdown();
        prop_assert_eq!(got, want, "TCP diverged at {} threads", threads);
    }
}

/// Concurrent connections are fully isolated namespaces: each replays its
/// own script and must match its own in-process oracle, interleaved with
/// the others on the same server.
#[test]
fn concurrent_connections_each_match_their_own_oracle() {
    let (addr, handle) = spawn_server(NetConfig {
        session: tiny_config(),
        threads: 2,
        ..NetConfig::default()
    });
    let scripts: Vec<Vec<String>> = (0..4)
        .map(|i| {
            let mut lines = vec!["universe 4".to_string()];
            for round in 0..12 {
                match (i + round) % 4 {
                    0 => lines.push("assert A->{B}".to_string()),
                    1 => lines.push("implies A->{B}".to_string()),
                    2 => lines.push(format!("known AB = {}", i * 10 + round)),
                    _ => lines.push("bound AB".to_string()),
                }
            }
            lines.push("premises".to_string());
            lines.push("knowns".to_string());
            lines
        })
        .collect();
    std::thread::scope(|scope| {
        for script in &scripts {
            scope.spawn(move || {
                let want = in_process_replies(script, 2);
                let got = tcp_replies(addr, script);
                assert_eq!(got, want, "connection diverged from its oracle");
            });
        }
    });
    handle.shutdown();
}

/// Sessions die with their connection: premises asserted on one connection
/// are invisible to a parallel connection and gone after reconnecting.
#[test]
fn namespaces_are_per_connection_and_close_on_disconnect() {
    let (addr, handle) = spawn_server(NetConfig::default());
    let mut a = connect(addr);
    a.request("universe 4").unwrap();
    a.request("assert A -> {B}").unwrap();
    assert_eq!(a.request("premises").unwrap(), "premises n=1 A->{B}");
    // A parallel connection starts from nothing.
    let mut b = connect(addr);
    assert!(matches!(
        b.request("premises"),
        Err(ClientError::Server(m)) if m.starts_with("no session")
    ));
    b.request("universe 4").unwrap();
    assert_eq!(b.request("premises").unwrap(), "premises n=0");
    drop(a);
    // Reconnecting does not resurrect the dropped namespace.
    let mut again = connect(addr);
    again.request("universe 4").unwrap();
    assert_eq!(again.request("premises").unwrap(), "premises n=0");
    handle.shutdown();
}

/// The malformed-frame fuzz: random bytes (UTF-8 or not), randomly split
/// writes with pauses, truncated lines, and early disconnects — the server
/// must never panic and must stay accept-ready after every abuse.
#[test]
fn malformed_frames_never_wedge_the_server() {
    let (addr, handle) = spawn_server(NetConfig {
        threads: 2,
        max_request_bytes: 256,
        ..NetConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(0xBADF00D);
    for round in 0..40 {
        let mut stream = TcpStream::connect(addr).expect("fuzz connect");
        stream.set_read_timeout(Some(DEADLINE)).unwrap();
        // Compose a random payload: a few frames of random bytes, some
        // newline-terminated, some not, some far over the line cap.
        let frames = rng.gen_range(1..5);
        let mut payload = Vec::new();
        for _ in 0..frames {
            let len = match rng.gen_range(0..4u32) {
                0 => rng.gen_range(0..8),
                1 => rng.gen_range(8..64),
                2 => rng.gen_range(200..400),
                _ => rng.gen_range(400..2000),
            };
            for _ in 0..len {
                // Mostly printable, salted with raw bytes (incl. invalid
                // UTF-8 lead bytes) and protocol-ish characters.
                let b = match rng.gen_range(0..6u32) {
                    0 => rng.gen_range(0x80..=0xff),
                    1 => b';',
                    2 => b'{',
                    _ => rng.gen_range(0x20..0x7f),
                };
                payload.push(b);
            }
            if rng.gen_range(0..4u32) != 0 {
                payload.push(b'\n');
            }
        }
        // Write it in random splits, sometimes pausing, sometimes
        // disconnecting mid-frame.
        let abort_at = if rng.gen_range(0..3u32) == 0 {
            rng.gen_range(0..payload.len().max(1))
        } else {
            payload.len()
        };
        let mut written = 0;
        while written < abort_at {
            let chunk = rng.gen_range(1..=(abort_at - written).min(97));
            if stream
                .write_all(&payload[written..written + chunk])
                .is_err()
            {
                break; // server already dropped us; that's allowed
            }
            written += chunk;
            if rng.gen_range(0..8u32) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        if rng.gen_range(0..2u32) == 0 {
            // Half the time, read whatever came back before hanging up.
            let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
            let mut sink = [0u8; 4096];
            let _ = stream.read(&mut sink);
        }
        drop(stream);
        // The serving loop must still be alive and correct.
        assert_accept_ready(addr);
        assert!(
            handle.active_connections() <= 40,
            "round {round}: connection slots are leaking"
        );
    }
    handle.shutdown();
}

/// Oversized and undecodable lines get `err` replies on the same
/// connection, which keeps serving correct answers afterwards.
#[test]
fn framing_violations_answer_err_and_keep_the_connection() {
    let (addr, handle) = spawn_server(NetConfig {
        max_request_bytes: 64,
        ..NetConfig::default()
    });
    let mut client = connect(addr);
    client.request("universe 4").unwrap();
    // Oversized: discarded with exact accounting, answered in order.
    let long = format!("implies {}", "A".repeat(200));
    let reply = client.raw_request(&long).unwrap();
    assert_eq!(
        reply,
        format!("err request line exceeds 64 bytes (got {})", long.len())
    );
    // Undecodable bytes: the raw socket write bypasses the typed client.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(DEADLINE)).unwrap();
    raw.write_all(b"universe 4\nimplies \xff\xfe\nstats\n")
        .unwrap();
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let mut lines = Vec::new();
    for _ in 0..3 {
        let mut line = String::new();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        lines.push(line.trim_end().to_string());
    }
    assert_eq!(lines[0], "ok universe n=4 attrs=A,B,C,D");
    assert!(
        lines[1].starts_with("err request is not valid UTF-8 (byte 0xff at position 9"),
        "got: {}",
        lines[1]
    );
    assert!(lines[2].starts_with("stats"), "got: {}", lines[2]);
    // The first connection also kept serving across all of the above.
    assert!(client
        .request("implies AB -> {B}")
        .unwrap()
        .starts_with("yes"));
    client.quit().unwrap();
    handle.shutdown();
}

/// Past the admission cap a connection gets one `err` line and a close;
/// slots free on disconnect and the listener itself never blocks.
#[test]
fn connection_cap_refuses_without_wedging() {
    let (addr, handle) = spawn_server(NetConfig {
        max_connections: 2,
        ..NetConfig::default()
    });
    let mut a = connect(addr);
    let mut b = connect(addr);
    a.request("universe 2").unwrap();
    b.request("universe 2").unwrap();
    // Third connection: refused with the capacity error, then closed.
    let mut refused_seen = false;
    for _ in 0..50 {
        let mut c = connect(addr);
        match c.raw_request("universe 2") {
            Ok(reply) if reply.starts_with("err server at connection capacity") => {
                refused_seen = true;
                break;
            }
            // The admission gauge is updated by the handler thread; a
            // just-accepted probe can sneak under the cap. Retry.
            Ok(_) | Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    assert!(refused_seen, "cap never refused a connection");
    assert!(handle.refused_connections() > 0);
    // Freeing a slot re-admits new connections.
    drop(a);
    for _ in 0..100 {
        let mut c = connect(addr);
        if let Ok(reply) = c.raw_request("universe 2") {
            if reply.starts_with("ok universe") {
                drop(b);
                handle.shutdown();
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("freed connection slot was never re-admitted");
}

/// A strict request/response client over a multi-threaded pipeline must
/// get every reply without pipelining anything — the idle-flush property.
/// (Without it, the wave-batching contract would withhold the reply and
/// this test would hit its read deadline.)
#[test]
fn strict_request_response_clients_never_wait_for_a_wave() {
    let (addr, handle) = spawn_server(NetConfig {
        threads: 3,
        ..NetConfig::default()
    });
    let mut client = connect(addr);
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    client.request("universe 4").unwrap();
    client.request("assert A -> {B}").unwrap();
    for _ in 0..20 {
        // Each query is deferred into a wave of size 1 and must be flushed
        // the moment the connection has nothing further buffered.
        assert!(client
            .request("implies A -> {B}")
            .unwrap()
            .starts_with("yes"));
        assert!(client
            .request("witness AB -> {C}")
            .unwrap()
            .starts_with("witness"));
        let interval = client.bound("AB").unwrap();
        assert_eq!(interval.lo, 0.0);
    }
    client.quit().unwrap();
    handle.shutdown();
}

/// `quit` ends exactly one connection — gracefully — and the server keeps
/// accepting; an abrupt disconnect mid-pipeline does the same.
#[test]
fn quit_and_disconnect_end_only_their_connection() {
    let (addr, handle) = spawn_server(NetConfig {
        threads: 2,
        ..NetConfig::default()
    });
    let mut stays = connect(addr);
    stays.request("universe 4").unwrap();
    // Graceful quit.
    let goes = connect(addr);
    goes.quit().unwrap();
    // Abrupt disconnect with queries still in flight.
    let mut rude = connect(addr);
    rude.send("universe 4").unwrap();
    for _ in 0..10 {
        rude.send("implies A -> {B}").unwrap();
    }
    drop(rude);
    // The surviving connection and fresh ones still serve.
    assert!(stays
        .request("implies AB -> {B}")
        .unwrap()
        .starts_with("yes"));
    assert_accept_ready(addr);
    stays.quit().unwrap();
    handle.shutdown();
}

/// Every protocol verb — including the discovery verbs and `help`/`reset` —
/// is reachable over the wire and answers exactly what the in-process
/// pipeline answers on the same deterministic all-verbs script.
#[test]
fn every_verb_is_served_over_tcp() {
    let lines: Vec<String> = [
        "help",
        "session list",
        "universe 4",
        "assert A->{B}",
        "assert B->{C}",
        "implies A->{C}",
        "witness C->{A}",
        "derive A->{C}",
        "batch A->{C} ; C->{A}",
        "known A = 40",
        "bound AB",
        "knowns",
        "forget A",
        "load AB ; ABC ; B ; C ; BC",
        "dataset",
        "mine 2 2",
        "adopt 2 2",
        "premises",
        "retract A->{B}",
        "session new",
        "universe 2",
        "session use 0",
        "session close 1",
        "reset",
        "stats",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let (addr, handle) = spawn_server(NetConfig {
        threads: 2,
        ..NetConfig::default()
    });
    let want = in_process_replies(&lines, 2);
    let got = tcp_replies(addr, &lines);
    assert_eq!(got, want, "a verb answered differently over TCP");
    // …and `quit`, the one verb a pipelined script can't carry mid-stream.
    let mut client = connect(addr);
    client.request("universe 2").unwrap();
    client.quit().unwrap();
    handle.shutdown();
}

// ── Binary framing ──────────────────────────────────────────────────────

/// Like [`tcp_replies`] but over the negotiated binary framing.
fn tcp_replies_binary(addr: SocketAddr, lines: &[String]) -> Vec<String> {
    let mut client = Client::connect_binary_timeout(&addr, DEADLINE).expect("binary connect");
    client.set_read_timeout(Some(DEADLINE)).expect("timeout");
    assert!(client.is_binary());
    let replies = client
        .run_script(lines.iter().map(String::as_str))
        .expect("binary script round trip");
    replies.iter().map(|r| normalize(r)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The binary framing is semantically transparent: random multi-verb
    /// scripts replayed over a negotiated binary connection produce reply
    /// streams identical to the in-process pipeline — the same contract
    /// the text framing is held to above.
    #[test]
    fn binary_reply_stream_equals_in_process_pipeline(
        body in proptest::collection::vec(arb_line(), 1..30),
        threads in 1usize..4,
    ) {
        let mut lines = vec!["universe 4".to_string()];
        lines.extend(body);
        let (addr, handle) = spawn_server(NetConfig {
            session: tiny_config(),
            threads,
            binary: true,
            ..NetConfig::default()
        });
        let want = in_process_replies(&lines, threads);
        let got = tcp_replies_binary(addr, &lines);
        handle.shutdown();
        prop_assert_eq!(got, want, "binary framing diverged at {} threads", threads);
    }

    /// The fixed-width mask frames (`implies`/`assert`/`bound`) answer
    /// exactly what the equivalent text lines answer: both go through
    /// `Family::from_sets`, so the wire encoding cannot change semantics.
    #[test]
    fn binary_mask_frames_equal_their_text_lines(
        premises in proptest::collection::vec(
            (0u64..16, proptest::collection::vec(0u64..16, 0..3)), 0..5),
        goals in proptest::collection::vec(
            (0u64..16, proptest::collection::vec(0u64..16, 0..3)), 1..6),
        bounds in proptest::collection::vec(0u64..16, 1..4),
    ) {
        let u = Universe::of_size(UNIVERSE_N);
        let wire = |lhs: u64, rhs: &[u64]| {
            let constraint = diffcon::DiffConstraint::new(
                AttrSet::from_bits(lhs),
                rhs.iter().copied().map(AttrSet::from_bits).collect(),
            );
            diffcon_engine::protocol::format_wire(&constraint, &u)
        };
        let set_text = |mask: u64| {
            let set = AttrSet::from_bits(mask);
            if set.is_empty() { "{}".to_string() } else { u.format_set(set) }
        };
        // Text oracle script mirroring the mask frames one-to-one.
        let mut lines = vec!["universe 4".to_string()];
        for (lhs, rhs) in &premises {
            lines.push(format!("assert {}", wire(*lhs, rhs)));
        }
        for (lhs, rhs) in &goals {
            lines.push(format!("implies {}", wire(*lhs, rhs)));
        }
        for set in &bounds {
            lines.push(format!("bound {}", set_text(*set)));
        }
        let (addr, handle) = spawn_server(NetConfig {
            session: tiny_config(),
            binary: true,
            ..NetConfig::default()
        });
        let want = tcp_replies_binary(addr, &lines);
        // Mask-frame replay: strict request/response so replies stay
        // position-aligned with the text oracle.
        let mut client = Client::connect_binary_timeout(&addr, DEADLINE).expect("binary connect");
        client.set_read_timeout(Some(DEADLINE)).expect("timeout");
        let mut got = Vec::new();
        client.send("universe 4").expect("send");
        got.push(client.recv().expect("recv"));
        for (lhs, rhs) in &premises {
            client.send_assert_mask(*lhs, rhs).expect("assert mask");
            got.push(client.recv().expect("recv"));
        }
        for (lhs, rhs) in &goals {
            client.send_implies_mask(*lhs, rhs).expect("implies mask");
            got.push(client.recv().expect("recv"));
        }
        for set in &bounds {
            client.send_bound_mask(*set).expect("bound mask");
            got.push(client.recv().expect("recv"));
        }
        let got: Vec<String> = got.iter().map(|r| normalize(r)).collect();
        handle.shutdown();
        prop_assert_eq!(got, want, "mask frames diverged from text lines");
    }
}

/// Negotiation is per connection: on a `--binary` server, text clients are
/// served untouched alongside binary ones, and a binary handshake against a
/// text-only server fails fast with the server's `err` line instead of
/// hanging.
#[test]
fn binary_negotiation_is_per_connection_and_fails_fast() {
    let (addr, handle) = spawn_server(NetConfig {
        binary: true,
        ..NetConfig::default()
    });
    let mut text = connect(addr);
    let mut binary = Client::connect_binary_timeout(&addr, DEADLINE).expect("binary connect");
    binary.set_read_timeout(Some(DEADLINE)).unwrap();
    assert!(!text.is_binary());
    assert!(binary.is_binary());
    assert_eq!(
        text.raw_request("universe 2").unwrap(),
        "ok universe n=2 attrs=A,B"
    );
    assert_eq!(
        binary.request("universe 2").unwrap(),
        "ok universe n=2 attrs=A,B"
    );
    text.quit().unwrap();
    binary.quit().unwrap();
    handle.shutdown();
    // Against a text-only server the magic parses as a malformed line and
    // the client surfaces the err reply as a protocol error.
    let (addr, handle) = spawn_server(NetConfig::default());
    match Client::connect_binary_timeout(&addr, DEADLINE) {
        Err(ClientError::Protocol(m)) => {
            assert!(m.contains("did not acknowledge binary framing"), "got: {m}");
        }
        other => panic!("handshake against text server: {other:?}"),
    }
    assert_accept_ready(addr);
    handle.shutdown();
}

/// Malformed binary frames: truncated length prefixes, oversize length and
/// member-count declarations, unknown tags, and mid-frame disconnects.
/// Fatal violations answer one `err` frame and close; truncation just drops
/// the connection; the server stays accept-ready through all of it.
#[test]
fn malformed_binary_frames_never_wedge_the_server() {
    use diffcon_engine::protocol::binary;
    let (addr, handle) = spawn_server(NetConfig {
        max_request_bytes: 256,
        binary: true,
        ..NetConfig::default()
    });
    let shake = || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(DEADLINE)).unwrap();
        stream.write_all(&binary::MAGIC).unwrap();
        let mut ack = [0u8; binary::ACK.len()];
        stream.read_exact(&mut ack).expect("ack");
        assert_eq!(ack, binary::ACK);
        stream
    };
    let expect_err_then_close = |mut stream: TcpStream, what: &str| {
        // One err reply frame (tag 0x00), then EOF.
        let mut header = [0u8; 5];
        stream
            .read_exact(&mut header)
            .unwrap_or_else(|e| panic!("{what}: no reply: {e}"));
        assert_eq!(header[0], 0x00, "{what}: reply tag");
        let len = u32::from_le_bytes(header[1..5].try_into().unwrap()) as usize;
        let mut payload = vec![0u8; len];
        stream.read_exact(&mut payload).expect(what);
        let text = std::str::from_utf8(&payload).expect(what);
        assert!(text.starts_with("err "), "{what}: got `{text}`");
        let mut sink = [0u8; 16];
        assert_eq!(stream.read(&mut sink).expect(what), 0, "{what}: not closed");
    };
    // Unknown tag.
    let mut stream = shake();
    stream.write_all(&[0x7f, 1, 2, 3]).unwrap();
    expect_err_then_close(stream, "unknown tag");
    // Oversize line-length declaration.
    let mut stream = shake();
    stream.write_all(&[0x00]).unwrap();
    stream.write_all(&(1_000_000u32).to_le_bytes()).unwrap();
    expect_err_then_close(stream, "oversize length");
    // Oversize member-count declaration on an implies frame.
    let mut stream = shake();
    stream.write_all(&[0x01]).unwrap();
    stream.write_all(&7u64.to_le_bytes()).unwrap();
    stream
        .write_all(&(binary::MAX_MEMBERS as u16 + 1).to_le_bytes())
        .unwrap();
    expect_err_then_close(stream, "oversize members");
    // Truncated length prefix, then disconnect: no reply owed, no wedge.
    let stream = shake();
    (&stream).write_all(&[0x00, 0x10]).unwrap();
    drop(stream);
    assert_accept_ready(addr);
    // Mid-frame disconnect: declared 64 payload bytes, sent 10.
    let mut stream = shake();
    stream.write_all(&[0x00]).unwrap();
    stream.write_all(&64u32.to_le_bytes()).unwrap();
    stream.write_all(b"implies A ").unwrap();
    drop(stream);
    assert_accept_ready(addr);
    // Random garbage after a valid handshake, split at random boundaries.
    let mut rng = StdRng::seed_from_u64(0xB1FA55);
    for _ in 0..25 {
        let mut stream = shake();
        let len = rng.gen_range(1..400);
        let payload: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
        let mut written = 0;
        while written < payload.len() {
            let chunk = rng.gen_range(1..=(payload.len() - written).min(61));
            if stream
                .write_all(&payload[written..written + chunk])
                .is_err()
            {
                break; // already refused: allowed
            }
            written += chunk;
        }
        let _ = stream.set_read_timeout(Some(Duration::from_millis(10)));
        let mut sink = [0u8; 4096];
        let _ = stream.read(&mut sink);
        drop(stream);
        assert_accept_ready(addr);
    }
    handle.shutdown();
}

// ── Reactor behaviour ───────────────────────────────────────────────────

/// The eager idle flush, pinned: a lone strict client's round trips all
/// complete promptly because the reactor flushes pending waves the moment
/// its ready-set drains — observable as the `idle_flushes` counter
/// advancing at least once per strict round trip.
#[test]
fn strict_round_trips_ride_the_eager_idle_flush() {
    let (addr, handle) = spawn_server(NetConfig {
        threads: 2,
        ..NetConfig::default()
    });
    let metrics = diffcon_engine::EngineMetrics::global();
    let before = metrics.idle_flushes.get();
    let mut client = connect(addr);
    client.request("universe 4").unwrap();
    client.request("assert A -> {B}").unwrap();
    let rounds = 50;
    let started = std::time::Instant::now();
    for _ in 0..rounds {
        assert!(client
            .request("implies A -> {B}")
            .unwrap()
            .starts_with("yes"));
    }
    let elapsed = started.elapsed();
    // Each deferred query became a wave of one, flushed at burst end; a
    // server that waited for a full wave (or a flush tick) would blow far
    // past this generous budget.
    assert!(
        elapsed < Duration::from_millis(50 * rounds),
        "{rounds} strict round trips took {elapsed:?}"
    );
    let idle_flushes = metrics.idle_flushes.get() - before;
    assert!(
        idle_flushes >= rounds,
        "only {idle_flushes} idle flushes over {rounds} strict round trips"
    );
    client.quit().unwrap();
    handle.shutdown();
}

/// The connection soak: thousands of idle connections held open on one
/// reactor, accept stays ready throughout, a query on a late connection
/// still answers promptly, and closing everything returns the slots.
/// Scaled by `DIFFCOND_SOAK_CONNS` (default 10000); run explicitly with
/// `cargo test -p diffcon-engine --test net_properties soak -- --ignored`.
#[test]
#[ignore = "10k-connection soak; run explicitly (DIFFCOND_SOAK_CONNS scales it)"]
fn soak_thousands_of_idle_connections_leave_accept_ready() {
    let target: usize = std::env::var("DIFFCOND_SOAK_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    // Client and server ends share this process's fd table: ~2 fds per
    // connection plus headroom.  Size down to what the limit actually
    // grants rather than failing on constrained machines.
    let granted = epoll::raise_nofile_limit(2 * target as u64 + 512).unwrap_or(1024);
    let conns = target.min(((granted.saturating_sub(512)) / 2) as usize);
    assert!(conns > 0, "no fd budget for a soak");
    let (addr, handle) = spawn_server(NetConfig {
        session: tiny_config(),
        max_connections: conns + 8,
        ..NetConfig::default()
    });
    let rss_before = resident_kib();
    let mut held = Vec::with_capacity(conns);
    for i in 0..conns {
        match TcpStream::connect(addr) {
            Ok(stream) => held.push(stream),
            Err(e) => panic!("connect {i}/{conns} failed: {e}"),
        }
        // Periodically prove accept never starves while the held set grows.
        if i % 2000 == 1999 {
            assert_accept_ready(addr);
        }
    }
    // Wait for the reactor to register the whole herd.
    for _ in 0..DEADLINE.as_millis() / 10 {
        if handle.active_connections() >= conns {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        handle.active_connections() >= conns,
        "only {} of {conns} connections registered",
        handle.active_connections()
    );
    // Accept-ready and query-ready with the full herd idle.
    assert_accept_ready(addr);
    let mut probe = Client::over(held.pop().unwrap()).expect("probe over held socket");
    probe.set_read_timeout(Some(DEADLINE)).unwrap();
    assert_eq!(
        probe.raw_request("universe 4").unwrap(),
        "ok universe n=4 attrs=A,B,C,D"
    );
    // Memory stays bounded: a generous 64 KiB per idle connection (each
    // holds an empty pipeline and empty buffers) plus fixed slack.
    let rss_after = resident_kib();
    if let (Some(before), Some(after)) = (rss_before, rss_after) {
        let budget = 64 * conns as u64 + 65_536;
        assert!(
            after.saturating_sub(before) < budget,
            "RSS grew {} KiB over {conns} idle connections (budget {budget} KiB)",
            after.saturating_sub(before)
        );
    }
    probe.quit().unwrap();
    drop(held);
    // Slots drain back to zero and the listener still serves.
    for _ in 0..DEADLINE.as_millis() / 10 {
        if handle.active_connections() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        handle.active_connections(),
        0,
        "connection slots leaked after close-all"
    );
    assert_accept_ready(addr);
    handle.shutdown();
}

/// `VmRSS` of this process in KiB, when the platform exposes it.
fn resident_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Scripts far larger than the socket buffers cannot deadlock the
/// write/read pair: `run_script` drains replies concurrently with the
/// burst write (~1.6 MB each way here, past any default loopback buffer).
#[test]
fn large_pipelined_scripts_do_not_deadlock() {
    let (addr, handle) = spawn_server(NetConfig {
        threads: 2,
        ..NetConfig::default()
    });
    let lines: Vec<String> = std::iter::once("universe 4".to_string())
        .chain((0..60_000).map(|_| "session list".to_string()))
        .collect();
    let mut client = connect(addr);
    let replies = client
        .run_script(lines.iter().map(String::as_str))
        .expect("large script");
    assert_eq!(replies.len(), 60_001);
    assert!(replies[1..].iter().all(|r| r.starts_with("sessions n=1")));
    client.quit().expect("graceful quit");
    handle.shutdown();
}
