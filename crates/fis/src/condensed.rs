//! The `FDFree` / `Bd⁻` condensed representation of Bykowski & Rigotti,
//! as discussed in Section 6.1.1 of the paper.
//!
//! `FDFree(B, κ)` is the collection of *frequent, disjunction-free* itemsets
//! (stored with their supports); `Bd⁻(B, κ)` is its negative border — the
//! minimal itemsets that are either infrequent or not disjunction-free (also
//! stored with enough information to apply their disjunctive rule).  Together
//! they determine the frequency status of **every** itemset and the exact
//! support of every frequent itemset, while typically being much smaller than
//! the full collection of frequent itemsets.
//!
//! Support reconstruction uses the inclusion–exclusion identity the paper
//! recalls: if `B(X') = B(X' ∪ {y₁}) ∪ B(X' ∪ {y₂})` then, for every
//! `X ⊇ X' ∪ {y₁, y₂}`,
//!
//! ```text
//! s_B(X) = s_B(X − {y₁}) + s_B(X − {y₂}) − s_B(X − {y₁, y₂}),
//! ```
//!
//! and when `y₁ = y₂` simply `s_B(X) = s_B(X − {y₁})`.

use crate::basket::BasketDb;
use crate::disjunctive::{is_disjunction_free, DisjunctiveConstraint};
use setlat::{powerset, AttrSet};
use std::collections::HashMap;

/// Why an itemset belongs to the representation's border `Bd⁻`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BorderReason {
    /// The itemset is infrequent (support below the threshold).
    Infrequent,
    /// The itemset is frequent but not disjunction-free; the payload is a
    /// witnessing rule `X' ⇒ y₁ ∨ y₂` (with `y₁ = y₂` allowed) that holds in
    /// the database and has its footprint inside the itemset.
    Disjunctive {
        /// The antecedent `X'` of the witnessing rule.
        base: AttrSet,
        /// First consequent item.
        y1: usize,
        /// Second consequent item (may equal `y1`).
        y2: usize,
    },
}

/// One element of the border `Bd⁻(B, κ)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BorderElement {
    /// The itemset itself.
    pub itemset: AttrSet,
    /// Its support in the database.
    pub support: usize,
    /// Why it is outside `FDFree`.
    pub reason: BorderReason,
}

/// The result of classifying an itemset from the condensed representation alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DerivedStatus {
    /// The itemset is frequent with the given (exactly derived) support.
    Frequent(usize),
    /// The itemset is infrequent.
    Infrequent,
}

/// The `FDFree` / `Bd⁻` condensed representation of a database at a threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CondensedRepresentation {
    /// The support threshold `κ`.
    pub kappa: usize,
    /// Frequent disjunction-free itemsets with their supports.
    pub fdfree: HashMap<AttrSet, usize>,
    /// The border `Bd⁻`: minimal itemsets outside `FDFree`.
    pub border: Vec<BorderElement>,
}

impl CondensedRepresentation {
    /// Builds the representation by exhaustive levelwise classification.
    ///
    /// Exponential in the universe size (as is the ground truth it represents);
    /// the experiments use universes of ≤ 16 items.
    pub fn build(db: &BasketDb, kappa: usize) -> Self {
        let n = db.universe_size();
        let mut fdfree: HashMap<AttrSet, usize> = HashMap::new();
        let mut border: Vec<BorderElement> = Vec::new();

        for mask in 0u64..(1u64 << n) {
            let x = AttrSet::from_bits(mask);
            // An itemset belongs to FDFree iff it is frequent and disjunction-free.
            // It belongs to the border iff it is *not* in FDFree but all of its
            // maximal proper subsets are.
            let support = db.support(x);
            let in_fdfree = support >= kappa && is_disjunction_free(db, x);
            if in_fdfree {
                fdfree.insert(x, support);
                continue;
            }
            let minimal = x.iter().all(|i| {
                let sub = x.without(i);
                db.support(sub) >= kappa && is_disjunction_free(db, sub)
            });
            if minimal {
                let reason = if support < kappa {
                    BorderReason::Infrequent
                } else {
                    let rule = find_witnessing_rule(db, x)
                        .expect("frequent non-disjunction-free set must admit a rule");
                    BorderReason::Disjunctive {
                        base: rule.0,
                        y1: rule.1,
                        y2: rule.2,
                    }
                };
                border.push(BorderElement {
                    itemset: x,
                    support,
                    reason,
                });
            }
        }
        border.sort_by_key(|e| (e.itemset.len(), e.itemset.bits()));
        CondensedRepresentation {
            kappa,
            fdfree,
            border,
        }
    }

    /// Total number of stored itemsets (`|FDFree| + |Bd⁻|`) — the representation
    /// size the experiments compare against the number of frequent itemsets.
    pub fn size(&self) -> usize {
        self.fdfree.len() + self.border.len()
    }

    /// Derives the frequency status (and, for frequent itemsets, the exact
    /// support) of an arbitrary itemset from the representation alone — no
    /// access to the database.
    pub fn derive(&self, x: AttrSet) -> DerivedStatus {
        let mut memo: HashMap<AttrSet, DerivedStatus> = HashMap::new();
        self.derive_memo(x, &mut memo)
    }

    fn derive_memo(&self, x: AttrSet, memo: &mut HashMap<AttrSet, DerivedStatus>) -> DerivedStatus {
        if let Some(&cached) = memo.get(&x) {
            return cached;
        }
        let status = self.derive_uncached(x, memo);
        memo.insert(x, status);
        status
    }

    fn derive_uncached(
        &self,
        x: AttrSet,
        memo: &mut HashMap<AttrSet, DerivedStatus>,
    ) -> DerivedStatus {
        if let Some(&support) = self.fdfree.get(&x) {
            return DerivedStatus::Frequent(support);
        }
        // Find a border element contained in x.
        let element = self
            .border
            .iter()
            .find(|e| e.itemset.is_subset(x))
            .expect("every itemset outside FDFree contains a border element");
        if x == element.itemset {
            return if element.support >= self.kappa {
                DerivedStatus::Frequent(element.support)
            } else {
                DerivedStatus::Infrequent
            };
        }
        match element.reason {
            BorderReason::Infrequent => DerivedStatus::Infrequent,
            BorderReason::Disjunctive { base: _, y1, y2 } => {
                // The rule lifts to x ⊇ element.itemset ⊇ base ∪ {y1,y2} by the
                // augmentation argument of Section 6.1.1.
                if y1 == y2 {
                    match self.derive_memo(x.without(y1), memo) {
                        DerivedStatus::Frequent(s) => self.clamp(s),
                        DerivedStatus::Infrequent => DerivedStatus::Infrequent,
                    }
                } else {
                    let a = self.derive_memo(x.without(y1), memo);
                    let b = self.derive_memo(x.without(y2), memo);
                    let c = self.derive_memo(x.without(y1).without(y2), memo);
                    match (a, b, c) {
                        (
                            DerivedStatus::Frequent(sa),
                            DerivedStatus::Frequent(sb),
                            DerivedStatus::Frequent(sc),
                        ) => {
                            let s = sa + sb - sc;
                            self.clamp(s)
                        }
                        // If any of the three subsets is infrequent then x, a
                        // superset of it, is infrequent too.
                        _ => DerivedStatus::Infrequent,
                    }
                }
            }
        }
    }

    fn clamp(&self, support: usize) -> DerivedStatus {
        if support >= self.kappa {
            DerivedStatus::Frequent(support)
        } else {
            DerivedStatus::Infrequent
        }
    }
}

/// Finds a rule `X' ⇒ y₁ ∨ y₂` (items possibly equal, both in `x − X'`)
/// satisfied by the database with footprint inside `x`, if one exists.
fn find_witnessing_rule(db: &BasketDb, x: AttrSet) -> Option<(AttrSet, usize, usize)> {
    for lhs in powerset::subsets(x) {
        let rest: Vec<usize> = x.difference(lhs).iter().collect();
        for (i, &y1) in rest.iter().enumerate() {
            for &y2 in &rest[i..] {
                if DisjunctiveConstraint::rule(lhs, y1, y2).satisfied_by(db) {
                    return Some((lhs, y1, y2));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlat::Universe;

    fn sample() -> (Universe, BasketDb) {
        let u = Universe::of_size(5);
        let db =
            BasketDb::parse(&u, "ABC\nABD\nAB\nACD\nBCD\nABCD\nAE\nBE\nABE\nC\nAB\nABC").unwrap();
        (u, db)
    }

    #[test]
    fn representation_is_sound_and_complete() {
        let (u, db) = sample();
        for kappa in [2usize, 3, 4] {
            let repr = CondensedRepresentation::build(&db, kappa);
            for x in u.all_subsets() {
                let truth = db.support(x);
                match repr.derive(x) {
                    DerivedStatus::Frequent(s) => {
                        assert!(truth >= kappa, "derived frequent but {x:?} is infrequent");
                        assert_eq!(s, truth, "wrong derived support for {x:?} at kappa={kappa}");
                    }
                    DerivedStatus::Infrequent => {
                        assert!(truth < kappa, "derived infrequent but {x:?} is frequent");
                    }
                }
            }
        }
    }

    #[test]
    fn representation_is_no_larger_than_frequent_sets_plus_border() {
        let (_u, db) = sample();
        let kappa = 3;
        let repr = CondensedRepresentation::build(&db, kappa);
        let frequent = crate::border::count_frequent(&db, kappa);
        let neg_border = crate::border::negative_border(&db, kappa).len();
        // FDFree ⊆ frequent sets; the border adds at most the classic negative
        // border plus the minimal disjunctive-but-frequent sets.
        assert!(repr.fdfree.len() <= frequent);
        assert!(repr.size() <= frequent + neg_border + repr.border.len());
    }

    #[test]
    fn fdfree_members_are_frequent_and_free() {
        let (_u, db) = sample();
        let repr = CondensedRepresentation::build(&db, 3);
        for (&x, &s) in &repr.fdfree {
            assert_eq!(s, db.support(x));
            assert!(s >= 3);
            assert!(is_disjunction_free(&db, x));
        }
    }

    #[test]
    fn border_members_are_minimal_and_outside() {
        let (_u, db) = sample();
        let kappa = 3;
        let repr = CondensedRepresentation::build(&db, kappa);
        for e in &repr.border {
            let outside = db.support(e.itemset) < kappa || !is_disjunction_free(&db, e.itemset);
            assert!(outside, "border element {:?} belongs to FDFree", e.itemset);
            for i in e.itemset.iter() {
                let sub = e.itemset.without(i);
                assert!(
                    db.support(sub) >= kappa && is_disjunction_free(&db, sub),
                    "border element {:?} is not minimal",
                    e.itemset
                );
            }
            // Stored support is correct, and disjunctive reasons carry valid rules.
            assert_eq!(e.support, db.support(e.itemset));
            if let BorderReason::Disjunctive { base, y1, y2 } = e.reason {
                assert!(DisjunctiveConstraint::rule(base, y1, y2).satisfied_by(&db));
                assert!(base
                    .union(AttrSet::singleton(y1))
                    .union(AttrSet::singleton(y2))
                    .is_subset(e.itemset));
            }
        }
    }

    #[test]
    fn condensed_is_smaller_on_redundant_data() {
        // A database with strong disjunctive structure: every basket containing A
        // contains B, so many supports are derivable and FDFree stays small.
        let u = Universe::of_size(5);
        let db = BasketDb::parse(
            &u,
            "AB\nABC\nABD\nABCD\nABE\nB\nBC\nBD\nC\nD\nE\nCD\nCE\nDE\nCDE\nBCD",
        )
        .unwrap();
        let kappa = 2;
        let repr = CondensedRepresentation::build(&db, kappa);
        let frequent = crate::border::count_frequent(&db, kappa);
        assert!(
            repr.fdfree.len() < frequent,
            "condensed representation should store fewer sets than all frequent ones \
             ({} vs {frequent})",
            repr.fdfree.len()
        );
        // And it still answers every query correctly.
        for x in u.all_subsets() {
            match repr.derive(x) {
                DerivedStatus::Frequent(s) => assert_eq!(s, db.support(x)),
                DerivedStatus::Infrequent => assert!(db.support(x) < kappa),
            }
        }
    }

    #[test]
    fn empty_database_representation() {
        let db = BasketDb::new(3);
        let repr = CondensedRepresentation::build(&db, 1);
        assert!(repr.fdfree.is_empty());
        assert_eq!(repr.border.len(), 1);
        assert_eq!(repr.derive(AttrSet::EMPTY), DerivedStatus::Infrequent);
    }
}
