//! # diffcon — Differential Constraints (Sayrafi & Van Gucht, PODS 2005)
//!
//! This crate is the paper's primary contribution made executable.  A
//! *differential constraint* `X → 𝒴` over a finite universe `S` is satisfied by
//! a set function `f : 2^S → ℝ` when the density function (Möbius inverse) of
//! `f` vanishes on the whole lattice decomposition `L(X, 𝒴)` (Definition 3.1).
//! The crate provides:
//!
//! * the constraint language itself ([`constraint`]) and a small text parser
//!   ([`parser`]);
//! * both satisfaction semantics — density-based and differential-based —
//!   together with their relationship ([`semantics`], Remark 3.6);
//! * the implication problem with three interchangeable decision procedures:
//!   the lattice-containment characterization of Theorem 3.5, a semantic
//!   procedure built from the counterexample functions of its proof, and a
//!   SAT-backed procedure through the propositional translation of Section 5
//!   ([`implication`], [`prop_bridge`]);
//! * the sound and complete inference system of Figure 1 with machine-checkable
//!   proof objects, a proof-producing completeness engine, and the derivable
//!   rules of Figure 2 as tactics ([`inference`], [`derived_rules`]);
//! * witness and atomic decompositions of constraints (Definition 4.4,
//!   [`decompose`]);
//! * density-decomposition helpers — which density variables a constraint set
//!   forces to zero, and what survives of each zeta row — the substrate of the
//!   `diffcon-bounds` interval-derivation engine ([`density`]);
//! * the bridges to frequent-itemset mining ([`fis_bridge`], Section 6) and to
//!   relational dependencies ([`rel_bridge`], Section 7);
//! * the polynomial-time fragment with single-member right-hand sides,
//!   equivalent to functional-dependency implication ([`fd_fragment`],
//!   Conclusion);
//! * a uniform, enumerable interface over all decision procedures for
//!   planners and engines ([`procedure`]);
//! * explicit counterexample construction — set functions, basket databases and
//!   relations — for non-implied constraints ([`counterexample`]);
//! * random constraint generators used by the experiments ([`random`]).
//!
//! ## Quick example
//!
//! ```
//! use diffcon::prelude::*;
//!
//! // Example 3.4 of the paper: {A → {B}, B → {C}} implies A → {C}.
//! let u = Universe::of_size(3);
//! let premises = vec![
//!     DiffConstraint::parse("A -> {B}", &u).unwrap(),
//!     DiffConstraint::parse("B -> {C}", &u).unwrap(),
//! ];
//! let goal = DiffConstraint::parse("A -> {C}", &u).unwrap();
//! assert!(implication::implies(&u, &premises, &goal));
//!
//! // …and the inference system can exhibit a machine-checked derivation.
//! let proof = inference::derive(&u, &premises, &goal).expect("implied, hence derivable");
//! assert!(proof.verify(&u, &premises).is_ok());
//! assert_eq!(proof.conclusion(), &goal);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraint;
pub mod counterexample;
pub mod decompose;
pub mod density;
pub mod derived_rules;
pub mod fd_fragment;
pub mod fis_bridge;
pub mod implication;
pub mod inference;
pub mod parser;
pub mod procedure;
pub mod prop_bridge;
pub mod random;
pub mod rel_bridge;
pub mod semantics;

pub use constraint::DiffConstraint;
pub use inference::{Derivation, Rule};

/// Convenience re-exports for downstream users and examples.
pub mod prelude {
    pub use crate::constraint::DiffConstraint;
    pub use crate::implication;
    pub use crate::inference;
    pub use crate::semantics;
    pub use setlat::{AttrSet, Family, SetFunction, Universe};
}
