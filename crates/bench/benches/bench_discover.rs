//! E13 — constraint discovery: what mining costs and what adoption buys.
//!
//! Four questions over generated basket workloads:
//!
//! * **discovery throughput** — wall-clock for `miner::mine` as the dataset
//!   grows (the vertical store makes this scale with baskets/64 per cover
//!   probe);
//! * **vertical speedup** — the same levelwise Apriori run counting
//!   candidates through the vertical index versus the horizontal scan
//!   ([`fis::apriori::apriori`] vs [`fis::apriori::apriori_scan`]), and the
//!   border computations that reuse the index;
//! * **bound tightening** — total `bound`-interval width over unknown
//!   itemsets before and after `adopt` on a session with true singleton
//!   supports known;
//! * **NDI pruning** — support scans for the NDI representation with and
//!   without the adopted cover.
//!
//! The count tables and self-measured timings are written to
//! `BENCH_discover.json` at the repository root for trend tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diffcon_bench::{JsonReport, Table};
use diffcon_bounds::{mining, BoundsConfig};
use diffcon_discover::{miner, Dataset, MinerConfig};
use diffcon_engine::Session;
use fis::apriori::{apriori, apriori_scan};
use fis::basket::BasketDb;
use fis::generator::{self, QuestConfig};
use setlat::{AttrSet, Universe};
use std::time::Instant;

/// A correlated workload with planted implications: whenever item `i < 2`
/// occurs, item `i + 1` is added too, so `A → {B}` and `B → {C}` hold
/// exactly and the miner has real structure to find.
fn planted_db(seed: u64, num_items: usize, num_baskets: usize) -> BasketDb {
    let raw = generator::quest_like(
        seed,
        &QuestConfig {
            num_items,
            num_baskets,
            ..QuestConfig::default()
        },
    );
    BasketDb::from_baskets(
        num_items,
        raw.baskets().iter().map(|&b| {
            let mut b = b;
            for i in 0..2 {
                if b.contains(i) {
                    b.insert(i + 1);
                }
            }
            b
        }),
    )
}

fn bench_discovery_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("E13_mine_by_baskets");
    group.sample_size(10);
    for &baskets in &[100usize, 400, 1600] {
        let universe = Universe::of_size(10);
        let db = planted_db(23, 10, baskets);
        let dataset = Dataset::from_db(universe, db);
        group.bench_with_input(BenchmarkId::new("mine", baskets), &dataset, |b, ds| {
            b.iter(|| miner::mine(ds, &MinerConfig::default()).minimal.len())
        });
    }
    group.finish();
}

fn bench_apriori_vertical_vs_scan(c: &mut Criterion) {
    let db = planted_db(31, 14, 2000);
    let kappa = db.len() / 8;
    let mut group = c.benchmark_group("E13_apriori_counting");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("vertical", kappa), &db, |b, db| {
        b.iter(|| apriori(db, kappa).candidates_counted)
    });
    group.bench_with_input(BenchmarkId::new("scan", kappa), &db, |b, db| {
        b.iter(|| apriori_scan(db, kappa).candidates_counted)
    });
    group.finish();
}

/// Discovery throughput table plus self-measured timings for the JSON
/// report.
fn table_discovery_throughput(report: &mut JsonReport) -> Table {
    let mut table = Table::new(
        "E13: discovery throughput vs dataset size (10 items, budgets 2/2)",
        [
            "baskets",
            "minimal",
            "cover",
            "candidates",
            "ms",
            "baskets_per_s",
        ],
    );
    for &baskets in &[100usize, 400, 1600, 6400] {
        let universe = Universe::of_size(10);
        let db = planted_db(23, 10, baskets);
        let dataset = Dataset::from_db(universe, db);
        let start = Instant::now();
        let discovery = miner::mine(&dataset, &MinerConfig::default());
        let elapsed = start.elapsed();
        let ms = elapsed.as_secs_f64() * 1e3;
        table.push_row([
            baskets.to_string(),
            discovery.minimal.len().to_string(),
            discovery.cover.len().to_string(),
            discovery.stats.candidates.to_string(),
            format!("{ms:.2}"),
            format!("{:.0}", baskets as f64 / elapsed.as_secs_f64()),
        ]);
        if baskets == 1600 {
            report.push_metric("mine_ms_1600_baskets", ms);
        }
    }
    table
}

/// Apriori/border vertical-vs-scan speedup table (the satellite's "record
/// the speedup" requirement).
fn table_vertical_speedup(report: &mut JsonReport) -> Table {
    let mut table = Table::new(
        "E13: levelwise candidate counting, vertical index vs horizontal scan",
        [
            "items",
            "baskets",
            "kappa",
            "candidates",
            "scan_ms",
            "vertical_ms",
            "speedup",
        ],
    );
    for &(items, baskets) in &[(12usize, 1000usize), (14, 2000), (14, 8000)] {
        let db = planted_db(31, items, baskets);
        let kappa = baskets / 8;
        let start = Instant::now();
        let scan = apriori_scan(&db, kappa);
        let scan_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let vertical = apriori(&db, kappa);
        let vertical_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(scan, vertical, "the two counting paths must agree");
        let speedup = scan_ms / vertical_ms;
        table.push_row([
            items.to_string(),
            baskets.to_string(),
            kappa.to_string(),
            vertical.candidates_counted.to_string(),
            format!("{scan_ms:.2}"),
            format!("{vertical_ms:.2}"),
            format!("{speedup:.1}"),
        ]);
        if (items, baskets) == (14, 8000) {
            report.push_metric("apriori_vertical_speedup", speedup);
        }
    }
    table
}

/// Bound-width and NDI-scan wins from adopting discovered constraints.
fn table_adoption_wins(report: &mut JsonReport) -> Table {
    let mut table = Table::new(
        "E13: what adopting the discovered cover buys (12 items)",
        [
            "baskets",
            "cover",
            "width_before",
            "width_after",
            "exact_after",
            "ndi_scans_plain",
            "ndi_scans_adopted",
        ],
    );
    for &baskets in &[200usize, 800] {
        let n = 12;
        let universe = Universe::of_size(n);
        let db = planted_db(47, n, baskets);
        let mut session = Session::new(universe.clone());
        let records: Vec<String> = db
            .baskets()
            .iter()
            .map(|&b| fis::basket::format_record(&universe, b))
            .collect();
        session
            .load_records(records.iter().map(String::as_str))
            .expect("generated baskets re-parse");
        // Knowns: the empty set and every singleton, at their true supports.
        session.set_known(AttrSet::EMPTY, db.len() as f64);
        for i in 0..n {
            session.set_known(
                AttrSet::singleton(i),
                db.support(AttrSet::singleton(i)) as f64,
            );
        }
        // Queries: every adjacent pair (unknown itemsets).
        let queries: Vec<AttrSet> = (0..n - 1)
            .map(|i| AttrSet::from_indices([i, i + 1]))
            .collect();
        let width = |session: &mut Session| -> (f64, usize) {
            let mut total = 0.0;
            let mut exact = 0usize;
            for &q in &queries {
                let interval = session
                    .bound(q)
                    .expect("true supports are feasible")
                    .interval;
                total += interval.width();
                exact += interval.is_exact() as usize;
            }
            (total, exact)
        };
        let (width_before, _) = width(&mut session);
        let outcome = session
            .adopt_discovered(&MinerConfig::default())
            .expect("dataset is loaded");
        let (width_after, exact_after) = width(&mut session);
        assert!(
            width_after <= width_before,
            "adoption must never widen bounds"
        );
        let cover = outcome.discovery.cover;
        let kappa = baskets / 8;
        let (_, plain) =
            mining::ndi_under_constraints(&db, &[], kappa, &BoundsConfig::mining()).unwrap();
        let (_, adopted) =
            mining::ndi_under_constraints(&db, &cover, kappa, &BoundsConfig::mining()).unwrap();
        assert!(
            adopted.support_scans <= plain.support_scans,
            "adoption must never add NDI scans"
        );
        table.push_row([
            baskets.to_string(),
            cover.len().to_string(),
            format!("{width_before:.0}"),
            format!("{width_after:.0}"),
            exact_after.to_string(),
            plain.support_scans.to_string(),
            adopted.support_scans.to_string(),
        ]);
        if baskets == 800 {
            report.push_metric("bound_width_before", width_before);
            report.push_metric("bound_width_after", width_after);
            report.push_metric("ndi_scans_plain", plain.support_scans as f64);
            report.push_metric("ndi_scans_adopted", adopted.support_scans as f64);
            // The acceptance criterion's measured win: the planted A → {B},
            // B → {C} structure must show up as a strict improvement.
            assert!(
                width_after < width_before,
                "expected a strict bound-tightening win"
            );
            assert!(
                adopted.support_scans < plain.support_scans,
                "expected a strict NDI-scan win"
            );
        }
    }
    table
}

fn emit_json_report() {
    let mut report = JsonReport::new("discover");
    let throughput = table_discovery_throughput(&mut report);
    throughput.eprint();
    report.push_table(throughput);
    let speedup = table_vertical_speedup(&mut report);
    speedup.eprint();
    report.push_table(speedup);
    let wins = table_adoption_wins(&mut report);
    wins.eprint();
    report.push_table(wins);
    match report.write_to_repo_root("BENCH_discover.json") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_discover.json: {e}"),
    }
}

fn bench_report(_c: &mut Criterion) {
    emit_json_report();
}

criterion_group!(
    benches,
    bench_discovery_throughput,
    bench_apriori_vertical_vs_scan,
    bench_report
);
criterion_main!(benches);
