//! The Apriori algorithm (Agrawal & Srikant, VLDB 1994), referenced by the
//! paper as the canonical use of the monotonicity deduction rule: "if an
//! itemset is infrequent then so are all of its supersets".
//!
//! The implementation is the classic levelwise algorithm: generate candidates
//! of size `k+1` by joining frequent itemsets of size `k`, prune candidates
//! with an infrequent subset, then count the survivors against the database.
//! Alongside the frequent itemsets it records the *negative border* it
//! explores — the minimal infrequent itemsets — which is itself one of the
//! concise representations discussed in Section 6.1.1.

use crate::basket::BasketDb;
use crate::vertical::VerticalIndex;
use setlat::AttrSet;
use std::collections::{HashMap, HashSet};

/// The outcome of running Apriori on a database at a support threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AprioriResult {
    /// Absolute support threshold `κ` used for the run.
    pub kappa: usize,
    /// Every frequent itemset with its support.
    pub frequent: HashMap<AttrSet, usize>,
    /// The negative border: the minimal infrequent itemsets encountered (every
    /// candidate whose proper subsets were all frequent but which fell below
    /// `κ`), including infrequent singletons.
    pub negative_border: Vec<AttrSet>,
    /// Number of candidate itemsets whose support was counted against the
    /// database (the work measure the concise-representation literature tries
    /// to reduce).
    pub candidates_counted: usize,
    /// Number of levels (largest candidate size reached).
    pub levels: usize,
}

impl AprioriResult {
    /// The frequent itemsets sorted by (size, mask) — convenient for reporting.
    pub fn frequent_sorted(&self) -> Vec<(AttrSet, usize)> {
        let mut v: Vec<(AttrSet, usize)> = self.frequent.iter().map(|(&s, &c)| (s, c)).collect();
        v.sort_by_key(|(s, _)| (s.len(), s.bits()));
        v
    }

    /// Number of frequent itemsets (including the empty set when `|B| ≥ κ`).
    pub fn num_frequent(&self) -> usize {
        self.frequent.len()
    }

    /// Returns `true` iff `x` was found frequent.
    pub fn is_frequent(&self, x: AttrSet) -> bool {
        self.frequent.contains_key(&x)
    }

    /// The support of a frequent itemset, if it is frequent.
    pub fn support_of(&self, x: AttrSet) -> Option<usize> {
        self.frequent.get(&x).copied()
    }
}

/// Runs Apriori over `db` with absolute support threshold `kappa`.
///
/// The empty itemset is reported frequent (with support `|B|`) whenever
/// `|B| ≥ κ`, matching the convention `s_B(∅) = |B|` used by the paper.
///
/// Candidate supports are counted through a [`VerticalIndex`] built once up
/// front, so each count is `O(|X| · |B|/64)` column-intersection words
/// instead of an `O(|B|)` scan of the horizontal database
/// ([`apriori_scan`] keeps the scan-based path as a reference; the two are
/// equivalent, and `bench_discover` records the measured speedup).
pub fn apriori(db: &BasketDb, kappa: usize) -> AprioriResult {
    let index = VerticalIndex::build(db);
    apriori_with(db.universe_size(), db.len(), kappa, |x| index.support(x))
}

/// Reference levelwise run counting each candidate by scanning the
/// horizontal database ([`BasketDb::support`]); produces exactly the same
/// result as [`apriori`].
pub fn apriori_scan(db: &BasketDb, kappa: usize) -> AprioriResult {
    apriori_with(db.universe_size(), db.len(), kappa, |x| db.support(x))
}

/// The levelwise algorithm, generic over the candidate support counter.
fn apriori_with(
    n: usize,
    num_baskets: usize,
    kappa: usize,
    mut support: impl FnMut(AttrSet) -> usize,
) -> AprioriResult {
    let mut frequent: HashMap<AttrSet, usize> = HashMap::new();
    let mut negative_border: Vec<AttrSet> = Vec::new();
    let mut candidates_counted = 0usize;
    let mut levels = 0usize;

    // Level 0: the empty itemset.
    let empty_support = num_baskets;
    candidates_counted += 1;
    if empty_support >= kappa {
        frequent.insert(AttrSet::EMPTY, empty_support);
    } else {
        negative_border.push(AttrSet::EMPTY);
        return AprioriResult {
            kappa,
            frequent,
            negative_border,
            candidates_counted,
            levels,
        };
    }

    // Level 1: singletons.
    let mut current_level: Vec<AttrSet> = Vec::new();
    for i in 0..n {
        let candidate = AttrSet::singleton(i);
        candidates_counted += 1;
        let count = support(candidate);
        if count >= kappa {
            frequent.insert(candidate, count);
            current_level.push(candidate);
        } else {
            negative_border.push(candidate);
        }
    }
    if !current_level.is_empty() {
        levels = 1;
    }

    // Levels k ≥ 2.
    let mut k = 1usize;
    while !current_level.is_empty() {
        k += 1;
        let candidates = generate_candidates(&current_level, k);
        let mut next_level: Vec<AttrSet> = Vec::new();
        for candidate in candidates {
            // Prune: every (k−1)-subset must be frequent.
            if !all_proper_subsets_frequent(candidate, &frequent) {
                continue;
            }
            candidates_counted += 1;
            let count = support(candidate);
            if count >= kappa {
                frequent.insert(candidate, count);
                next_level.push(candidate);
            } else {
                negative_border.push(candidate);
            }
        }
        if !next_level.is_empty() {
            levels = k;
        }
        current_level = next_level;
    }

    negative_border.sort();
    negative_border.dedup();
    AprioriResult {
        kappa,
        frequent,
        negative_border,
        candidates_counted,
        levels,
    }
}

/// Classic candidate generation: join pairs of frequent `(k−1)`-itemsets whose
/// union has exactly `k` items.
fn generate_candidates(level: &[AttrSet], k: usize) -> Vec<AttrSet> {
    let mut out: HashSet<AttrSet> = HashSet::new();
    for (i, &a) in level.iter().enumerate() {
        for &b in &level[i + 1..] {
            let joined = a.union(b);
            if joined.len() == k {
                out.insert(joined);
            }
        }
    }
    let mut v: Vec<AttrSet> = out.into_iter().collect();
    v.sort();
    v
}

/// Checks that every maximal proper subset (one item removed) of `candidate`
/// is frequent.
fn all_proper_subsets_frequent(candidate: AttrSet, frequent: &HashMap<AttrSet, usize>) -> bool {
    candidate
        .iter()
        .all(|item| frequent.contains_key(&candidate.without(item)))
}

/// Reference implementation: enumerate every subset of the universe and count
/// its support directly.  Exponential; used to validate Apriori in tests and to
/// provide ground truth for small experiments.
pub fn frequent_itemsets_bruteforce(db: &BasketDb, kappa: usize) -> HashMap<AttrSet, usize> {
    let n = db.universe_size();
    assert!(n <= 24, "brute force over more than 24 items is infeasible");
    let mut out = HashMap::new();
    for mask in 0u64..(1u64 << n) {
        let x = AttrSet::from_bits(mask);
        let support = db.support(x);
        if support >= kappa {
            out.insert(x, support);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlat::Universe;

    fn sample_db() -> (Universe, BasketDb) {
        let u = Universe::of_size(5);
        let db = BasketDb::parse(&u, "ABC\nABD\nAB\nACD\nBCD\nABCD\nAE\nBE\nABE\nC").unwrap();
        (u, db)
    }

    #[test]
    fn matches_bruteforce_at_various_thresholds() {
        let (_u, db) = sample_db();
        for kappa in [1usize, 2, 3, 4, 5, 7, 11] {
            let result = apriori(&db, kappa);
            let brute = frequent_itemsets_bruteforce(&db, kappa);
            assert_eq!(result.frequent, brute, "mismatch at kappa = {kappa}");
        }
    }

    #[test]
    fn vertical_and_scan_paths_agree() {
        let (_u, db) = sample_db();
        for kappa in [0usize, 1, 2, 3, 5, 8, 11] {
            let vertical = apriori(&db, kappa);
            let scan = apriori_scan(&db, kappa);
            assert_eq!(vertical, scan, "paths diverge at kappa = {kappa}");
        }
    }

    #[test]
    fn negative_border_is_minimal_infrequent() {
        let (u, db) = sample_db();
        let kappa = 3;
        let result = apriori(&db, kappa);
        for &b in &result.negative_border {
            assert!(db.support(b) < kappa, "border element {b:?} is frequent");
            for item in b.iter() {
                let sub = b.without(item);
                assert!(
                    db.support(sub) >= kappa,
                    "border element {b:?} is not minimal (subset {sub:?} infrequent)"
                );
            }
        }
        // Completeness: every minimal infrequent itemset appears in the border.
        for x in u.all_subsets() {
            let infrequent = db.support(x) < kappa;
            let minimal = x.iter().all(|item| db.support(x.without(item)) >= kappa);
            if infrequent && minimal {
                assert!(
                    result.negative_border.contains(&x),
                    "minimal infrequent {x:?} missing from the border"
                );
            }
        }
    }

    #[test]
    fn threshold_zero_makes_everything_frequent() {
        let (u, db) = sample_db();
        let result = apriori(&db, 0);
        // Every subset of the items that occur is frequent; in fact every subset
        // of S has support ≥ 0.
        assert_eq!(result.frequent.len(), 1 << u.len());
        assert!(result.negative_border.is_empty());
    }

    #[test]
    fn threshold_above_db_size_only_empty_border() {
        let (_u, db) = sample_db();
        let result = apriori(&db, db.len() + 1);
        assert!(result.frequent.is_empty());
        assert_eq!(result.negative_border, vec![AttrSet::EMPTY]);
    }

    #[test]
    fn supports_are_correct() {
        let (u, db) = sample_db();
        let result = apriori(&db, 2);
        for (&x, &support) in &result.frequent {
            assert_eq!(support, db.support(x));
        }
        assert_eq!(result.support_of(u.parse_set("AB").unwrap()), Some(5));
        assert_eq!(result.support_of(u.parse_set("ABCDE").unwrap()), None);
    }

    #[test]
    fn candidate_counting_is_bounded_by_powerset() {
        let (u, db) = sample_db();
        let result = apriori(&db, 2);
        assert!(result.candidates_counted <= 1 << u.len());
        assert!(result.candidates_counted >= result.num_frequent());
    }

    #[test]
    fn empty_database() {
        let db = BasketDb::new(3);
        let result = apriori(&db, 1);
        assert!(result.frequent.is_empty());
        assert_eq!(result.negative_border, vec![AttrSet::EMPTY]);
        let result0 = apriori(&db, 0);
        assert_eq!(result0.frequent.len(), 8);
    }

    #[test]
    fn monotonicity_of_result() {
        // Every subset of a frequent itemset is frequent.
        let (_u, db) = sample_db();
        let result = apriori(&db, 3);
        for &x in result.frequent.keys() {
            for item in x.iter() {
                assert!(result.is_frequent(x.without(item)));
            }
        }
    }
}
