//! Named attribute universes.
//!
//! The paper works over a fixed finite set `S` of attributes / items /
//! propositional variables.  A [`Universe`] gives each element of `S` a name
//! (e.g. `"A"`, `"B"`, …) and a stable index, and provides parsing and
//! formatting helpers so that sets can be written in the paper's compact
//! notation (`ACD` for `{A, C, D}`).

use crate::attrset::AttrSet;
use std::collections::HashMap;
use std::fmt;

/// Errors produced when constructing or querying a [`Universe`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UniverseError {
    /// The universe would exceed [`crate::MAX_UNIVERSE`] attributes.
    TooLarge {
        /// Requested number of attributes.
        requested: usize,
    },
    /// Two attributes share the same name.
    DuplicateName(String),
    /// An attribute name was not found in the universe.
    UnknownAttribute(String),
}

impl fmt::Display for UniverseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UniverseError::TooLarge { requested } => write!(
                f,
                "universe of {requested} attributes exceeds the maximum of {}",
                crate::MAX_UNIVERSE
            ),
            UniverseError::DuplicateName(name) => {
                write!(f, "duplicate attribute name {name:?}")
            }
            UniverseError::UnknownAttribute(name) => {
                write!(f, "unknown attribute {name:?}")
            }
        }
    }
}

impl std::error::Error for UniverseError {}

/// A finite, ordered, named attribute universe `S`.
///
/// Attribute indices are assigned in declaration order and are the bit
/// positions used by [`AttrSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Universe {
    names: Vec<String>,
    index: HashMap<String, usize>,
}

impl Universe {
    /// Creates a universe from a list of attribute names.
    ///
    /// # Errors
    /// Returns [`UniverseError::TooLarge`] if more than
    /// [`crate::MAX_UNIVERSE`] names are given, and
    /// [`UniverseError::DuplicateName`] if a name appears twice.
    pub fn from_names<I, T>(names: I) -> Result<Self, UniverseError>
    where
        I: IntoIterator<Item = T>,
        T: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        if names.len() > crate::MAX_UNIVERSE {
            return Err(UniverseError::TooLarge {
                requested: names.len(),
            });
        }
        let mut index = HashMap::with_capacity(names.len());
        for (i, name) in names.iter().enumerate() {
            if index.insert(name.clone(), i).is_some() {
                return Err(UniverseError::DuplicateName(name.clone()));
            }
        }
        Ok(Universe { names, index })
    }

    /// Creates a universe of `n` attributes with synthetic names.
    ///
    /// For `n ≤ 26` the names are the uppercase letters `A`, `B`, …; beyond that
    /// they are `X0`, `X1`, ….
    ///
    /// # Panics
    /// Panics if `n > 64`.
    pub fn of_size(n: usize) -> Self {
        assert!(n <= crate::MAX_UNIVERSE, "universe size {n} exceeds 64");
        let names: Vec<String> = if n <= 26 {
            (0..n)
                .map(|i| ((b'A' + i as u8) as char).to_string())
                .collect()
        } else {
            (0..n).map(|i| format!("X{i}")).collect()
        };
        Universe::from_names(names).expect("synthetic names are unique")
    }

    /// The number of attributes `|S|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` iff the universe is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The full set `S` as an [`AttrSet`].
    #[inline]
    pub fn full_set(&self) -> AttrSet {
        AttrSet::full(self.len())
    }

    /// The name of attribute index `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// All attribute names in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Looks up the index of an attribute by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Builds an [`AttrSet`] from attribute names.
    ///
    /// # Errors
    /// Returns [`UniverseError::UnknownAttribute`] if a name is not in the universe.
    pub fn set<I, T>(&self, names: I) -> Result<AttrSet, UniverseError>
    where
        I: IntoIterator<Item = T>,
        T: AsRef<str>,
    {
        let mut s = AttrSet::EMPTY;
        for name in names {
            let name = name.as_ref();
            let i = self
                .index_of(name)
                .ok_or_else(|| UniverseError::UnknownAttribute(name.to_string()))?;
            s.insert(i);
        }
        Ok(s)
    }

    /// Parses the paper's compact notation for sets of single-character
    /// attributes: `"ACD"` means `{A, C, D}`, and `""` or `"{}"` means `∅`.
    ///
    /// Whitespace, commas and surrounding braces are ignored, so `"{A, C, D}"`
    /// also parses.  When the universe contains multi-character attribute names
    /// use [`Universe::set`] instead.
    ///
    /// # Errors
    /// Returns [`UniverseError::UnknownAttribute`] on any unknown character.
    pub fn parse_set(&self, text: &str) -> Result<AttrSet, UniverseError> {
        let mut s = AttrSet::EMPTY;
        for ch in text.chars() {
            if ch.is_whitespace() || ch == ',' || ch == '{' || ch == '}' {
                continue;
            }
            let name = ch.to_string();
            let i = self
                .index_of(&name)
                .ok_or(UniverseError::UnknownAttribute(name))?;
            s.insert(i);
        }
        Ok(s)
    }

    /// Formats a set in the paper's compact notation (`"ACD"`); the empty set is
    /// rendered as `"∅"`.
    pub fn format_set(&self, set: AttrSet) -> String {
        if set.is_empty() {
            return "∅".to_string();
        }
        let mut out = String::new();
        for i in set.iter() {
            out.push_str(self.name(i));
        }
        out
    }

    /// Formats a set in explicit brace notation (`"{A, C, D}"`).
    pub fn format_set_braced(&self, set: AttrSet) -> String {
        let items: Vec<&str> = set.iter().map(|i| self.name(i)).collect();
        format!("{{{}}}", items.join(", "))
    }

    /// Iterates over every subset of `S` (all `2^|S|` of them) in mask order.
    ///
    /// # Panics
    /// Panics if the universe has more than 32 attributes, for which exhaustive
    /// enumeration is not meaningful.
    pub fn all_subsets(&self) -> impl Iterator<Item = AttrSet> + '_ {
        assert!(
            self.len() <= 32,
            "refusing to enumerate all subsets of a universe with {} attributes",
            self.len()
        );
        (0u64..(1u64 << self.len())).map(AttrSet::from_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_names_and_lookup() {
        let u = Universe::from_names(["A", "B", "C"]).unwrap();
        assert_eq!(u.len(), 3);
        assert_eq!(u.index_of("B"), Some(1));
        assert_eq!(u.index_of("Z"), None);
        assert_eq!(u.name(2), "C");
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Universe::from_names(["A", "A"]).unwrap_err();
        assert_eq!(err, UniverseError::DuplicateName("A".to_string()));
    }

    #[test]
    fn too_large_rejected() {
        let names: Vec<String> = (0..65).map(|i| format!("X{i}")).collect();
        let err = Universe::from_names(names).unwrap_err();
        assert!(matches!(err, UniverseError::TooLarge { requested: 65 }));
    }

    #[test]
    fn of_size_letters_and_generic() {
        let u = Universe::of_size(4);
        assert_eq!(u.names(), &["A", "B", "C", "D"]);
        let u = Universe::of_size(30);
        assert_eq!(u.name(0), "X0");
        assert_eq!(u.name(29), "X29");
    }

    #[test]
    fn set_construction() {
        let u = Universe::of_size(4);
        let s = u.set(["A", "C"]).unwrap();
        assert_eq!(s, AttrSet::from_indices([0, 2]));
        assert!(u.set(["E"]).is_err());
    }

    #[test]
    fn parse_and_format_roundtrip() {
        let u = Universe::of_size(4);
        let s = u.parse_set("ACD").unwrap();
        assert_eq!(s, AttrSet::from_indices([0, 2, 3]));
        assert_eq!(u.format_set(s), "ACD");
        assert_eq!(u.format_set(AttrSet::EMPTY), "∅");
        assert_eq!(u.format_set_braced(s), "{A, C, D}");
        assert_eq!(u.parse_set("{A, C, D}").unwrap(), s);
        assert_eq!(u.parse_set("").unwrap(), AttrSet::EMPTY);
        assert!(u.parse_set("AZ").is_err());
    }

    #[test]
    fn all_subsets_enumeration() {
        let u = Universe::of_size(3);
        let subsets: Vec<AttrSet> = u.all_subsets().collect();
        assert_eq!(subsets.len(), 8);
        assert_eq!(subsets[0], AttrSet::EMPTY);
        assert_eq!(subsets[7], u.full_set());
    }

    #[test]
    fn full_set_matches_size() {
        let u = Universe::of_size(5);
        assert_eq!(u.full_set().len(), 5);
    }

    #[test]
    fn display_of_errors() {
        let e = UniverseError::UnknownAttribute("Q".into());
        assert!(e.to_string().contains("unknown attribute"));
    }
}
