//! The sound and complete inference system of Figure 1, with machine-checkable
//! proof objects and a proof-producing completeness engine.
//!
//! The four primitive rules are:
//!
//! ```text
//! Triviality     ───────────── (Y ∈ 𝒴, Y ⊆ X)
//!                   X → 𝒴
//!
//! Augmentation     X → 𝒴                 Addition      X → 𝒴
//!               ─────────────                        ─────────────
//!                X ∪ Z → 𝒴                            X → 𝒴 ∪ {Z}
//!
//! Elimination    X → 𝒴 ∪ {Z}    X ∪ Z → 𝒴
//!               ───────────────────────────
//!                           X → 𝒴
//! ```
//!
//! A [`Derivation`] is an explicit proof tree over these rules (plus premise
//! leaves); [`Derivation::verify`] re-checks every side condition, so a
//! derivation is independent evidence of implication.  [`derive()`] implements
//! the *completeness* direction constructively (Theorem 4.8): whenever
//! `C ⊨ X → 𝒴` it produces a derivation of `X → 𝒴` from `C` using only the four
//! primitive rules, by recursing along the decomposition identity of
//! Proposition 2.8 (of which the elimination rule is the proof-theoretic
//! shadow).

use crate::constraint::DiffConstraint;
use crate::implication;
use setlat::{AttrSet, Family, Universe};
use std::collections::HashMap;
use std::fmt;

/// The primitive inference rules of Figure 1 (plus the premise leaf).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// A leaf referring to one of the premises ("given").
    Premise,
    /// Triviality: `X → 𝒴` with `Y ⊆ X` for some `Y ∈ 𝒴`.
    Triviality,
    /// Augmentation: from `X → 𝒴` infer `X ∪ Z → 𝒴`.
    Augmentation,
    /// Addition: from `X → 𝒴` infer `X → 𝒴 ∪ {Z}`.
    Addition,
    /// Elimination: from `X → 𝒴 ∪ {Z}` and `X ∪ Z → 𝒴` infer `X → 𝒴`.
    Elimination,
}

/// A proof tree over the Figure 1 rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Derivation {
    /// A premise of the derivation (`given` in the paper's Example 4.3).
    Premise {
        /// Index into the premise list the derivation is verified against.
        index: usize,
        /// The premise constraint itself.
        conclusion: DiffConstraint,
    },
    /// An application of the triviality rule.
    Triviality {
        /// The trivial constraint concluded.
        conclusion: DiffConstraint,
    },
    /// An application of the augmentation rule.
    Augmentation {
        /// Derivation of the hypothesis `X → 𝒴`.
        sub: Box<Derivation>,
        /// The set `Z` added to the left-hand side.
        added: AttrSet,
        /// The conclusion `X ∪ Z → 𝒴`.
        conclusion: DiffConstraint,
    },
    /// An application of the addition rule.
    Addition {
        /// Derivation of the hypothesis `X → 𝒴`.
        sub: Box<Derivation>,
        /// The member `Z` added to the right-hand side.
        member: AttrSet,
        /// The conclusion `X → 𝒴 ∪ {Z}`.
        conclusion: DiffConstraint,
    },
    /// An application of the elimination rule.
    Elimination {
        /// Derivation of the first hypothesis `X → 𝒴 ∪ {Z}`.
        with_member: Box<Derivation>,
        /// Derivation of the second hypothesis `X ∪ Z → 𝒴`.
        with_lhs: Box<Derivation>,
        /// The eliminated member `Z`.
        removed: AttrSet,
        /// The conclusion `X → 𝒴`.
        conclusion: DiffConstraint,
    },
}

/// Errors reported by [`Derivation::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Human-readable description of the broken side condition.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid derivation: {}", self.message)
    }
}

impl std::error::Error for VerifyError {}

fn verify_err<T>(message: impl Into<String>) -> Result<T, VerifyError> {
    Err(VerifyError {
        message: message.into(),
    })
}

impl Derivation {
    /// The constraint this derivation concludes.
    pub fn conclusion(&self) -> &DiffConstraint {
        match self {
            Derivation::Premise { conclusion, .. }
            | Derivation::Triviality { conclusion }
            | Derivation::Augmentation { conclusion, .. }
            | Derivation::Addition { conclusion, .. }
            | Derivation::Elimination { conclusion, .. } => conclusion,
        }
    }

    /// The rule applied at the root.
    pub fn rule(&self) -> Rule {
        match self {
            Derivation::Premise { .. } => Rule::Premise,
            Derivation::Triviality { .. } => Rule::Triviality,
            Derivation::Augmentation { .. } => Rule::Augmentation,
            Derivation::Addition { .. } => Rule::Addition,
            Derivation::Elimination { .. } => Rule::Elimination,
        }
    }

    /// Number of rule applications (nodes) in the proof tree.
    pub fn size(&self) -> usize {
        match self {
            Derivation::Premise { .. } | Derivation::Triviality { .. } => 1,
            Derivation::Augmentation { sub, .. } | Derivation::Addition { sub, .. } => {
                1 + sub.size()
            }
            Derivation::Elimination {
                with_member,
                with_lhs,
                ..
            } => 1 + with_member.size() + with_lhs.size(),
        }
    }

    /// Depth of the proof tree.
    pub fn depth(&self) -> usize {
        match self {
            Derivation::Premise { .. } | Derivation::Triviality { .. } => 1,
            Derivation::Augmentation { sub, .. } | Derivation::Addition { sub, .. } => {
                1 + sub.depth()
            }
            Derivation::Elimination {
                with_member,
                with_lhs,
                ..
            } => 1 + with_member.depth().max(with_lhs.depth()),
        }
    }

    /// Counts how many times each rule is used.
    pub fn rule_counts(&self) -> HashMap<Rule, usize> {
        let mut counts = HashMap::new();
        self.count_rules(&mut counts);
        counts
    }

    fn count_rules(&self, counts: &mut HashMap<Rule, usize>) {
        *counts.entry(self.rule()).or_insert(0) += 1;
        match self {
            Derivation::Premise { .. } | Derivation::Triviality { .. } => {}
            Derivation::Augmentation { sub, .. } | Derivation::Addition { sub, .. } => {
                sub.count_rules(counts)
            }
            Derivation::Elimination {
                with_member,
                with_lhs,
                ..
            } => {
                with_member.count_rules(counts);
                with_lhs.count_rules(counts);
            }
        }
    }

    /// Re-checks every side condition of the proof tree against the premise
    /// list.  A derivation that verifies is a sound certificate that the
    /// premises imply its conclusion (by Proposition 4.2).
    pub fn verify(
        &self,
        universe: &Universe,
        premises: &[DiffConstraint],
    ) -> Result<(), VerifyError> {
        match self {
            Derivation::Premise { index, conclusion } => match premises.get(*index) {
                Some(p) if p == conclusion => Ok(()),
                Some(p) => verify_err(format!(
                    "premise #{index} is {} but the leaf claims {}",
                    p.format(universe),
                    conclusion.format(universe)
                )),
                None => verify_err(format!("premise index {index} out of range")),
            },
            Derivation::Triviality { conclusion } => {
                if conclusion.is_trivial() {
                    Ok(())
                } else {
                    verify_err(format!(
                        "{} is not a trivial constraint",
                        conclusion.format(universe)
                    ))
                }
            }
            Derivation::Augmentation {
                sub,
                added,
                conclusion,
            } => {
                sub.verify(universe, premises)?;
                let hyp = sub.conclusion();
                if conclusion.rhs != hyp.rhs {
                    return verify_err("augmentation must not change the right-hand side");
                }
                if conclusion.lhs != hyp.lhs.union(*added) {
                    return verify_err("augmentation conclusion LHS must be X ∪ Z");
                }
                Ok(())
            }
            Derivation::Addition {
                sub,
                member,
                conclusion,
            } => {
                sub.verify(universe, premises)?;
                let hyp = sub.conclusion();
                if conclusion.lhs != hyp.lhs {
                    return verify_err("addition must not change the left-hand side");
                }
                if conclusion.rhs != hyp.rhs.with_member(*member) {
                    return verify_err("addition conclusion RHS must be 𝒴 ∪ {Z}");
                }
                Ok(())
            }
            Derivation::Elimination {
                with_member,
                with_lhs,
                removed,
                conclusion,
            } => {
                with_member.verify(universe, premises)?;
                with_lhs.verify(universe, premises)?;
                let first = with_member.conclusion();
                let second = with_lhs.conclusion();
                if first.lhs != conclusion.lhs {
                    return verify_err("elimination: first hypothesis must have LHS X");
                }
                if first.rhs != conclusion.rhs.with_member(*removed) {
                    return verify_err("elimination: first hypothesis must have RHS 𝒴 ∪ {Z}");
                }
                if second.lhs != conclusion.lhs.union(*removed) {
                    return verify_err("elimination: second hypothesis must have LHS X ∪ Z");
                }
                if second.rhs != conclusion.rhs {
                    return verify_err("elimination: second hypothesis must have RHS 𝒴");
                }
                Ok(())
            }
        }
    }

    /// Renders the derivation as a numbered list of steps (in the style of the
    /// paper's Example 4.3).
    pub fn format(&self, universe: &Universe) -> String {
        let mut lines = Vec::new();
        self.format_steps(universe, &mut lines);
        lines
            .iter()
            .enumerate()
            .map(|(i, line)| format!("({}) {}", i + 1, line))
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn format_steps(&self, universe: &Universe, lines: &mut Vec<String>) -> usize {
        let line = match self {
            Derivation::Premise { index, conclusion } => {
                format!("{}  [given #{index}]", conclusion.format(universe))
            }
            Derivation::Triviality { conclusion } => {
                format!("{}  [triviality]", conclusion.format(universe))
            }
            Derivation::Augmentation {
                sub, conclusion, ..
            } => {
                let h = sub.format_steps(universe, lines);
                format!(
                    "{}  [augmentation on ({})]",
                    conclusion.format(universe),
                    h + 1
                )
            }
            Derivation::Addition {
                sub, conclusion, ..
            } => {
                let h = sub.format_steps(universe, lines);
                format!("{}  [addition on ({})]", conclusion.format(universe), h + 1)
            }
            Derivation::Elimination {
                with_member,
                with_lhs,
                conclusion,
                ..
            } => {
                let a = with_member.format_steps(universe, lines);
                let b = with_lhs.format_steps(universe, lines);
                format!(
                    "{}  [elimination on ({}) and ({})]",
                    conclusion.format(universe),
                    a + 1,
                    b + 1
                )
            }
        };
        lines.push(line);
        lines.len() - 1
    }
}

/// Builds a premise leaf (checking the index).
pub fn premise(premises: &[DiffConstraint], index: usize) -> Derivation {
    Derivation::Premise {
        index,
        conclusion: premises[index].clone(),
    }
}

/// Builds a triviality step.
///
/// # Errors
/// Fails if the constraint is not trivial.
pub fn triviality(conclusion: DiffConstraint) -> Result<Derivation, VerifyError> {
    if conclusion.is_trivial() {
        Ok(Derivation::Triviality { conclusion })
    } else {
        verify_err("triviality requires Y ⊆ X for some Y ∈ 𝒴")
    }
}

/// Builds an augmentation step `X → 𝒴 ⊢ X ∪ Z → 𝒴`.
pub fn augmentation(sub: Derivation, z: AttrSet) -> Derivation {
    let hyp = sub.conclusion().clone();
    Derivation::Augmentation {
        conclusion: DiffConstraint::new(hyp.lhs.union(z), hyp.rhs),
        sub: Box::new(sub),
        added: z,
    }
}

/// Builds an addition step `X → 𝒴 ⊢ X → 𝒴 ∪ {Z}`.
pub fn addition(sub: Derivation, z: AttrSet) -> Derivation {
    let hyp = sub.conclusion().clone();
    Derivation::Addition {
        conclusion: DiffConstraint::new(hyp.lhs, hyp.rhs.with_member(z)),
        sub: Box::new(sub),
        member: z,
    }
}

/// Builds an elimination step from derivations of `X → 𝒴 ∪ {Z}` and `X ∪ Z → 𝒴`.
///
/// # Errors
/// Fails if the two hypotheses do not have the required shapes.
pub fn elimination(
    with_member: Derivation,
    with_lhs: Derivation,
    z: AttrSet,
) -> Result<Derivation, VerifyError> {
    let first = with_member.conclusion().clone();
    let second = with_lhs.conclusion().clone();
    let conclusion = DiffConstraint::new(first.lhs, second.rhs.clone());
    if first.rhs != conclusion.rhs.with_member(z) {
        return verify_err("elimination: first hypothesis RHS must be 𝒴 ∪ {Z}");
    }
    if second.lhs != first.lhs.union(z) {
        return verify_err("elimination: second hypothesis LHS must be X ∪ Z");
    }
    Ok(Derivation::Elimination {
        with_member: Box::new(with_member),
        with_lhs: Box::new(with_lhs),
        removed: z,
        conclusion,
    })
}

/// Decides derivability and, when derivable, produces an explicit derivation of
/// `goal` from `premises` using only the Figure 1 rules.
///
/// By Theorem 4.8 (completeness) together with Proposition 4.2 (soundness),
/// this returns `Some(proof)` iff `premises ⊨ goal`.  The construction follows
/// the completeness proof: at each step the left-hand side of the subgoal only
/// grows, so the recursion terminates after at most `|S|` nested eliminations;
/// subproofs are memoized on their subgoal.
pub fn derive(
    universe: &Universe,
    premises: &[DiffConstraint],
    goal: &DiffConstraint,
) -> Option<Derivation> {
    if !implication::implies(universe, premises, goal) {
        return None;
    }
    let mut memo: HashMap<DiffConstraint, Derivation> = HashMap::new();
    Some(derive_implied(universe, premises, goal, &mut memo))
}

/// Convenience wrapper: `premises ⊢ goal` (equivalently, by soundness and
/// completeness, `premises ⊨ goal`).
pub fn derivable(universe: &Universe, premises: &[DiffConstraint], goal: &DiffConstraint) -> bool {
    derive(universe, premises, goal).is_some()
}

/// Internal: construct a derivation of `goal`, assuming `premises ⊨ goal`.
fn derive_implied(
    universe: &Universe,
    premises: &[DiffConstraint],
    goal: &DiffConstraint,
    memo: &mut HashMap<DiffConstraint, Derivation>,
) -> Derivation {
    if let Some(found) = memo.get(goal) {
        return found.clone();
    }
    let derivation = build(universe, premises, goal, memo);
    debug_assert_eq!(derivation.conclusion(), goal);
    memo.insert(goal.clone(), derivation.clone());
    derivation
}

fn build(
    universe: &Universe,
    premises: &[DiffConstraint],
    goal: &DiffConstraint,
    memo: &mut HashMap<DiffConstraint, Derivation>,
) -> Derivation {
    // Case 1: the goal is trivial.
    if goal.is_trivial() {
        return triviality(goal.clone()).expect("checked trivial");
    }

    // Case 2: the goal is nontrivial, so X itself belongs to L(X, 𝒴) ⊆ L(C) and
    // some premise's lattice contains X.  Prefer a premise that minimizes the
    // number of members we will need to eliminate afterwards.
    let (index, chosen) = premises
        .iter()
        .enumerate()
        .filter(|(_, p)| p.lattice_contains(goal.lhs))
        .min_by_key(|(_, p)| p.rhs.iter().filter(|&m| !goal.rhs.contains(m)).count())
        .expect("C ⊨ goal and goal nontrivial, so X ∈ L(C)");

    // Start from the premise X' → 𝒴'.
    let mut derivation = premise(premises, index);

    // Augment the left-hand side from X' up to X (single augmentation step).
    if chosen.lhs != goal.lhs {
        derivation = augmentation(derivation, goal.lhs.difference(chosen.lhs));
    }

    // Add every member of the goal family not already present: X → 𝒴' ∪ 𝒴.
    for member in goal.rhs.iter() {
        if !derivation.conclusion().rhs.contains(member) {
            derivation = addition(derivation, member);
        }
    }

    // Eliminate the leftover members of 𝒴' − 𝒴 one at a time.  For each such Z
    // we need X ∪ Z → (current RHS − {Z}), which is again implied by C (its
    // lattice shrinks), so recurse; the LHS strictly grows, ensuring termination.
    let extras: Vec<AttrSet> = chosen
        .rhs
        .iter()
        .filter(|&m| !goal.rhs.contains(m))
        .collect();
    for z in extras {
        let current = derivation.conclusion().clone();
        let target_rhs: Family = current.rhs.without_member(z);
        let side_goal = DiffConstraint::new(current.lhs.union(z), target_rhs);
        let side = derive_implied(universe, premises, &side_goal, memo);
        derivation = elimination(derivation, side, z).expect("shapes match by construction");
    }

    derivation
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u3() -> Universe {
        Universe::of_size(3)
    }

    fn u4() -> Universe {
        Universe::of_size(4)
    }

    fn parse(u: &Universe, texts: &[&str]) -> Vec<DiffConstraint> {
        texts
            .iter()
            .map(|t| DiffConstraint::parse(t, u).unwrap())
            .collect()
    }

    #[test]
    fn derivation_constructors_and_verification() {
        let u = u4();
        let premises = parse(&u, &["A -> {B}"]);
        let d = premise(&premises, 0);
        assert!(d.verify(&u, &premises).is_ok());

        let aug = augmentation(d.clone(), u.parse_set("C").unwrap());
        assert_eq!(
            aug.conclusion(),
            &DiffConstraint::parse("AC -> {B}", &u).unwrap()
        );
        assert!(aug.verify(&u, &premises).is_ok());

        let add = addition(aug, u.parse_set("CD").unwrap());
        assert_eq!(
            add.conclusion(),
            &DiffConstraint::parse("AC -> {B, CD}", &u).unwrap()
        );
        assert!(add.verify(&u, &premises).is_ok());

        // A forged premise leaf fails verification.
        let forged = Derivation::Premise {
            index: 0,
            conclusion: DiffConstraint::parse("A -> {C}", &u).unwrap(),
        };
        assert!(forged.verify(&u, &premises).is_err());

        // A bogus triviality step fails construction and verification.
        assert!(triviality(DiffConstraint::parse("A -> {B}", &u).unwrap()).is_err());
        let bogus = Derivation::Triviality {
            conclusion: DiffConstraint::parse("A -> {B}", &u).unwrap(),
        };
        assert!(bogus.verify(&u, &premises).is_err());
    }

    #[test]
    fn example_3_4_derivation() {
        let u = u3();
        let premises = parse(&u, &["A -> {B}", "B -> {C}"]);
        let goal = DiffConstraint::parse("A -> {C}", &u).unwrap();
        let proof = derive(&u, &premises, &goal).expect("implied");
        assert_eq!(proof.conclusion(), &goal);
        proof.verify(&u, &premises).expect("proof must verify");
        // It is a genuine derivation: it uses elimination (the only way to drop
        // the member B picked up from the first premise).
        assert!(proof.rule_counts().contains_key(&Rule::Elimination));
    }

    #[test]
    fn example_4_3_derivation() {
        // C = {A → {BC, CD}, C → {D}} ⊢ AB → {D}.
        let u = u4();
        let premises = parse(&u, &["A -> {BC, CD}", "C -> {D}"]);
        let goal = DiffConstraint::parse("AB -> {D}", &u).unwrap();
        let proof = derive(&u, &premises, &goal).expect("implied per Example 4.3");
        proof.verify(&u, &premises).expect("proof must verify");
        assert_eq!(proof.conclusion(), &goal);
    }

    #[test]
    fn non_implied_goals_are_not_derivable() {
        let u = u3();
        let premises = parse(&u, &["A -> {B}", "B -> {C}"]);
        let bad = DiffConstraint::parse("C -> {A}", &u).unwrap();
        assert!(derive(&u, &premises, &bad).is_none());
        assert!(!derivable(&u, &premises, &bad));
    }

    #[test]
    fn trivial_goal_derivation() {
        let u = u4();
        let goal = DiffConstraint::parse("ABC -> {BC}", &u).unwrap();
        let proof = derive(&u, &[], &goal).expect("trivial");
        assert_eq!(proof.rule(), Rule::Triviality);
        proof.verify(&u, &[]).unwrap();
    }

    #[test]
    fn soundness_every_derivation_is_semantically_valid() {
        // Soundness (Proposition 4.2): whatever `derive` produces must be implied —
        // checked here by the *semantic* procedure to keep the check independent.
        let u = u4();
        let premises = parse(&u, &["A -> {B, CD}", "C -> {D}", "BD -> {A}"]);
        let goals = parse(
            &u,
            &[
                "A -> {B, CD}",
                "AC -> {B, D}",
                "A -> {B, C, D}",
                "ABC -> {D}",
                "AB -> {B}",
            ],
        );
        for goal in &goals {
            if let Some(proof) = derive(&u, &premises, goal) {
                proof.verify(&u, &premises).expect("verification");
                assert!(
                    implication::implies_semantic(&u, &premises, goal),
                    "derived a non-implied constraint {}",
                    goal.format(&u)
                );
            }
        }
    }

    #[test]
    fn completeness_on_exhaustive_small_universe() {
        // Over S = {A,B,C} with singleton-member RHS families, derive() succeeds
        // exactly on the implied goals.
        let u = u3();
        let premises = parse(&u, &["A -> {B}", "BC -> {A}"]);
        for lhs_mask in 0u64..8 {
            for fam_chooser in 0u64..8 {
                let lhs = AttrSet::from_bits(lhs_mask);
                let members: Vec<AttrSet> = (0..3)
                    .filter(|i| (fam_chooser >> i) & 1 == 1)
                    .map(AttrSet::singleton)
                    .collect();
                let goal = DiffConstraint::new(lhs, Family::from_sets(members));
                let implied = implication::implies(&u, &premises, &goal);
                let proof = derive(&u, &premises, &goal);
                assert_eq!(
                    implied,
                    proof.is_some(),
                    "completeness mismatch at {}",
                    goal.format(&u)
                );
                if let Some(p) = proof {
                    p.verify(&u, &premises).unwrap();
                    assert_eq!(p.conclusion(), &goal);
                }
            }
        }
    }

    #[test]
    fn derivation_statistics_and_formatting() {
        let u = u4();
        let premises = parse(&u, &["A -> {BC, CD}", "C -> {D}"]);
        let goal = DiffConstraint::parse("AB -> {D}", &u).unwrap();
        let proof = derive(&u, &premises, &goal).unwrap();
        assert!(proof.size() >= 3);
        assert!(proof.depth() >= 2);
        let text = proof.format(&u);
        assert!(text.contains("given"));
        assert!(text.contains("AB → {D}"));
        let counts = proof.rule_counts();
        let total: usize = counts.values().sum();
        assert_eq!(total, proof.size());
    }

    #[test]
    fn elimination_constructor_rejects_bad_shapes() {
        let u = u4();
        let premises = parse(&u, &["A -> {B, C}", "AD -> {B}"]);
        let first = premise(&premises, 0);
        let second = premise(&premises, 1);
        // Eliminating C would require the second hypothesis to have LHS AC, not AD.
        assert!(elimination(first, second, u.parse_set("C").unwrap()).is_err());
    }
}
