//! Serving implication queries with `diffcon-engine`: sessions, snapshot
//! isolation, concurrent readers over sharded caches, batching, and the
//! multi-session `diffcond` wire protocol.
//!
//! Run with: `cargo run --example engine_service`

use diffcon::{implication, DiffConstraint};
use diffcon_engine::{Server, Session, SessionConfig};
use setlat::Universe;
use std::sync::Arc;

fn main() {
    // ── A session over the paper's 4-attribute examples ─────────────────────
    let u = Universe::of_size(4);
    let mut session = Session::new(u.clone());
    for text in ["A -> {B}", "B -> {C}", "A -> {BC, CD}"] {
        let c = DiffConstraint::parse(text, &u).unwrap();
        let (id, _) = session.assert_constraint(&c);
        println!("asserted #{:<2} {}", id.index(), c.format(&u));
    }

    // Single queries: the planner routes each to the cheapest procedure and
    // the answer cache serves repeats.
    for text in ["A -> {C}", "C -> {A}", "A -> {C}"] {
        let goal = DiffConstraint::parse(text, &u).unwrap();
        let outcome = session.implies(&goal);
        println!(
            "implies {:<12} -> {:5} via {} (cached: {})",
            text,
            outcome.implied,
            outcome.route_name(),
            outcome.cached
        );
    }

    // Batch evaluation: many goals at once, decided in parallel, answers
    // index-aligned.
    let goals: Vec<DiffConstraint> = ["AB -> {C}", "B -> {CD}", "C -> {B}", "AB -> {B}"]
        .iter()
        .map(|t| DiffConstraint::parse(t, &u).unwrap())
        .collect();
    let outcomes = session.implies_batch(&goals);
    for (goal, outcome) in goals.iter().zip(&outcomes) {
        println!("batch   {:<12} -> {}", goal.format(&u), outcome.implied);
    }

    // ── Concurrent serving: many threads, one shared snapshot ───────────────
    // Every mutation published an immutable snapshot; readers clone the Arc
    // and decide through `&self` — no reader ever blocks the writer, and a
    // writer can keep mutating the session while these threads run.
    println!("\n-- concurrent snapshot readers --");
    let mut gen = diffcon::random::ConstraintGenerator::new(7, &u);
    let shape = diffcon::random::ConstraintShape::default();
    let pool = gen.constraint_set(64, &shape);
    let snapshot = session.snapshot();
    let expected: Vec<bool> = pool
        .iter()
        .map(|g| implication::implies(&u, snapshot.premises(), g))
        .collect();
    const READERS: usize = 4;
    const ROUNDS: usize = 8;
    std::thread::scope(|scope| {
        for reader in 0..READERS {
            let snapshot = Arc::clone(&snapshot);
            let pool = &pool;
            let expected = &expected;
            scope.spawn(move || {
                let mut answered = 0usize;
                for _ in 0..ROUNDS {
                    for (goal, &want) in pool.iter().zip(expected) {
                        assert_eq!(
                            snapshot.implies(goal).implied,
                            want,
                            "reader diverged from the serial oracle"
                        );
                        answered += 1;
                    }
                }
                println!(
                    "reader {reader}: {answered} queries answered against epoch {}",
                    snapshot.epoch()
                );
            });
        }
    });
    // While the readers were running, the writer retracts a premise: the
    // session flips, already-captured snapshots do not.
    let transitivity_link = DiffConstraint::parse("B -> {C}", &u).unwrap();
    session.retract_constraint(&transitivity_link);
    let goal = DiffConstraint::parse("BD -> {C}", &u).unwrap();
    println!(
        "writer retracted B -> {{C}}: session now says {}, frozen snapshot still says {}",
        session.implies(&goal).implied,
        snapshot.implies(&goal).implied
    );
    assert!(!session.implies(&goal).implied);
    assert!(snapshot.implies(&goal).implied, "snapshots are immutable");

    // Aggregated shard statistics: every reader above fed the same sharded
    // caches, so the hit ratio reflects the whole fleet.
    let stats = session.stats();
    println!(
        "shared caches: {} shards, answer cache h{}/m{} (hit ratio {:.2}), {} queries total",
        stats.cache_shards,
        stats.answer_cache.hits,
        stats.answer_cache.misses,
        stats.answer_cache.hit_ratio(),
        stats.planner.total_queries(),
    );

    // ── The same service over the multi-session diffcond wire protocol ──────
    println!("\n-- diffcond protocol transcript --");
    let mut server = Server::new(SessionConfig::default());
    for line in [
        "universe 4",
        "assert A -> {B}",
        "assert B -> {C}",
        "implies A -> {C}",
        "session new",
        "universe 4",
        "assert A -> {C}",
        "implies A -> {C}",
        "session list",
        "session use 0",
        "batch A -> {C}; C -> {A}; AB -> {B}",
        "witness C -> {A}",
        "derive A -> {C}",
        "stats",
        "quit",
    ] {
        let reply = server.handle_line(line);
        println!("> {line}\n< {}", reply.text);
    }
}
