//! The derivable inference rules of Figure 2, implemented as tactics.
//!
//! Each rule of Figure 2 — chain, projection, transitivity, separation, union —
//! is *derivable* from the four primitive rules of Figure 1.  Rather than
//! hard-coding one particular sequence of primitive steps per rule, each tactic
//! (i) validates that its hypotheses have the required shape, (ii) computes the
//! rule's conclusion, and (iii) invokes the completeness engine
//! ([`crate::inference::derive`]) with the hypotheses as premises to *produce an
//! explicit primitive-rule derivation* of the conclusion.  The returned
//! [`Derivation`] is therefore itself a certificate that the rule is derivable,
//! and every application is machine-checked.

use crate::constraint::DiffConstraint;
use crate::inference::{self, Derivation, VerifyError};
use setlat::{AttrSet, Family, Universe};

fn tactic_err<T>(message: impl Into<String>) -> Result<T, VerifyError> {
    Err(VerifyError {
        message: message.into(),
    })
}

/// Derives the conclusion from the given hypotheses using only primitive rules,
/// or reports why the tactic does not apply.
fn derive_from(
    universe: &Universe,
    hypotheses: &[DiffConstraint],
    conclusion: DiffConstraint,
) -> Result<Derivation, VerifyError> {
    match inference::derive(universe, hypotheses, &conclusion) {
        Some(d) => Ok(d),
        None => tactic_err(format!(
            "internal error: Figure 2 conclusion {} is not derivable from its hypotheses",
            conclusion.format(universe)
        )),
    }
}

/// **Chain rule**: from `X → 𝒴 ∪ {Y}` and `X ∪ Y → 𝒴 ∪ {Z}` infer
/// `X → 𝒴 ∪ {Y ∪ Z}`.
pub fn chain(
    universe: &Universe,
    first: &DiffConstraint,
    second: &DiffConstraint,
    family: &Family,
    y: AttrSet,
    z: AttrSet,
) -> Result<Derivation, VerifyError> {
    if first != &DiffConstraint::new(first.lhs, family.with_member(y)) {
        return tactic_err("chain: first hypothesis must be X → 𝒴 ∪ {Y}");
    }
    if second != &DiffConstraint::new(first.lhs.union(y), family.with_member(z)) {
        return tactic_err("chain: second hypothesis must be X ∪ Y → 𝒴 ∪ {Z}");
    }
    let conclusion = DiffConstraint::new(first.lhs, family.with_member(y.union(z)));
    derive_from(universe, &[first.clone(), second.clone()], conclusion)
}

/// **Projection**: from `X → 𝒴 ∪ {Y ∪ Z}` infer `X → 𝒴 ∪ {Y}`.
pub fn projection(
    universe: &Universe,
    hypothesis: &DiffConstraint,
    family: &Family,
    y: AttrSet,
    z: AttrSet,
) -> Result<Derivation, VerifyError> {
    if hypothesis != &DiffConstraint::new(hypothesis.lhs, family.with_member(y.union(z))) {
        return tactic_err("projection: hypothesis must be X → 𝒴 ∪ {Y ∪ Z}");
    }
    let conclusion = DiffConstraint::new(hypothesis.lhs, family.with_member(y));
    derive_from(universe, std::slice::from_ref(hypothesis), conclusion)
}

/// **Transitivity**: from `X → 𝒴 ∪ {Y}` and `Y → 𝒴 ∪ {Z}` infer `X → 𝒴 ∪ {Z}`.
pub fn transitivity(
    universe: &Universe,
    first: &DiffConstraint,
    second: &DiffConstraint,
    family: &Family,
    y: AttrSet,
    z: AttrSet,
) -> Result<Derivation, VerifyError> {
    if first != &DiffConstraint::new(first.lhs, family.with_member(y)) {
        return tactic_err("transitivity: first hypothesis must be X → 𝒴 ∪ {Y}");
    }
    if second != &DiffConstraint::new(y, family.with_member(z)) {
        return tactic_err("transitivity: second hypothesis must be Y → 𝒴 ∪ {Z}");
    }
    let conclusion = DiffConstraint::new(first.lhs, family.with_member(z));
    derive_from(universe, &[first.clone(), second.clone()], conclusion)
}

/// **Separation**: from `X → 𝒴 ∪ {Y ∪ Z}` infer `X → 𝒴 ∪ {Y} ∪ {Z}`.
pub fn separation(
    universe: &Universe,
    hypothesis: &DiffConstraint,
    family: &Family,
    y: AttrSet,
    z: AttrSet,
) -> Result<Derivation, VerifyError> {
    if hypothesis != &DiffConstraint::new(hypothesis.lhs, family.with_member(y.union(z))) {
        return tactic_err("separation: hypothesis must be X → 𝒴 ∪ {Y ∪ Z}");
    }
    let conclusion = DiffConstraint::new(hypothesis.lhs, family.with_member(y).with_member(z));
    derive_from(universe, std::slice::from_ref(hypothesis), conclusion)
}

/// **Union**: from `X → 𝒴 ∪ {Y}` and `X → 𝒴 ∪ {Z}` infer `X → 𝒴 ∪ {Y ∪ Z}`.
pub fn union(
    universe: &Universe,
    first: &DiffConstraint,
    second: &DiffConstraint,
    family: &Family,
    y: AttrSet,
    z: AttrSet,
) -> Result<Derivation, VerifyError> {
    if first != &DiffConstraint::new(first.lhs, family.with_member(y)) {
        return tactic_err("union: first hypothesis must be X → 𝒴 ∪ {Y}");
    }
    if second != &DiffConstraint::new(first.lhs, family.with_member(z)) {
        return tactic_err("union: second hypothesis must be X → 𝒴 ∪ {Z}");
    }
    let conclusion = DiffConstraint::new(first.lhs, family.with_member(y.union(z)));
    derive_from(universe, &[first.clone(), second.clone()], conclusion)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u() -> Universe {
        Universe::of_size(4)
    }

    fn set(u: &Universe, s: &str) -> AttrSet {
        u.parse_set(s).unwrap()
    }

    #[test]
    fn chain_rule() {
        let u = u();
        let family = Family::single(set(&u, "D"));
        let first = DiffConstraint::new(set(&u, "A"), family.with_member(set(&u, "B")));
        let second = DiffConstraint::new(set(&u, "AB"), family.with_member(set(&u, "C")));
        let proof = chain(&u, &first, &second, &family, set(&u, "B"), set(&u, "C")).unwrap();
        assert_eq!(
            proof.conclusion(),
            &DiffConstraint::new(set(&u, "A"), family.with_member(set(&u, "BC")))
        );
        proof.verify(&u, &[first, second]).unwrap();
    }

    #[test]
    fn projection_rule() {
        let u = u();
        let family = Family::empty();
        let hyp = DiffConstraint::new(set(&u, "A"), family.with_member(set(&u, "BC")));
        let proof = projection(&u, &hyp, &family, set(&u, "B"), set(&u, "C")).unwrap();
        assert_eq!(
            proof.conclusion(),
            &DiffConstraint::parse("A -> {B}", &u).unwrap()
        );
        proof.verify(&u, std::slice::from_ref(&hyp)).unwrap();
    }

    #[test]
    fn transitivity_rule() {
        let u = u();
        let family = Family::empty();
        let first = DiffConstraint::parse("A -> {B}", &u).unwrap();
        let second = DiffConstraint::parse("B -> {C}", &u).unwrap();
        let proof = transitivity(&u, &first, &second, &family, set(&u, "B"), set(&u, "C")).unwrap();
        assert_eq!(
            proof.conclusion(),
            &DiffConstraint::parse("A -> {C}", &u).unwrap()
        );
        proof.verify(&u, &[first, second]).unwrap();
    }

    #[test]
    fn separation_rule() {
        let u = u();
        let family = Family::single(set(&u, "D"));
        let hyp = DiffConstraint::new(set(&u, "A"), family.with_member(set(&u, "BC")));
        let proof = separation(&u, &hyp, &family, set(&u, "B"), set(&u, "C")).unwrap();
        assert_eq!(
            proof.conclusion(),
            &DiffConstraint::new(
                set(&u, "A"),
                family.with_member(set(&u, "B")).with_member(set(&u, "C"))
            )
        );
        proof.verify(&u, std::slice::from_ref(&hyp)).unwrap();
    }

    #[test]
    fn union_rule() {
        let u = u();
        let family = Family::empty();
        let first = DiffConstraint::parse("A -> {B}", &u).unwrap();
        let second = DiffConstraint::parse("A -> {C}", &u).unwrap();
        let proof = union(&u, &first, &second, &family, set(&u, "B"), set(&u, "C")).unwrap();
        assert_eq!(
            proof.conclusion(),
            &DiffConstraint::parse("A -> {BC}", &u).unwrap()
        );
        proof.verify(&u, &[first, second]).unwrap();
    }

    #[test]
    fn tactics_reject_malformed_hypotheses() {
        let u = u();
        let family = Family::empty();
        let first = DiffConstraint::parse("A -> {B}", &u).unwrap();
        let wrong_second = DiffConstraint::parse("C -> {D}", &u).unwrap();
        assert!(transitivity(
            &u,
            &first,
            &wrong_second,
            &family,
            set(&u, "B"),
            set(&u, "D")
        )
        .is_err());
        assert!(projection(&u, &first, &family, set(&u, "C"), set(&u, "D")).is_err());
        assert!(union(
            &u,
            &first,
            &wrong_second,
            &family,
            set(&u, "B"),
            set(&u, "D")
        )
        .is_err());
    }

    #[test]
    fn example_4_3_replayed_with_tactics() {
        // The paper's Example 4.3 derivation:
        //   (a) C → {D}                      given
        //   (b) A → {BC, CD}                 given
        //   (c) A → {BC, C}                  projection on (b)
        //   (d) A → {C}                      projection on (c)
        //   (e) AB → {C}                     augmentation on (d)
        //   (f) AB → {D}                     transitivity on (e) and (a)
        let u = u();
        let a = DiffConstraint::parse("C -> {D}", &u).unwrap();
        let b = DiffConstraint::parse("A -> {BC, CD}", &u).unwrap();

        // (c): projection with 𝒴 = {BC}, Y = C, Z = D.
        let fam_bc = Family::single(set(&u, "BC"));
        let c = projection(&u, &b, &fam_bc, set(&u, "C"), set(&u, "D")).unwrap();
        assert_eq!(
            c.conclusion(),
            &DiffConstraint::parse("A -> {BC, C}", &u).unwrap()
        );

        // (d): projection with 𝒴 = {C}… the paper projects BC down, keeping {C}:
        // from A → {C, BC} with 𝒴 = {C}, Y = B (or C), Z chosen so Y∪Z = BC.
        let fam_c = Family::single(set(&u, "C"));
        let d = projection(&u, c.conclusion(), &fam_c, set(&u, "C"), set(&u, "B")).unwrap();
        // Projection of BC onto C gives A → {C, C} = A → {C}.
        assert_eq!(
            d.conclusion(),
            &DiffConstraint::parse("A -> {C}", &u).unwrap()
        );

        // (e): augmentation.
        let e = inference::augmentation(d.clone(), set(&u, "B"));
        assert_eq!(
            e.conclusion(),
            &DiffConstraint::parse("AB -> {C}", &u).unwrap()
        );

        // (f): transitivity on (e) and (a) with 𝒴 = ∅, Y = C, Z = D.
        let f = transitivity(
            &u,
            e.conclusion(),
            &a,
            &Family::empty(),
            set(&u, "C"),
            set(&u, "D"),
        )
        .unwrap();
        assert_eq!(
            f.conclusion(),
            &DiffConstraint::parse("AB -> {D}", &u).unwrap()
        );
    }
}
