//! The `diffcond serve` TCP front-end: the line protocol of [`crate::protocol`]
//! served over sockets, turning the in-process engine into a network server.
//!
//! # Execution model
//!
//! A [`NetServer`] owns a listening socket, an accept loop
//! ([`NetServer::run`]), and [`NetConfig::reactors`] **reactor threads**
//! (the readiness-driven event loops of the `reactor` module).  The accept
//! loop only accepts, admission-checks, and hands each connection to the
//! least-loaded reactor; every socket after that is nonblocking and served
//! by readiness — one reactor thread multiplexes all of its connections
//! through a vendored `epoll` instance, so ten thousand mostly-idle
//! connections cost ten thousand small buffers, not ten thousand stacks.
//!
//! Every connection still gets a private session namespace — its own
//! [`crate::server_state::SessionRegistry`] of numbered slots behind a
//! per-connection [`Pipeline`] — so two clients never see each other's
//! premises, knowns, or datasets, and all of a connection's slots close when
//! it disconnects.  Inside one connection the full protocol is available,
//! including the `session` verbs and the concurrent query evaluation of
//! `--threads N` (the shim's pools are sizes, not persistent threads, so
//! per-connection pools cost nothing at rest, and a wave of one query runs
//! inline on the reactor thread without a single spawn).
//!
//! # Framing and flushing
//!
//! Requests are newline-delimited as specified in the *Network framing*
//! section of the [`crate::protocol`] docs: one request per line, an
//! optional trailing `\r` stripped, at most
//! [`protocol::MAX_REQUEST_BYTES`] bytes per line (configurable via
//! [`NetConfig::max_request_bytes`]).  With [`NetConfig::binary`] enabled a
//! connection may also negotiate the compact binary framing of
//! [`protocol::binary`] (see the *Binary framing* protocol docs).  Framing
//! violations — oversized lines (discarded up to their newline without
//! unbounded buffering) and invalid UTF-8 — answer `err` *at their position
//! in the request order* (via [`Pipeline::push_reply`], so they cannot
//! overtake earlier deferred queries) and the connection keeps serving.
//!
//! The pipeline's wave batching is reconciled with strict request/response
//! clients by an **eager idle flush**: at the end of every readiness burst,
//! any connection the burst touched that still has pending replies is
//! flushed before the reactor goes back to waiting.  A client that
//! pipelines k requests gets its replies evaluated in batched waves (a
//! readiness burst becomes one wave); a client that sends one request and
//! waits gets its reply immediately — queue wait is the parse-to-flush gap
//! on an idle reactor, single-digit microseconds, not a polling interval.
//! Reply order is the request order in both cases, so the reply *stream* is
//! identical to what the in-process [`Pipeline`] (and therefore the serial
//! [`crate::protocol::Server`]) produces on the same script.
//!
//! # Admission and shutdown
//!
//! At most [`NetConfig::max_connections`] connections are served at once;
//! past the cap a connection is answered one
//! `err server at connection capacity (…)` line and closed, leaving the
//! accept loop free (a slow client can occupy one slot, never the
//! listener).  `quit` ends only its own connection (reply `bye`, graceful
//! close after its output buffer drains); a client disconnecting mid-line
//! or mid-wave just ends that connection.  Writes to a client that vanished
//! surface as `EPIPE` errors (Rust ignores `SIGPIPE`), which close that
//! connection and nothing else.  A slow *reader* is absorbed by its
//! connection's coalescing output buffer up to a high-water mark, after
//! which the reactor stops reading that connection's requests until the
//! buffer drains (backpressure) — the reactor itself never blocks on a
//! write (the `reactor` module docs have the details).
//! [`ShutdownHandle::shutdown`] stops the accept loop, which then stops and
//! joins the reactors.
//!
//! [`Pipeline`]: crate::server_state::Pipeline
//! [`Pipeline::push_reply`]: crate::server_state::Pipeline::push_reply

use crate::metrics::EngineMetrics;
use crate::protocol;
use crate::reactor::ReactorShared;
use crate::session::SessionConfig;
use std::io::{self, BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Admission and serving parameters of a [`NetServer`].
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Per-connection session configuration (cache bounds, budgets).
    pub session: SessionConfig,
    /// Worker threads evaluating each connection's read-only query verbs
    /// (1 = serial; the `--threads` semantics of the stdin server).
    pub threads: usize,
    /// Concurrent-connection admission cap.
    pub max_connections: usize,
    /// Per-request line-length admission cap, in bytes.
    pub max_request_bytes: usize,
    /// Slow-query threshold in microseconds, forwarded to every
    /// connection's [`Pipeline::set_slow_query_us`] (`None` disables the
    /// stderr log).
    ///
    /// [`Pipeline::set_slow_query_us`]: crate::server_state::Pipeline::set_slow_query_us
    pub slow_query_us: Option<u64>,
    /// Reactor event-loop threads serving the accepted connections
    /// (`--reactors`; clamped to at least 1).
    pub reactors: usize,
    /// Accept the binary-framing handshake of [`protocol::binary`]
    /// (`--binary`).  Off by default: without it the magic bytes parse as a
    /// malformed text line and answer a plain `err`.
    pub binary: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            session: SessionConfig::default(),
            threads: 1,
            max_connections: NetConfig::DEFAULT_MAX_CONNECTIONS,
            max_request_bytes: protocol::MAX_REQUEST_BYTES,
            slow_query_us: None,
            reactors: 1,
            binary: false,
        }
    }
}

impl NetConfig {
    /// Default concurrent-connection cap.
    pub const DEFAULT_MAX_CONNECTIONS: usize = 64;
}

/// Shared accept-loop state: the shutdown flag and the connection gauges.
#[derive(Debug, Default)]
pub(crate) struct NetState {
    shutdown: AtomicBool,
    active: AtomicUsize,
    served: AtomicU64,
    refused: AtomicU64,
}

/// Decrements the active-connection gauge when a connection is torn down —
/// held by the connection's reactor state, so a dropped connection can
/// never leak an admission slot no matter which path closed it.
pub(crate) struct ActiveGuard(Arc<NetState>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
        self.0.served.fetch_add(1, Ordering::Relaxed);
    }
}

/// A handle that stops a running [`NetServer`] accept loop from another
/// thread (tests, embedding examples, signal handlers).
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    state: Arc<NetState>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Flags shutdown and unblocks the accept loop (with a throwaway
    /// connection to the listener).  Connections already being served run
    /// to completion on their own threads; no new ones are accepted.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // The accept loop is blocked in `accept`; poke it awake.  Failure is
        // fine — it means the listener is already gone.
        let _ = TcpStream::connect(self.addr);
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.state.active.load(Ordering::SeqCst)
    }

    /// Connections served to completion since the server started.
    pub fn served_connections(&self) -> u64 {
        self.state.served.load(Ordering::Relaxed)
    }

    /// Connections refused at the admission cap.
    pub fn refused_connections(&self) -> u64 {
        self.state.refused.load(Ordering::Relaxed)
    }
}

/// A bound (but not yet running) `diffcond` TCP server.
#[derive(Debug)]
pub struct NetServer {
    listener: TcpListener,
    addr: SocketAddr,
    config: NetConfig,
    state: Arc<NetState>,
}

impl NetServer {
    /// Binds the listening socket.  Bind to port 0 for an ephemeral port
    /// (tests, benches) and read it back with [`NetServer::local_addr`].
    pub fn bind(addr: impl ToSocketAddrs, config: NetConfig) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(NetServer {
            listener,
            addr,
            config,
            state: Arc::new(NetState::default()),
        })
    }

    /// The bound address (the actual port, when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can stop [`NetServer::run`] and read the gauges.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.state),
            addr: self.addr,
        }
    }

    /// Runs the accept loop until [`ShutdownHandle::shutdown`] is called.
    /// The loop itself only accepts, admission-checks, and hands each
    /// connection to the least-loaded reactor thread; the reactors serve
    /// every admitted socket by readiness until shutdown, when they are
    /// stopped and joined.
    pub fn run(self) -> io::Result<()> {
        let metrics = EngineMetrics::global();
        let reactor_count = self.config.reactors.max(1);
        metrics.reactor_threads.set(reactor_count as u64);
        let mut reactors = Vec::with_capacity(reactor_count);
        let mut threads = Vec::with_capacity(reactor_count);
        for index in 0..reactor_count {
            let shared = ReactorShared::new(index)?;
            let handle = Arc::clone(&shared);
            let config = self.config;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("diffcond-reactor-{index}"))
                    .spawn(move || crate::reactor::run(handle, config))?,
            );
            reactors.push(shared);
        }
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                // Transient accept failures (aborted handshakes, fd
                // pressure) must not kill the serving loop.
                Err(_) => continue,
            };
            if self.state.active.load(Ordering::SeqCst) >= self.config.max_connections {
                self.state.refused.fetch_add(1, Ordering::Relaxed);
                refuse(stream, self.config.max_connections);
                continue;
            }
            self.state.active.fetch_add(1, Ordering::SeqCst);
            let guard = ActiveGuard(Arc::clone(&self.state));
            match reactors.iter().min_by_key(|reactor| reactor.load()) {
                Some(target) => target.inject(stream, guard),
                // Unreachable (`max(1, threads)` reactors are spawned above),
                // but an accept loop must never panic: refuse and move on.
                None => refuse(stream, self.config.max_connections),
            }
        }
        for reactor in &reactors {
            reactor.request_stop();
        }
        for thread in threads {
            let _ = thread.join();
        }
        Ok(())
    }
}

/// Best-effort refusal at the admission cap: one `err` line, then close.
fn refuse(stream: TcpStream, cap: usize) {
    let mut stream = stream;
    let _ = writeln!(
        stream,
        "err server at connection capacity ({cap} connections)"
    );
}

/// One raw frame from a byte stream.  `pub(crate)` because the blocking
/// [`crate::client`] frames its replies with the same reader (under a
/// different overflow policy), so a framing fix can never apply to one
/// side of the wire only.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Frame {
    /// A complete line (newline stripped) in the caller's buffer.
    Line,
    /// Data followed by EOF instead of a newline.  The server serves it
    /// like a line (the last request of a piped script); the client treats
    /// it as a truncated reply from a dying server.
    Partial,
    /// A line over the cap, discarded up to its newline; payload is the
    /// discarded length in bytes.  The stream stays framed: the next read
    /// starts at the next line.
    Oversized(usize),
    /// Clean end of input.
    Eof,
}

/// Reads one newline-delimited frame into `line` (cleared first), enforcing
/// the byte cap without ever buffering more than the cap plus one internal
/// read: an over-cap line is *discarded* chunk by chunk until its newline.
pub(crate) fn read_frame(
    reader: &mut impl BufRead,
    line: &mut Vec<u8>,
    max: usize,
) -> io::Result<Frame> {
    line.clear();
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            return Ok(if line.is_empty() {
                Frame::Eof
            } else {
                Frame::Partial
            });
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if line.len() + pos > max {
                    let dropped = line.len() + pos;
                    reader.consume(pos + 1);
                    return Ok(Frame::Oversized(dropped));
                }
                line.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                return Ok(Frame::Line);
            }
            None => {
                let chunk = buf.len();
                if line.len() + chunk > max {
                    let swallowed = line.len() + chunk;
                    reader.consume(chunk);
                    return discard_frame(reader, swallowed);
                }
                line.extend_from_slice(buf);
                reader.consume(chunk);
            }
        }
    }
}

/// Discards the rest of an over-cap line (everything up to and including
/// the next newline) without buffering it, counting the dropped bytes.
fn discard_frame(reader: &mut impl BufRead, mut dropped: usize) -> io::Result<Frame> {
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            // Oversized garbage then disconnect: nothing left to answer.
            return Ok(Frame::Eof);
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                dropped += pos;
                reader.consume(pos + 1);
                return Ok(Frame::Oversized(dropped));
            }
            None => {
                let chunk = buf.len();
                dropped += chunk;
                reader.consume(chunk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn frame_lines(input: &[u8], max: usize) -> Vec<Result<Vec<u8>, usize>> {
        let mut reader = BufReader::with_capacity(8, input);
        let mut line = Vec::new();
        let mut out = Vec::new();
        loop {
            match read_frame(&mut reader, &mut line, max).unwrap() {
                Frame::Eof => return out,
                Frame::Line | Frame::Partial => out.push(Ok(line.clone())),
                Frame::Oversized(got) => out.push(Err(got)),
            }
        }
    }

    #[test]
    fn frames_split_on_newlines_and_keep_final_unterminated_line() {
        let frames = frame_lines(b"stats\nquit\nlast", 100);
        assert_eq!(
            frames,
            vec![
                Ok(b"stats".to_vec()),
                Ok(b"quit".to_vec()),
                Ok(b"last".to_vec())
            ]
        );
    }

    #[test]
    fn empty_lines_are_frames_not_eof() {
        let frames = frame_lines(b"\n\nok\n", 100);
        assert_eq!(frames, vec![Ok(vec![]), Ok(vec![]), Ok(b"ok".to_vec())]);
    }

    #[test]
    fn oversized_lines_are_discarded_with_exact_accounting() {
        // 30-byte line against a 10-byte cap, then a small follow-up that
        // must still arrive intact (the tiny 8-byte BufReader forces the
        // discard path across many fills).
        let mut input = vec![b'x'; 30];
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        let frames = frame_lines(&input, 10);
        assert_eq!(frames, vec![Err(30), Ok(b"ok".to_vec())]);
    }

    #[test]
    fn oversized_exactly_at_cap_is_served() {
        let mut input = vec![b'y'; 10];
        input.push(b'\n');
        let frames = frame_lines(&input, 10);
        assert_eq!(frames, vec![Ok(vec![b'y'; 10])]);
        let mut input = vec![b'y'; 11];
        input.push(b'\n');
        let frames = frame_lines(&input, 10);
        assert_eq!(frames, vec![Err(11)]);
    }

    #[test]
    fn oversized_then_eof_just_ends() {
        let frames = frame_lines(&[b'z'; 64], 10);
        assert_eq!(frames, vec![]);
    }
}
