//! Minterms, minsets and negative minsets (Definition 5.1 of the paper).
//!
//! For a subset `X ⊆ S` of propositional variables, the *minterm* `X̄` is the
//! formula `⋀_{A ∈ X} A ∧ ⋀_{B ∉ X} ¬B`, i.e. the unique formula satisfied by
//! exactly the assignment that makes the variables of `X` true and everything
//! else false.  Because minterms and assignments are in bijection, the *minset*
//! of a formula φ — the set `{X | X̄ ⊨ φ}` — is simply the set of satisfying
//! assignments of φ, and `negminset(φ) = minset(¬φ)` is the set of falsifying
//! assignments.
//!
//! Proposition 5.3, `negminset(X ⇒prop 𝒴) = L(X, 𝒴)`, is what ties this module
//! to the lattice decompositions of [`setlat::lattice`].

use crate::formula::Formula;
use setlat::{AttrSet, Universe};

/// Builds the minterm formula `X̄` of `x` over a universe of `n` variables.
pub fn minterm(x: AttrSet, n: usize) -> Formula {
    let mut parts: Vec<Formula> = Vec::with_capacity(n);
    for v in 0..n {
        if x.contains(v) {
            parts.push(Formula::var(v));
        } else {
            parts.push(Formula::not(Formula::var(v)));
        }
    }
    Formula::and(parts)
}

/// The minset of a formula: all `X ⊆ S` whose minterm implies φ, i.e. all
/// satisfying assignments of φ.  Enumerates all `2^|S|` assignments.
pub fn minset(formula: &Formula, universe: &Universe) -> Vec<AttrSet> {
    universe
        .all_subsets()
        .filter(|&x| formula.eval(x))
        .collect()
}

/// The negative minset of a formula: `negminset(φ) = minset(¬φ)`, i.e. all
/// falsifying assignments of φ.
pub fn negminset(formula: &Formula, universe: &Universe) -> Vec<AttrSet> {
    universe
        .all_subsets()
        .filter(|&x| !formula.eval(x))
        .collect()
}

/// Reconstructs a formula as the disjunction of the minterms of its minset.
///
/// The paper notes that φ and `⋁_{X ∈ minset(φ)} X̄` are logically equivalent;
/// this function builds the right-hand side so tests can verify the claim.
pub fn disjunction_of_minterms(minset: &[AttrSet], n: usize) -> Formula {
    Formula::or(minset.iter().map(|&x| minterm(x, n)))
}

/// Exhaustive logical-implication check over a universe:
/// `Φ ⊨ φ` iff every assignment satisfying all of Φ satisfies φ.
///
/// Exponential in `|S|`; used as the reference implementation against which the
/// SAT-based procedure is validated.
pub fn implies_exhaustive(premises: &[Formula], conclusion: &Formula, universe: &Universe) -> bool {
    universe
        .all_subsets()
        .all(|x| !premises.iter().all(|p| p.eval(x)) || conclusion.eval(x))
}

/// The classical characterization used in Section 5 of the paper:
/// `Φ ⊨ φ` iff `negminset(φ) ⊆ ⋃_{φ' ∈ Φ} negminset(φ')`.
pub fn implies_via_negminsets(
    premises: &[Formula],
    conclusion: &Formula,
    universe: &Universe,
) -> bool {
    let mut union: Vec<AttrSet> = premises
        .iter()
        .flat_map(|p| negminset(p, universe))
        .collect();
    union.sort();
    union.dedup();
    negminset(conclusion, universe)
        .iter()
        .all(|x| union.binary_search(x).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minterm_is_satisfied_only_by_its_set() {
        let n = 4;
        let x = AttrSet::from_indices([0, 2]);
        let m = minterm(x, n);
        for mask in 0u64..(1 << n) {
            let a = AttrSet::from_bits(mask);
            assert_eq!(m.eval(a), a == x);
        }
    }

    #[test]
    fn minset_of_variable() {
        let u = Universe::of_size(3);
        let f = Formula::var(0);
        let ms = minset(&f, &u);
        assert_eq!(ms.len(), 4);
        for x in ms {
            assert!(x.contains(0));
        }
    }

    #[test]
    fn negminset_is_complement_of_minset() {
        let u = Universe::of_size(4);
        let f = Formula::implies(
            Formula::var(0),
            Formula::or([Formula::var(1), Formula::var(2)]),
        );
        let pos = minset(&f, &u);
        let neg = negminset(&f, &u);
        assert_eq!(pos.len() + neg.len(), 16);
        for x in &pos {
            assert!(!neg.contains(x));
        }
    }

    #[test]
    fn section_5_worked_example() {
        // α = A ⇒ B ∨ (C ∧ D); negminset(α) = {A, AC, AD} (paper, after Prop. 5.3).
        let u = Universe::of_size(4);
        let alpha = Formula::implies(
            Formula::var(0),
            Formula::or([
                Formula::var(1),
                Formula::and([Formula::var(2), Formula::var(3)]),
            ]),
        );
        let mut neg = negminset(&alpha, &u);
        neg.sort();
        let mut expected = vec![
            u.parse_set("A").unwrap(),
            u.parse_set("AC").unwrap(),
            u.parse_set("AD").unwrap(),
        ];
        expected.sort();
        assert_eq!(neg, expected);
    }

    #[test]
    fn formula_equivalent_to_disjunction_of_minterms() {
        let u = Universe::of_size(3);
        let f = Formula::iff(
            Formula::var(0),
            Formula::or([Formula::var(1), Formula::var(2)]),
        );
        let ms = minset(&f, &u);
        let rebuilt = disjunction_of_minterms(&ms, 3);
        for x in u.all_subsets() {
            assert_eq!(f.eval(x), rebuilt.eval(x));
        }
    }

    #[test]
    fn implication_characterizations_agree() {
        let u = Universe::of_size(3);
        let premises = vec![
            Formula::implies(Formula::var(0), Formula::var(1)),
            Formula::implies(Formula::var(1), Formula::var(2)),
        ];
        let good = Formula::implies(Formula::var(0), Formula::var(2));
        let bad = Formula::implies(Formula::var(2), Formula::var(0));
        assert!(implies_exhaustive(&premises, &good, &u));
        assert!(implies_via_negminsets(&premises, &good, &u));
        assert!(!implies_exhaustive(&premises, &bad, &u));
        assert!(!implies_via_negminsets(&premises, &bad, &u));
    }

    #[test]
    fn empty_premises_means_tautology() {
        let u = Universe::of_size(2);
        let taut = Formula::or([Formula::var(0), Formula::not(Formula::var(0))]);
        let not_taut = Formula::var(0);
        assert!(implies_exhaustive(&[], &taut, &u));
        assert!(!implies_exhaustive(&[], &not_taut, &u));
        assert!(implies_via_negminsets(&[], &taut, &u));
        assert!(!implies_via_negminsets(&[], &not_taut, &u));
    }
}
