//! Dense real-valued set functions `f : 2^S → ℝ` (the class `F(S)` of the paper).
//!
//! A [`SetFunction`] stores one `f64` for every subset of the universe, indexed
//! by the subset's bit mask.  This is the natural representation for the
//! paper's development, which reasons about *all* functions in `F(S)`: both the
//! Möbius/zeta transforms ([`crate::mobius`]) and the exhaustive semantic checks
//! used to validate the inference system operate on the full table.
//!
//! The dense representation requires `8 · 2^|S|` bytes, so it is limited to
//! universes of at most [`MAX_DENSE_UNIVERSE`] attributes.

use crate::attrset::AttrSet;
use crate::universe::Universe;
use std::fmt;

/// Largest universe for which a dense [`SetFunction`] may be allocated
/// (`2^26` doubles ≈ 512 MiB is already generous; typical experiments use ≤ 20).
pub const MAX_DENSE_UNIVERSE: usize = 26;

/// A total function `f : 2^S → ℝ` over a universe of `n` attributes, stored densely.
#[derive(Clone, PartialEq)]
pub struct SetFunction {
    n: usize,
    values: Vec<f64>,
}

impl SetFunction {
    /// Creates the constant-zero function over a universe of `n` attributes.
    ///
    /// # Panics
    /// Panics if `n > MAX_DENSE_UNIVERSE`.
    pub fn zeros(n: usize) -> Self {
        assert!(
            n <= MAX_DENSE_UNIVERSE,
            "dense set functions support at most {MAX_DENSE_UNIVERSE} attributes (got {n})"
        );
        SetFunction {
            n,
            values: vec![0.0; 1usize << n],
        }
    }

    /// Creates the constant function with value `c` everywhere.
    pub fn constant(n: usize, c: f64) -> Self {
        let mut f = SetFunction::zeros(n);
        f.values.iter_mut().for_each(|v| *v = c);
        f
    }

    /// Creates a function by evaluating `g` at every subset of the universe.
    pub fn from_fn<G: FnMut(AttrSet) -> f64>(n: usize, mut g: G) -> Self {
        let mut f = SetFunction::zeros(n);
        for mask in 0..f.values.len() {
            f.values[mask] = g(AttrSet::from_bits(mask as u64));
        }
        f
    }

    /// Creates a function from a raw table of `2^n` values, indexed by mask.
    ///
    /// # Panics
    /// Panics if `values.len() != 2^n`.
    pub fn from_values(n: usize, values: Vec<f64>) -> Self {
        assert!(n <= MAX_DENSE_UNIVERSE);
        assert_eq!(
            values.len(),
            1usize << n,
            "expected {} values for a universe of {} attributes",
            1usize << n,
            n
        );
        SetFunction { n, values }
    }

    /// The number of attributes in the underlying universe.
    #[inline]
    pub fn universe_size(&self) -> usize {
        self.n
    }

    /// The number of stored values, `2^n`.
    #[inline]
    pub fn table_len(&self) -> usize {
        self.values.len()
    }

    /// The value `f(X)`.
    ///
    /// # Panics
    /// Panics if `x` contains attributes outside the universe.
    #[inline]
    pub fn get(&self, x: AttrSet) -> f64 {
        self.values[self.index(x)]
    }

    /// Sets the value `f(X) := v`.
    #[inline]
    pub fn set(&mut self, x: AttrSet, v: f64) {
        let i = self.index(x);
        self.values[i] = v;
    }

    /// Adds `v` to `f(X)`.
    #[inline]
    pub fn add(&mut self, x: AttrSet, v: f64) {
        let i = self.index(x);
        self.values[i] += v;
    }

    /// Read-only access to the raw value table (indexed by subset mask).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the raw value table (indexed by subset mask).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Iterates over `(X, f(X))` pairs in mask order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrSet, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(mask, &v)| (AttrSet::from_bits(mask as u64), v))
    }

    /// Returns `true` iff every value is ≥ `-tol`.
    pub fn is_nonnegative(&self, tol: f64) -> bool {
        self.values.iter().all(|&v| v >= -tol)
    }

    /// Returns `true` iff every value is ≤ `tol`.
    pub fn is_nonpositive(&self, tol: f64) -> bool {
        self.values.iter().all(|&v| v <= tol)
    }

    /// Returns `true` iff every value has absolute value ≤ `tol`.
    pub fn is_zero(&self, tol: f64) -> bool {
        self.values.iter().all(|&v| v.abs() <= tol)
    }

    /// Pointwise sum of two functions over the same universe.
    ///
    /// # Panics
    /// Panics if the universes differ.
    pub fn pointwise_add(&self, other: &SetFunction) -> SetFunction {
        assert_eq!(self.n, other.n, "universe size mismatch");
        let values = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| a + b)
            .collect();
        SetFunction { n: self.n, values }
    }

    /// Pointwise scaling `c · f`.
    pub fn scale(&self, c: f64) -> SetFunction {
        SetFunction {
            n: self.n,
            values: self.values.iter().map(|v| c * v).collect(),
        }
    }

    /// Maximum absolute difference between two functions over the same universe.
    ///
    /// # Panics
    /// Panics if the universes differ.
    pub fn max_abs_diff(&self, other: &SetFunction) -> f64 {
        assert_eq!(self.n, other.n, "universe size mismatch");
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// The characteristic "counterexample" function `f^U` used in the proof of
    /// Theorem 3.5: `f^U(W) = c` if `W ⊆ U`, and `0` otherwise.  Its density
    /// function is `c` at `U` and `0` everywhere else.
    pub fn point_mass(n: usize, u: AttrSet, c: f64) -> SetFunction {
        SetFunction::from_fn(n, |w| if w.is_subset(u) { c } else { 0.0 })
    }

    /// Renders the function as a small table using the universe's set notation.
    pub fn format_table(&self, universe: &Universe) -> String {
        let mut out = String::new();
        for (x, v) in self.iter() {
            out.push_str(&format!("f({}) = {}\n", universe.format_set(x), v));
        }
        out
    }

    #[inline]
    fn index(&self, x: AttrSet) -> usize {
        let bits = x.bits();
        assert!(
            bits < (1u64 << self.n),
            "set {x:?} lies outside a universe of {} attributes",
            self.n
        );
        bits as usize
    }
}

impl fmt::Debug for SetFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SetFunction(n={}, {} values)", self.n, self.values.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_constant() {
        let f = SetFunction::zeros(3);
        assert_eq!(f.table_len(), 8);
        assert!(f.is_zero(0.0));
        let g = SetFunction::constant(3, 2.5);
        assert_eq!(g.get(AttrSet::from_indices([0, 2])), 2.5);
        assert!(g.is_nonnegative(0.0));
        assert!(!g.is_nonpositive(0.0));
    }

    #[test]
    fn from_fn_cardinality() {
        let f = SetFunction::from_fn(4, |x| x.len() as f64);
        assert_eq!(f.get(AttrSet::EMPTY), 0.0);
        assert_eq!(f.get(AttrSet::full(4)), 4.0);
        assert_eq!(f.get(AttrSet::from_indices([1, 3])), 2.0);
    }

    #[test]
    fn get_set_add() {
        let mut f = SetFunction::zeros(3);
        let x = AttrSet::from_indices([0, 1]);
        f.set(x, 4.0);
        assert_eq!(f.get(x), 4.0);
        f.add(x, -1.5);
        assert_eq!(f.get(x), 2.5);
    }

    #[test]
    #[should_panic(expected = "outside a universe")]
    fn out_of_universe_panics() {
        let f = SetFunction::zeros(3);
        let _ = f.get(AttrSet::singleton(5));
    }

    #[test]
    fn pointwise_ops() {
        let f = SetFunction::from_fn(3, |x| x.len() as f64);
        let g = SetFunction::constant(3, 1.0);
        let h = f.pointwise_add(&g);
        assert_eq!(h.get(AttrSet::EMPTY), 1.0);
        assert_eq!(h.get(AttrSet::full(3)), 4.0);
        let s = f.scale(2.0);
        assert_eq!(s.get(AttrSet::full(3)), 6.0);
        assert_eq!(f.max_abs_diff(&f), 0.0);
        assert!(f.max_abs_diff(&g) > 0.0);
    }

    #[test]
    fn point_mass_structure() {
        let u = AttrSet::from_indices([0, 2]);
        let f = SetFunction::point_mass(3, u, 5.0);
        assert_eq!(f.get(AttrSet::EMPTY), 5.0);
        assert_eq!(f.get(AttrSet::singleton(0)), 5.0);
        assert_eq!(f.get(u), 5.0);
        assert_eq!(f.get(AttrSet::singleton(1)), 0.0);
        assert_eq!(f.get(AttrSet::full(3)), 0.0);
    }

    #[test]
    fn from_values_roundtrip() {
        let vals = vec![1.0, 2.0, 3.0, 4.0];
        let f = SetFunction::from_values(2, vals.clone());
        assert_eq!(f.values(), vals.as_slice());
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn from_values_wrong_len_panics() {
        let _ = SetFunction::from_values(2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn iter_covers_all_subsets() {
        let f = SetFunction::from_fn(3, |x| x.bits() as f64);
        let collected: Vec<(AttrSet, f64)> = f.iter().collect();
        assert_eq!(collected.len(), 8);
        assert_eq!(collected[5].0, AttrSet::from_bits(5));
        assert_eq!(collected[5].1, 5.0);
    }
}
