//! E11 — engine serving throughput: what the `diffcon-engine` layer buys over
//! one-shot `implication::implies` calls on repeated-premise query traffic.
//!
//! Three axes are measured on the same serving-style stream (a fixed premise
//! set, queries drawn with repetition from a goal pool):
//!
//! * **cold vs. warm cache** — one-shot `implies` per query versus a session
//!   whose answer cache has seen the stream once;
//! * **serial vs. batch** — per-query session calls versus
//!   `implies_batch`, which deduplicates in-batch repeats and fans cache
//!   misses out across the rayon pool;
//! * **stream length scaling** — throughput as repetition (and therefore
//!   cache hit ratio) grows.
//!
//! A count table reports the planner's view of the warm run — per-procedure
//! query counts and the cache hit ratios behind the speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diffcon::implication;
use diffcon::procedure::ProcedureKind;
use diffcon_bench::workloads;
use diffcon_bench::{JsonReport, Table};
use diffcon_engine::Session;
use std::time::Instant;

const UNIVERSE: usize = 12;
const PREMISES: usize = 8;
const POOL: usize = 64;

fn table_engine_cache_effect(stream_lens: &[usize]) -> Table {
    let mut table = Table::new(
        "E11: engine cache effect by stream length (pool of 64 goals)",
        [
            "stream",
            "decided",
            "cache_hits",
            "trivial",
            "hit_ratio",
            "fd",
            "lattice",
            "sat",
        ],
    );
    for &len in stream_lens {
        let (base, stream) = workloads::engine_query_stream(42, UNIVERSE, PREMISES, POOL, len);
        let mut session = Session::new(base.universe.clone());
        for p in &base.premises {
            session.assert_constraint(p);
        }
        for goal in &stream {
            session.implies(goal);
        }
        let stats = session.stats();
        let planner = stats.planner;
        let decided: u64 = planner.per_procedure.iter().map(|p| p.decided).sum();
        let hits: u64 = planner.per_procedure.iter().map(|p| p.cache_hits).sum();
        table.push_row([
            len.to_string(),
            decided.to_string(),
            hits.to_string(),
            planner.trivial.to_string(),
            format!("{:.2}", stats.answer_cache.hit_ratio()),
            planner.of(ProcedureKind::FdFragment).decided.to_string(),
            planner.of(ProcedureKind::Lattice).decided.to_string(),
            planner.of(ProcedureKind::Sat).decided.to_string(),
        ]);
    }
    table
}

/// Self-measured serving timings for the machine-readable report (the
/// criterion shim reports medians to stderr only; the JSON file needs
/// numbers of its own).
fn emit_json_report(cache_table: Table) {
    let (base, stream) = workloads::engine_query_stream(42, UNIVERSE, PREMISES, POOL, 512);
    // Steady-state timing: untimed warmup passes, then 20 timed passes.
    // Returns (best, mean) in µs — the best is a latency-floor estimator
    // robust to scheduler noise on small CI hosts (criterion's stderr
    // medians corroborate it); the mean is kept alongside so reports using
    // different estimators stay comparable across commits.
    let time_both_us = |f: &mut dyn FnMut() -> usize| -> (f64, f64) {
        for _ in 0..3 {
            criterion::black_box(f());
        }
        let mut best = f64::INFINITY;
        let mut total = 0.0f64;
        let passes = 20;
        for _ in 0..passes {
            let start = Instant::now();
            criterion::black_box(f());
            let secs = start.elapsed().as_secs_f64();
            best = best.min(secs);
            total += secs;
        }
        (best * 1e6, total * 1e6 / passes as f64)
    };
    let time_us = |f: &mut dyn FnMut() -> usize| -> f64 { time_both_us(f).0 };
    let cold_us = time_us(&mut || {
        stream
            .iter()
            .filter(|g| implication::implies(&base.universe, &base.premises, g))
            .count()
    });
    let mut warm = Session::new(base.universe.clone());
    for p in &base.premises {
        warm.assert_constraint(p);
    }
    for goal in &stream {
        warm.implies(goal);
    }
    let (warm_us, warm_mean_us) =
        time_both_us(&mut || stream.iter().filter(|g| warm.implies(g).implied).count());
    let batch_us = time_us(&mut || {
        warm.implies_batch(&stream)
            .iter()
            .filter(|o| o.implied)
            .count()
    });
    // Static-analysis cost and the core-reduction win (ISSUE 10): inflate
    // the premise family with goals it already implies — redundant by
    // construction — then time `minimal_core` itself and the cold serving
    // pass from the full versus the reduced family.  Cold decisions pay
    // per-premise costs (lattice enumeration, SAT translation), so the
    // reduction shows up where caches cannot hide it.
    let mut inflated = base.premises.clone();
    for goal in &stream {
        if inflated.len() >= base.premises.len() + 4 {
            break;
        }
        if !inflated.contains(goal) && implication::implies(&base.universe, &inflated, goal) {
            inflated.push(goal.clone());
        }
    }
    let mut core = diffcon_analyze::minimal_core(&base.universe, &inflated);
    let analyze_us = time_us(&mut || {
        core = diffcon_analyze::minimal_core(&base.universe, &inflated);
        assert!(diffcon_analyze::check_certificate(&base.universe, &core));
        core.core.len()
    });
    let cold_full_us = time_us(&mut || {
        stream
            .iter()
            .filter(|g| implication::implies(&base.universe, &inflated, g))
            .count()
    });
    let cold_core_us = time_us(&mut || {
        stream
            .iter()
            .filter(|g| implication::implies(&base.universe, &core.core, g))
            .count()
    });
    let mut report = JsonReport::new("engine_throughput");
    report.push_metric("stream_len", stream.len() as f64);
    report.push_metric("cold_oneshot_us", cold_us);
    report.push_metric("warm_serial_us", warm_us);
    report.push_metric("warm_serial_mean_us", warm_mean_us);
    report.push_metric("warm_batch_us", batch_us);
    report.push_metric("warm_speedup", cold_us / warm_us.max(1e-9));
    report.push_metric("analyze_minimal_core_us", analyze_us);
    report.push_metric("analyze_premises_full", inflated.len() as f64);
    report.push_metric("analyze_premises_core", core.core.len() as f64);
    report.push_metric("analyze_premises_dropped", core.dropped.len() as f64);
    report.push_metric("analyze_cold_full_us", cold_full_us);
    report.push_metric("analyze_cold_core_us", cold_core_us);
    report.push_metric(
        "analyze_core_reduction_speedup",
        cold_full_us / cold_core_us.max(1e-9),
    );
    report.push_table(cache_table);
    match report.write_to_repo_root("BENCH_engine.json") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_engine.json: {e}"),
    }
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let cache_table = table_engine_cache_effect(&[64, 256, 1024, 4096]);
    cache_table.eprint();
    emit_json_report(cache_table);

    let (base, stream) = workloads::engine_query_stream(42, UNIVERSE, PREMISES, POOL, 512);
    let mut group = c.benchmark_group("E11_cold_vs_warm");
    group.sample_size(15);

    group.bench_with_input(
        BenchmarkId::new("cold_oneshot", stream.len()),
        &stream,
        |b, stream| {
            b.iter(|| {
                stream
                    .iter()
                    .filter(|g| implication::implies(&base.universe, &base.premises, g))
                    .count()
            })
        },
    );

    // Warm: the session has already served the stream once, so every query
    // in the measured pass is an answer-cache hit.
    let mut warm = Session::new(base.universe.clone());
    for p in &base.premises {
        warm.assert_constraint(p);
    }
    for goal in &stream {
        warm.implies(goal);
    }
    group.bench_with_input(
        BenchmarkId::new("warm_serial", stream.len()),
        &stream,
        |b, stream| b.iter(|| stream.iter().filter(|g| warm.implies(g).implied).count()),
    );

    // Warm batch: the whole stream in one `implies_batch` call against the
    // warmed session — the serving configuration the engine is built for.
    group.bench_with_input(
        BenchmarkId::new("warm_batch", stream.len()),
        &stream,
        |b, stream| {
            b.iter(|| {
                warm.implies_batch(stream)
                    .iter()
                    .filter(|o| o.implied)
                    .count()
            })
        },
    );
    group.finish();
}

fn bench_serial_vs_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11_serial_vs_batch");
    group.sample_size(10);
    // A heavier universe than the cache benchmark: per-query lattice work is
    // what the parallel fan-out amortizes, so make each query substantial.
    for &len in &[128usize, 512] {
        let (base, stream) = workloads::engine_query_stream(7, 16, 12, 128, len);
        // Fresh sessions per measured iteration would conflate setup with
        // serving; instead clear caches each iteration so every pass decides
        // the distinct goals again (cold batch vs. cold serial).
        let mut serial = Session::new(base.universe.clone());
        let mut batched = Session::new(base.universe.clone());
        for p in &base.premises {
            serial.assert_constraint(p);
            batched.assert_constraint(p);
        }
        group.bench_with_input(BenchmarkId::new("serial", len), &stream, |b, stream| {
            b.iter(|| {
                serial.clear_caches();
                stream.iter().filter(|g| serial.implies(g).implied).count()
            })
        });
        group.bench_with_input(BenchmarkId::new("batch", len), &stream, |b, stream| {
            b.iter(|| {
                batched.clear_caches();
                batched
                    .implies_batch(stream)
                    .iter()
                    .filter(|o| o.implied)
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cold_vs_warm, bench_serial_vs_batch);
criterion_main!(benches);
