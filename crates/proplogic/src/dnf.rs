//! Disjunctive normal form and the DNF-tautology problem.
//!
//! The coNP-hardness proof of Proposition 5.5 reduces from the problem of
//! deciding whether a propositional formula in disjunctive normal form is a
//! tautology.  A DNF formula is a disjunction of *terms*; each term is a
//! conjunction of literals, described here by the pair `(P_ψ, Q_ψ)` of sets of
//! positively and negatively occurring variables — exactly the notation used in
//! the paper's proof.

use crate::formula::Formula;
use setlat::{AttrSet, Universe};

/// One DNF term `⋀ P ∧ ⋀_{q ∈ Q} ¬q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DnfTerm {
    /// The positively occurring variables `P_ψ`.
    pub positive: AttrSet,
    /// The negatively occurring variables `Q_ψ`.
    pub negative: AttrSet,
}

impl DnfTerm {
    /// Creates a term; a variable may not occur both positively and negatively
    /// (such a term would be contradictory — represent it by any `P ∩ Q ≠ ∅`
    /// term and [`DnfTerm::is_contradictory`] will report it).
    pub fn new(positive: AttrSet, negative: AttrSet) -> DnfTerm {
        DnfTerm { positive, negative }
    }

    /// Returns `true` iff the term contains a variable both positively and
    /// negatively and is therefore unsatisfiable.
    pub fn is_contradictory(&self) -> bool {
        self.positive.intersects(self.negative)
    }

    /// Evaluates the term under an assignment.
    pub fn eval(&self, assignment: AttrSet) -> bool {
        self.positive.is_subset(assignment) && self.negative.is_disjoint(assignment)
    }

    /// Converts the term to a [`Formula`].
    pub fn to_formula(&self) -> Formula {
        let pos = self.positive.iter().map(Formula::var);
        let neg = self.negative.iter().map(|v| Formula::not(Formula::var(v)));
        Formula::and(pos.chain(neg))
    }
}

/// A formula in disjunctive normal form: `⋁_ψ (⋀ P_ψ ∧ ⋀_{q ∈ Q_ψ} ¬q)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dnf {
    /// The terms of the disjunction.
    pub terms: Vec<DnfTerm>,
}

impl Dnf {
    /// Creates a DNF formula from terms.
    pub fn new<I: IntoIterator<Item = DnfTerm>>(terms: I) -> Dnf {
        Dnf {
            terms: terms.into_iter().collect(),
        }
    }

    /// Evaluates the DNF under an assignment.
    pub fn eval(&self, assignment: AttrSet) -> bool {
        self.terms.iter().any(|t| t.eval(assignment))
    }

    /// Converts the DNF to a [`Formula`].
    pub fn to_formula(&self) -> Formula {
        Formula::or(self.terms.iter().map(DnfTerm::to_formula))
    }

    /// The set of variables occurring in the DNF.
    pub fn variables(&self) -> AttrSet {
        self.terms.iter().fold(AttrSet::EMPTY, |acc, t| {
            acc.union(t.positive).union(t.negative)
        })
    }

    /// Exhaustive tautology check over the given universe (reference
    /// implementation; exponential in `|S|`).
    pub fn is_tautology_exhaustive(&self, universe: &Universe) -> bool {
        universe.all_subsets().all(|x| self.eval(x))
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` iff the DNF has no terms (the constant `false`).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Pretty-prints the DNF over a universe.
    pub fn format(&self, universe: &Universe) -> String {
        self.to_formula().format(universe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_eval() {
        let t = DnfTerm::new(AttrSet::from_indices([0]), AttrSet::from_indices([1]));
        assert!(t.eval(AttrSet::from_indices([0])));
        assert!(t.eval(AttrSet::from_indices([0, 2])));
        assert!(!t.eval(AttrSet::from_indices([0, 1])));
        assert!(!t.eval(AttrSet::EMPTY));
    }

    #[test]
    fn contradictory_term() {
        let t = DnfTerm::new(AttrSet::from_indices([0]), AttrSet::from_indices([0]));
        assert!(t.is_contradictory());
        for mask in 0u64..4 {
            assert!(!t.eval(AttrSet::from_bits(mask)));
        }
    }

    #[test]
    fn dnf_eval_matches_formula() {
        let dnf = Dnf::new([
            DnfTerm::new(AttrSet::from_indices([0]), AttrSet::from_indices([1])),
            DnfTerm::new(AttrSet::from_indices([1, 2]), AttrSet::EMPTY),
        ]);
        let f = dnf.to_formula();
        for mask in 0u64..8 {
            let a = AttrSet::from_bits(mask);
            assert_eq!(dnf.eval(a), f.eval(a));
        }
    }

    #[test]
    fn excluded_middle_is_tautology() {
        // x ∨ ¬x
        let u = Universe::of_size(1);
        let dnf = Dnf::new([
            DnfTerm::new(AttrSet::from_indices([0]), AttrSet::EMPTY),
            DnfTerm::new(AttrSet::EMPTY, AttrSet::from_indices([0])),
        ]);
        assert!(dnf.is_tautology_exhaustive(&u));
    }

    #[test]
    fn non_tautology_detected() {
        let u = Universe::of_size(2);
        let dnf = Dnf::new([
            DnfTerm::new(AttrSet::from_indices([0]), AttrSet::EMPTY),
            DnfTerm::new(AttrSet::from_indices([1]), AttrSet::EMPTY),
        ]);
        assert!(!dnf.is_tautology_exhaustive(&u));
    }

    #[test]
    fn empty_dnf_is_false() {
        let u = Universe::of_size(2);
        let dnf = Dnf::default();
        assert!(dnf.is_empty());
        assert!(!dnf.is_tautology_exhaustive(&u));
        assert!(!dnf.eval(AttrSet::EMPTY));
    }

    #[test]
    fn variables_union() {
        let dnf = Dnf::new([
            DnfTerm::new(AttrSet::from_indices([0]), AttrSet::from_indices([3])),
            DnfTerm::new(AttrSet::from_indices([1]), AttrSet::EMPTY),
        ]);
        assert_eq!(dnf.variables(), AttrSet::from_indices([0, 1, 3]));
    }
}
