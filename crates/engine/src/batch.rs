//! Batch evaluation: decide many goals against one premise set, in parallel.
//!
//! This module is the stateless core the [`crate::session::Session`]
//! dispatches to.  A session snapshots its premise set (plus the memoized
//! propositional translations and any cached goal lattices), plans one
//! [`Job`] per goal, and hands the whole batch to [`decide_many`], which
//! fans the jobs out with rayon.  Workers are pure: they read the shared
//! [`DecisionContext`] and return per-goal [`JobResult`]s carrying any
//! freshly computed derived data (goal lattices, propositional translations),
//! which the session then writes back into its caches on the serial side.
//! Keeping cache mutation out of the parallel section means no locks on the
//! hot path and no cross-worker contention.

use diffcon::procedure::ProcedureKind;
use diffcon::{implication, prop_bridge, DiffConstraint};
use proplogic::implication::ImplicationConstraint;
use rayon::prelude::*;
use relational::fd::{self, FunctionalDependency};
use setlat::{lattice, AttrSet, Universe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything a worker needs to decide `premises ⊨ goal`, shared read-only
/// across the batch.
pub struct DecisionContext<'a> {
    /// The attribute universe.
    pub universe: &'a Universe,
    /// The premise set `C`.
    pub premises: &'a [DiffConstraint],
    /// Propositional translations of `premises`, index-aligned; used by the
    /// SAT procedure.
    pub premise_props: &'a [ImplicationConstraint],
    /// FD translations of `premises` when the whole set lies in the
    /// single-member fragment; enables the polynomial procedure.
    pub premise_fds: Option<&'a [FunctionalDependency]>,
}

/// One planned unit of work: a goal plus the procedure chosen for it and any
/// cached derived data the session already holds.
pub struct Job {
    /// The goal constraint.
    pub goal: DiffConstraint,
    /// The procedure the planner selected.
    pub procedure: ProcedureKind,
    /// The goal's memoized lattice decomposition, if the session has it.
    pub cached_lattice: Option<Arc<[AttrSet]>>,
    /// The goal's memoized propositional translation, if the session has it.
    pub cached_prop: Option<Arc<ImplicationConstraint>>,
}

/// The outcome of one job.
pub struct JobResult {
    /// Whether the premises imply the goal.
    pub implied: bool,
    /// The procedure that decided it.
    pub procedure: ProcedureKind,
    /// Wall-clock time spent deciding.
    pub elapsed: Duration,
    /// A goal lattice computed by the worker (for cache write-back).
    pub computed_lattice: Option<Arc<[AttrSet]>>,
    /// A goal translation computed by the worker (for cache write-back).
    pub computed_prop: Option<Arc<ImplicationConstraint>>,
}

/// Decides a single job against the context.
pub fn decide_one(ctx: &DecisionContext<'_>, job: &Job) -> JobResult {
    let start = Instant::now();
    let mut computed_lattice = None;
    let mut computed_prop = None;
    let implied = match job.procedure {
        ProcedureKind::FdFragment => {
            let fds = ctx
                .premise_fds
                .expect("planner routed to FD without a fragment index");
            let goal_fd = diffcon::fd_fragment::to_fd(&job.goal)
                .expect("planner routed a wide goal to the FD procedure");
            fd::implies(fds, &goal_fd)
        }
        ProcedureKind::Lattice => match &job.cached_lattice {
            Some(l) => covered_by_premises(l, ctx.premises),
            None => {
                // Enumerate L(goal) once, decide from it, and hand the
                // materialization back for the session to memoize — repeat
                // queries then skip the 2^{|S|−|X|} superset sweep entirely.
                let l = goal_lattice(ctx.universe, &job.goal);
                let implied = covered_by_premises(&l, ctx.premises);
                computed_lattice = Some(l);
                implied
            }
        },
        ProcedureKind::Semantic => {
            implication::implies_semantic(ctx.universe, ctx.premises, &job.goal)
        }
        ProcedureKind::Sat => {
            let prop = match &job.cached_prop {
                Some(p) => Arc::clone(p),
                None => {
                    let p = Arc::new(prop_bridge::to_implication_constraint(&job.goal));
                    computed_prop = Some(Arc::clone(&p));
                    p
                }
            };
            prop.implied_by_sat(ctx.premise_props, ctx.universe)
        }
    };
    JobResult {
        implied,
        procedure: job.procedure,
        elapsed: start.elapsed(),
        computed_lattice,
        computed_prop,
    }
}

/// Decides a whole batch, fanning out across the rayon pool.  Results are
/// index-aligned with `jobs`.
pub fn decide_many(ctx: &DecisionContext<'_>, jobs: &[Job]) -> Vec<JobResult> {
    jobs.par_iter().map(|job| decide_one(ctx, job)).collect()
}

/// Materializes `L(X, 𝒴)` of a goal as a shared slice.
pub fn goal_lattice(universe: &Universe, goal: &DiffConstraint) -> Arc<[AttrSet]> {
    lattice::lattice_decomposition(universe, goal.lhs, &goal.rhs).into()
}

/// Theorem 3.5 over a materialized goal lattice: `C ⊨ goal` iff every member
/// of `L(goal)` lies in some premise's lattice.
fn covered_by_premises(goal_lattice: &[AttrSet], premises: &[DiffConstraint]) -> bool {
    goal_lattice
        .iter()
        .all(|&u| premises.iter().any(|p| p.lattice_contains(u)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffcon::procedure;

    fn parse(u: &Universe, texts: &[&str]) -> Vec<DiffConstraint> {
        texts
            .iter()
            .map(|t| DiffConstraint::parse(t, u).unwrap())
            .collect()
    }

    fn ctx_props(premises: &[DiffConstraint]) -> Vec<ImplicationConstraint> {
        premises
            .iter()
            .map(prop_bridge::to_implication_constraint)
            .collect()
    }

    #[test]
    fn every_procedure_agrees_with_the_reference() {
        let u = Universe::of_size(5);
        let premises = parse(&u, &["A -> {B}", "B -> {C, DE}", "AC -> {D}"]);
        let props = ctx_props(&premises);
        let ctx = DecisionContext {
            universe: &u,
            premises: &premises,
            premise_props: &props,
            premise_fds: None,
        };
        let goals = parse(
            &u,
            &["A -> {C, DE}", "C -> {A}", "AB -> {C, DE}", "E -> {A}"],
        );
        for goal in &goals {
            let expected = implication::implies(&u, &premises, goal);
            for kind in [
                ProcedureKind::Lattice,
                ProcedureKind::Semantic,
                ProcedureKind::Sat,
            ] {
                let job = Job {
                    goal: goal.clone(),
                    procedure: kind,
                    cached_lattice: None,
                    cached_prop: None,
                };
                let r = decide_one(&ctx, &job);
                assert_eq!(r.implied, expected, "{kind} wrong on {}", goal.format(&u));
            }
        }
    }

    #[test]
    fn cached_and_uncached_lattice_paths_agree() {
        let u = Universe::of_size(5);
        let premises = parse(&u, &["A -> {B}", "B -> {C}"]);
        let props = ctx_props(&premises);
        let ctx = DecisionContext {
            universe: &u,
            premises: &premises,
            premise_props: &props,
            premise_fds: None,
        };
        let goal = DiffConstraint::parse("A -> {C}", &u).unwrap();
        let cold = decide_one(
            &ctx,
            &Job {
                goal: goal.clone(),
                procedure: ProcedureKind::Lattice,
                cached_lattice: None,
                cached_prop: None,
            },
        );
        let materialized = cold.computed_lattice.expect("cold run materializes");
        let warm = decide_one(
            &ctx,
            &Job {
                goal,
                procedure: ProcedureKind::Lattice,
                cached_lattice: Some(Arc::clone(&materialized)),
                cached_prop: None,
            },
        );
        assert!(
            warm.computed_lattice.is_none(),
            "warm run must not recompute"
        );
        assert_eq!(cold.implied, warm.implied);
    }

    #[test]
    fn fd_jobs_use_the_fragment_index() {
        let u = Universe::of_size(5);
        let premises = parse(&u, &["A -> {B}", "B -> {C}"]);
        let fds: Vec<FunctionalDependency> = premises
            .iter()
            .map(|c| diffcon::fd_fragment::to_fd(c).unwrap())
            .collect();
        let props = ctx_props(&premises);
        let ctx = DecisionContext {
            universe: &u,
            premises: &premises,
            premise_props: &props,
            premise_fds: Some(&fds),
        };
        for (text, expected) in [("A -> {C}", true), ("C -> {A}", false)] {
            let goal = DiffConstraint::parse(text, &u).unwrap();
            let r = decide_one(
                &ctx,
                &Job {
                    goal,
                    procedure: ProcedureKind::FdFragment,
                    cached_lattice: None,
                    cached_prop: None,
                },
            );
            assert_eq!(r.implied, expected, "wrong on {text}");
        }
    }

    #[test]
    fn batches_preserve_order_and_agree_with_serial() {
        let u = Universe::of_size(6);
        let premises = parse(&u, &["A -> {B}", "BC -> {D, EF}", "D -> {E}"]);
        let props = ctx_props(&premises);
        let ctx = DecisionContext {
            universe: &u,
            premises: &premises,
            premise_props: &props,
            premise_fds: None,
        };
        let mut gen = diffcon::random::ConstraintGenerator::new(11, &u);
        let shape = diffcon::random::ConstraintShape::default();
        let goals = gen.constraint_set(64, &shape);
        let jobs: Vec<Job> = goals
            .iter()
            .map(|g| Job {
                goal: g.clone(),
                procedure: ProcedureKind::Lattice,
                cached_lattice: None,
                cached_prop: None,
            })
            .collect();
        let results = decide_many(&ctx, &jobs);
        assert_eq!(results.len(), goals.len());
        for (goal, result) in goals.iter().zip(&results) {
            assert_eq!(
                result.implied,
                implication::implies(&u, &premises, goal),
                "batch wrong on {}",
                goal.format(&u)
            );
        }
    }

    #[test]
    fn procedure_module_and_batch_agree_on_semantic() {
        let u = Universe::of_size(4);
        let premises = parse(&u, &["A -> {B, CD}"]);
        let props = ctx_props(&premises);
        let ctx = DecisionContext {
            universe: &u,
            premises: &premises,
            premise_props: &props,
            premise_fds: None,
        };
        let goal = DiffConstraint::parse("AC -> {B, CD}", &u).unwrap();
        let r = decide_one(
            &ctx,
            &Job {
                goal: goal.clone(),
                procedure: ProcedureKind::Semantic,
                cached_lattice: None,
                cached_prop: None,
            },
        );
        assert_eq!(
            r.implied,
            procedure::decide(ProcedureKind::Semantic, &u, &premises, &goal)
        );
    }
}
