//! Non-derivable itemsets (Calders & Goethals), the deduction-rule companion to
//! the disjunction-free representation of Section 6.1.1.
//!
//! For an itemset `I` and any subset `X ⊆ I`, inclusion–exclusion over the
//! supports of the sets between `X` and `I` yields a *deduction rule*
//!
//! ```text
//! σ(I) ≤ Σ_{X ⊆ J ⊂ I} (−1)^{|I∖J|+1} σ(J)     when |I ∖ X| is odd,
//! σ(I) ≥ Σ_{X ⊆ J ⊂ I} (−1)^{|I∖J|+1} σ(J)     when |I ∖ X| is even.
//! ```
//!
//! Taking the tightest bounds over all `X` gives an interval `[lo(I), hi(I)]`
//! guaranteed to contain `σ(I)`.  An itemset whose interval is a single point
//! is *derivable*: its support follows from the supports of its proper subsets
//! without counting — the same spirit as the disjunctive rules of the paper
//! (indeed a satisfied disjunctive rule forces one of these bounds to be
//! tight).  The *non-derivable itemsets* (NDI) therefore form yet another
//! concise representation; this module implements the bounds, the derivability
//! test and the NDI collection so the experiments can compare it with the
//! `FDFree`/`Bd⁻` representation.

use crate::basket::BasketDb;
use setlat::{powerset, AttrSet};
use std::collections::HashMap;

/// The deduction interval `[lower, upper]` for the support of an itemset,
/// computed from the supports of its proper subsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupportBounds {
    /// The greatest lower bound obtained from the even-difference rules.
    pub lower: i64,
    /// The least upper bound obtained from the odd-difference rules.
    pub upper: i64,
}

impl SupportBounds {
    /// Returns `true` iff the interval pins the support to a single value.
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }

    /// Width of the interval (`upper − lower`).
    pub fn width(&self) -> i64 {
        self.upper - self.lower
    }
}

/// Computes the deduction bounds of `itemset` given a support oracle for its
/// proper subsets.
///
/// `support_of` must return the exact support of every proper subset of
/// `itemset`; the empty itemset's support (the database size) is included.
///
/// # Panics
/// Panics if `itemset` is empty (the bounds are defined from proper subsets).
pub fn deduction_bounds_with<F: FnMut(AttrSet) -> usize>(
    itemset: AttrSet,
    mut support_of: F,
) -> SupportBounds {
    assert!(
        !itemset.is_empty(),
        "deduction bounds are defined for nonempty itemsets"
    );
    let mut lower = i64::MIN;
    let mut upper = i64::MAX;
    // One rule per subset X ⊆ I (X ≠ I).
    for x in powerset::proper_subsets(itemset) {
        let missing = itemset.difference(x).len();
        // Σ_{X ⊆ J ⊂ I} (−1)^{|I∖J|+1} σ(J)
        let mut bound: i64 = 0;
        for j in powerset::interval(x, itemset) {
            if j == itemset {
                continue;
            }
            let sign = if (itemset.difference(j).len() + 1).is_multiple_of(2) {
                1i64
            } else {
                -1i64
            };
            bound += sign * support_of(j) as i64;
        }
        if missing % 2 == 1 {
            upper = upper.min(bound);
        } else {
            lower = lower.max(bound);
        }
    }
    // Supports are nonnegative, and every itemset's support is bounded by
    // the support of any of its subsets.  The lower clamp is load-bearing in
    // the degenerate single-rule cases (a singleton's only rule is an upper
    // bound, leaving `lower` at i64::MIN).  The upper clamp is provably
    // redundant — the X = I∖{i} rules above are exactly the monotonicity
    // bounds — and stands purely as defense against future edits to the
    // rule loop; it costs |I| extra oracle calls against the loop's ~3^|I|.
    lower = lower.max(0);
    for i in itemset.iter() {
        upper = upper.min(support_of(itemset.without(i)) as i64);
    }
    SupportBounds { lower, upper }
}

/// Computes the deduction bounds of `itemset` directly against a database.
pub fn deduction_bounds(db: &BasketDb, itemset: AttrSet) -> SupportBounds {
    deduction_bounds_with(itemset, |j| db.support(j))
}

/// Returns `true` iff the support of `itemset` is derivable from its proper
/// subsets' supports (the deduction interval is a single point).
pub fn is_derivable(db: &BasketDb, itemset: AttrSet) -> bool {
    deduction_bounds(db, itemset).is_exact()
}

/// The non-derivable-itemset representation at threshold `kappa`: every
/// frequent itemset that is *not* derivable, stored with its support.  The
/// empty itemset is always included (its support, `|B|`, cannot be deduced from
/// anything).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NdiRepresentation {
    /// The support threshold.
    pub kappa: usize,
    /// Frequent non-derivable itemsets with their supports.
    pub itemsets: HashMap<AttrSet, usize>,
}

impl NdiRepresentation {
    /// Builds the representation by exhaustive enumeration over the universe
    /// (intended for the ≤ 16-item universes used in the experiments).
    pub fn build(db: &BasketDb, kappa: usize) -> Self {
        let n = db.universe_size();
        assert!(
            n <= 20,
            "NDI enumeration over more than 20 items is infeasible"
        );
        let mut itemsets = HashMap::new();
        if db.len() >= kappa {
            itemsets.insert(AttrSet::EMPTY, db.len());
        }
        for mask in 1u64..(1u64 << n) {
            let itemset = AttrSet::from_bits(mask);
            let support = db.support(itemset);
            if support >= kappa && !is_derivable(db, itemset) {
                itemsets.insert(itemset, support);
            }
        }
        NdiRepresentation { kappa, itemsets }
    }

    /// Number of stored itemsets.
    pub fn size(&self) -> usize {
        self.itemsets.len()
    }

    /// Builds the representation levelwise, consulting `oracle` before every
    /// support count: itemsets whose interval is already a single point are
    /// *derived* instead of scanned, so a stronger oracle (e.g. the
    /// constraint-aware engine in the `diffcon-bounds` crate) evaluates
    /// strictly fewer candidate supports than exhaustive enumeration.
    ///
    /// The builder records every determined support (scanned or derived)
    /// back into the oracle in ascending-size order, so by the time an
    /// itemset is examined all of its proper subsets' supports are recorded.
    /// With [`DeductionOracle`] the result equals [`NdiRepresentation::build`]
    /// while scanning only the non-derivable itemsets.
    ///
    /// # Panics
    /// Panics if the universe exceeds 20 items (same cap as
    /// [`NdiRepresentation::build`]).
    pub fn build_pruned(
        db: &BasketDb,
        kappa: usize,
        oracle: &mut dyn BoundsOracle,
    ) -> (Self, PruneStats) {
        let n = db.universe_size();
        assert!(
            n <= 20,
            "NDI enumeration over more than 20 items is infeasible"
        );
        let mut stats = PruneStats::default();
        let mut itemsets = HashMap::new();
        if db.len() >= kappa {
            itemsets.insert(AttrSet::EMPTY, db.len());
        }
        oracle.record(AttrSet::EMPTY, db.len());
        for size in 1..=n {
            for itemset in powerset::subsets_of_size(n, size) {
                stats.considered += 1;
                let bounds = oracle.bounds(itemset);
                let support = if bounds.is_exact() {
                    stats.derived_exact += 1;
                    bounds.lower.max(0) as usize
                } else {
                    stats.support_scans += 1;
                    db.support(itemset)
                };
                oracle.record(itemset, support);
                if support >= kappa && !bounds.is_exact() {
                    itemsets.insert(itemset, support);
                }
            }
        }
        (NdiRepresentation { kappa, itemsets }, stats)
    }
}

/// Counters from a pruned NDI construction
/// ([`NdiRepresentation::build_pruned`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Nonempty itemsets examined.
    pub considered: usize,
    /// Database support scans actually performed.
    pub support_scans: usize,
    /// Itemsets whose support the oracle pinned exactly, skipping the scan.
    pub derived_exact: usize,
}

/// An interval oracle consulted by [`NdiRepresentation::build_pruned`].
///
/// `bounds` must return an interval guaranteed to contain the true support of
/// `itemset` given the supports recorded so far (the builder guarantees every
/// proper subset is recorded first); `record` informs the oracle of a support
/// the builder has determined.  Implementations range from the classic
/// deduction rules ([`DeductionOracle`]) to engines that also exploit
/// asserted differential constraints (`diffcon-bounds`).
pub trait BoundsOracle {
    /// A sound interval for the support of `itemset`.
    fn bounds(&mut self, itemset: AttrSet) -> SupportBounds;
    /// Records a determined support for later `bounds` calls.
    fn record(&mut self, itemset: AttrSet, support: usize);
}

/// The classic deduction-rule oracle: intervals from
/// [`deduction_bounds_with`] over the recorded subset supports.  Plugged into
/// [`NdiRepresentation::build_pruned`] it reproduces
/// [`NdiRepresentation::build`] exactly while scanning only the non-derivable
/// itemsets.
#[derive(Debug, Clone, Default)]
pub struct DeductionOracle {
    supports: HashMap<AttrSet, usize>,
}

impl DeductionOracle {
    /// An oracle with no recorded supports yet.
    pub fn new() -> Self {
        DeductionOracle::default()
    }

    /// The recorded support of one itemset, if determined.
    pub fn support(&self, itemset: AttrSet) -> Option<usize> {
        self.supports.get(&itemset).copied()
    }
}

impl BoundsOracle for DeductionOracle {
    fn bounds(&mut self, itemset: AttrSet) -> SupportBounds {
        let supports = &self.supports;
        deduction_bounds_with(itemset, |j| {
            *supports
                .get(&j)
                .expect("levelwise recording covers every proper subset")
        })
    }

    fn record(&mut self, itemset: AttrSet, support: usize) {
        self.supports.insert(itemset, support);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::border;
    use crate::generator;
    use setlat::Universe;

    fn sample() -> (Universe, BasketDb) {
        let u = Universe::of_size(5);
        let db = BasketDb::parse(&u, "ABC\nABD\nAB\nACD\nBCD\nABCD\nAE\nBE\nABE\nC\nAB").unwrap();
        (u, db)
    }

    #[test]
    fn bounds_contain_true_support() {
        let (u, db) = sample();
        for mask in 1u64..(1u64 << u.len()) {
            let itemset = AttrSet::from_bits(mask);
            let bounds = deduction_bounds(&db, itemset);
            let truth = db.support(itemset) as i64;
            assert!(
                bounds.lower <= truth && truth <= bounds.upper,
                "bounds {bounds:?} miss true support {truth} for {itemset:?}"
            );
        }
    }

    #[test]
    fn singleton_bounds_are_trivial() {
        // For a single item the only rule is X = ∅ (even difference? |I∖∅| = 1 odd):
        // σ(I) ≤ σ(∅); the lower bound degenerates to 0.
        let (_u, db) = sample();
        let bounds = deduction_bounds(&db, AttrSet::singleton(0));
        assert_eq!(bounds.upper, db.len() as i64);
        assert_eq!(bounds.lower, 0);
    }

    #[test]
    fn derivable_itemsets_have_exact_bounds() {
        let (u, db) = sample();
        for mask in 1u64..(1u64 << u.len()) {
            let itemset = AttrSet::from_bits(mask);
            let bounds = deduction_bounds(&db, itemset);
            if bounds.is_exact() {
                assert_eq!(bounds.lower, db.support(itemset) as i64);
                assert!(is_derivable(&db, itemset));
            } else {
                assert!(!is_derivable(&db, itemset));
                assert!(bounds.width() > 0);
            }
        }
    }

    #[test]
    fn functional_style_rule_makes_strict_supersets_derivable() {
        // If every basket containing A contains B (A ⇒ B), then for any I ⊋ {A,B}
        // the upper bound from X = I − {B} (σ(I) ≤ σ(I−{B})) meets the lower bound
        // from X = I − {B, c} for any third item c, pinning σ(I) exactly.  The
        // two-element set {A,B} itself is *not* derivable — deduction at level 2
        // only yields the interval [σ(A)+σ(B)−σ(∅), min(σ(A), σ(B))].
        let u = Universe::of_size(4);
        let db = BasketDb::parse(&u, "AB\nABC\nABD\nB\nC\nCD\nABCD").unwrap();
        assert_eq!(
            db.support(u.parse_set("A").unwrap()),
            db.support(u.parse_set("AB").unwrap())
        );
        for extra in ["C", "D", "CD"] {
            let itemset = u.parse_set(&format!("AB{extra}")).unwrap();
            assert!(
                is_derivable(&db, itemset),
                "itemset AB∪{extra:?} should be derivable from A ⇒ B"
            );
        }
        // Level-2 interval is the classical inclusion–exclusion sandwich.
        let bounds = deduction_bounds(&db, u.parse_set("AB").unwrap());
        assert_eq!(bounds.lower, 4 + 5 - 7);
        assert_eq!(bounds.upper, 4);
        assert!(!is_derivable(&db, u.parse_set("AB").unwrap()));
    }

    #[test]
    fn ndi_representation_is_a_subset_of_the_frequent_collection() {
        let (_u, db) = sample();
        for kappa in [1usize, 2, 3, 5] {
            let ndi = NdiRepresentation::build(&db, kappa);
            let frequent = border::count_frequent(&db, kappa);
            assert!(ndi.size() <= frequent);
            for (&itemset, &support) in &ndi.itemsets {
                assert_eq!(support, db.support(itemset));
                assert!(support >= kappa);
            }
        }
    }

    #[test]
    fn ndi_is_small_on_correlated_data() {
        // Quest-style data has heavy structure, so most frequent itemsets are
        // derivable and the NDI collection is much smaller.
        let db = generator::quest_like(
            3,
            &generator::QuestConfig {
                num_items: 8,
                num_baskets: 120,
                ..generator::QuestConfig::default()
            },
        );
        let kappa = 12;
        let ndi = NdiRepresentation::build(&db, kappa);
        let frequent = border::count_frequent(&db, kappa);
        assert!(
            ndi.size() * 2 < frequent.max(1),
            "expected NDI ({}) to be well under half of the frequent collection ({frequent})",
            ndi.size()
        );
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_itemset_rejected() {
        let (_u, db) = sample();
        let _ = deduction_bounds(&db, AttrSet::EMPTY);
    }

    #[test]
    fn degenerate_single_rule_cases_are_clamped() {
        // A singleton itemset has exactly one rule (X = ∅, odd), so before
        // clamping the lower bound degenerates to i64::MIN; the defensive
        // clamps must leave [0, σ(∅)] — and stay sound — even on extreme
        // databases.
        let u = Universe::of_size(3);
        // Empty database: every bound collapses to [0, 0].
        let empty = BasketDb::new(3);
        for mask in 1u64..8 {
            let bounds = deduction_bounds(&empty, AttrSet::from_bits(mask));
            assert_eq!((bounds.lower, bounds.upper), (0, 0));
        }
        // A database where one item never occurs: the A-column rules push
        // the raw two-element lower bound below zero (σ(A)+σ(C)−σ(∅) = −2).
        let db = BasketDb::parse(&u, "B\nB\nC\nBC").unwrap();
        let a = u.parse_set("A").unwrap();
        let bounds = deduction_bounds(&db, a);
        assert_eq!(bounds.lower, 0);
        assert_eq!(bounds.upper, db.len() as i64);
        let ac = u.parse_set("AC").unwrap();
        let bounds = deduction_bounds(&db, ac);
        assert_eq!(bounds.lower, 0, "raw inclusion–exclusion goes negative");
        // Monotonicity clamp: never above the scarcer immediate subset.
        assert_eq!(bounds.upper, db.support(a) as i64);
        assert_eq!(bounds.upper, 0);
    }

    #[test]
    fn upper_bound_never_exceeds_immediate_subsets() {
        let (u, db) = sample();
        for mask in 1u64..(1u64 << u.len()) {
            let itemset = AttrSet::from_bits(mask);
            let bounds = deduction_bounds(&db, itemset);
            for i in itemset.iter() {
                assert!(
                    bounds.upper <= db.support(itemset.without(i)) as i64,
                    "upper bound of {itemset:?} exceeds subset support"
                );
            }
            assert!(bounds.lower >= 0);
        }
    }

    #[test]
    fn pruned_build_with_deduction_oracle_matches_classic() {
        let (_u, db) = sample();
        for kappa in [1usize, 2, 3, 5] {
            let classic = NdiRepresentation::build(&db, kappa);
            let mut oracle = DeductionOracle::new();
            let (pruned, stats) = NdiRepresentation::build_pruned(&db, kappa, &mut oracle);
            assert_eq!(pruned, classic, "pruned NDI differs at κ = {kappa}");
            assert_eq!(stats.considered, (1 << db.universe_size()) - 1);
            assert_eq!(stats.support_scans + stats.derived_exact, stats.considered);
            // The oracle's recorded supports are the true ones (derived
            // supports included — derivation is sound).
            for mask in 0u64..(1u64 << db.universe_size()) {
                let itemset = AttrSet::from_bits(mask);
                assert_eq!(oracle.support(itemset), Some(db.support(itemset)));
            }
        }
    }

    #[test]
    fn pruned_build_scans_strictly_fewer_on_structured_data() {
        // The A ⇒ B database from `functional_style_rule…`: every itemset
        // strictly above {A,B} is derivable, so the pruned build must skip
        // those scans.
        let u = Universe::of_size(4);
        let db = BasketDb::parse(&u, "AB\nABC\nABD\nB\nC\nCD\nABCD").unwrap();
        let mut oracle = DeductionOracle::new();
        let (pruned, stats) = NdiRepresentation::build_pruned(&db, 1, &mut oracle);
        assert_eq!(pruned, NdiRepresentation::build(&db, 1));
        assert!(
            stats.support_scans < stats.considered,
            "expected at least one derived itemset ({stats:?})"
        );
        assert!(stats.derived_exact >= 4, "AB∪extra sets are derivable");
    }
}
