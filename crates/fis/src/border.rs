//! Positive and negative borders of the frequent itemsets.
//!
//! The paper recalls (Section 6.1.1) that the Apriori algorithm effectively
//! computes the *negative border* — the minimal infrequent itemsets — which is
//! a concise representation of the frequency status of every itemset: a set is
//! infrequent iff it contains a negative-border element.  Dually, the *positive
//! border* (the maximal frequent itemsets) represents the same information from
//! above.  Both are computed here from a database and threshold, and helpers
//! decide frequency status from either representation so the experiments can
//! compare representation sizes and deduction power.

use crate::basket::BasketDb;
use crate::vertical::VerticalIndex;
use setlat::AttrSet;

/// The positive border: the maximal frequent itemsets of `db` at threshold `kappa`.
///
/// Exhaustive over the universe (`O(2^n)` support queries, each an
/// intersection-speed [`VerticalIndex`] probe with the frequency statuses
/// memoized so the maximality checks re-read them for free); intended for
/// the moderate universes used in the experiments.
pub fn positive_border(db: &BasketDb, kappa: usize) -> Vec<AttrSet> {
    let n = db.universe_size();
    let frequent_mask = frequency_bitmap(db, kappa);
    let mut border: Vec<AttrSet> = Vec::new();
    for mask in 0u64..(1u64 << n) {
        if !frequent_mask[mask as usize] {
            continue;
        }
        let x = AttrSet::from_bits(mask);
        let maximal = (0..n)
            .filter(|&i| !x.contains(i))
            .all(|i| !frequent_mask[x.with(i).bits() as usize]);
        if maximal {
            border.push(x);
        }
    }
    border
}

/// The negative border: the minimal infrequent itemsets of `db` at threshold `kappa`.
pub fn negative_border(db: &BasketDb, kappa: usize) -> Vec<AttrSet> {
    let n = db.universe_size();
    let frequent_mask = frequency_bitmap(db, kappa);
    let mut border: Vec<AttrSet> = Vec::new();
    for mask in 0u64..(1u64 << n) {
        if frequent_mask[mask as usize] {
            continue;
        }
        let x = AttrSet::from_bits(mask);
        let minimal = x
            .iter()
            .all(|i| frequent_mask[x.without(i).bits() as usize]);
        if minimal {
            border.push(x);
        }
    }
    border
}

/// One frequency bit per itemset mask, counted through a vertical index
/// built once per call.
fn frequency_bitmap(db: &BasketDb, kappa: usize) -> Vec<bool> {
    let n = db.universe_size();
    let index = VerticalIndex::build(db);
    (0u64..(1u64 << n))
        .map(|mask| index.support(AttrSet::from_bits(mask)) >= kappa)
        .collect()
}

/// Decides whether `x` is frequent using only a negative border: `x` is
/// infrequent iff it contains some border element.
pub fn is_frequent_by_negative_border(negative_border: &[AttrSet], x: AttrSet) -> bool {
    !negative_border.iter().any(|&b| b.is_subset(x))
}

/// Decides whether `x` is frequent using only a positive border: `x` is
/// frequent iff it is contained in some border element.
pub fn is_frequent_by_positive_border(positive_border: &[AttrSet], x: AttrSet) -> bool {
    positive_border.iter().any(|&b| x.is_subset(b))
}

/// Counts the frequent itemsets at threshold `kappa` (ground truth for
/// representation-size comparisons).
pub fn count_frequent(db: &BasketDb, kappa: usize) -> usize {
    frequency_bitmap(db, kappa)
        .into_iter()
        .filter(|&f| f)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlat::Universe;

    fn sample() -> (Universe, BasketDb) {
        let u = Universe::of_size(5);
        let db = BasketDb::parse(&u, "ABC\nABD\nAB\nACD\nBCD\nABCD\nAE\nBE\nABE\nC").unwrap();
        (u, db)
    }

    #[test]
    fn borders_characterize_frequency() {
        let (u, db) = sample();
        for kappa in [1usize, 2, 3, 5] {
            let pos = positive_border(&db, kappa);
            let neg = negative_border(&db, kappa);
            for x in u.all_subsets() {
                let truth = db.support(x) >= kappa;
                assert_eq!(
                    is_frequent_by_negative_border(&neg, x),
                    truth,
                    "negative border wrong at {x:?}, kappa={kappa}"
                );
                assert_eq!(
                    is_frequent_by_positive_border(&pos, x),
                    truth,
                    "positive border wrong at {x:?}, kappa={kappa}"
                );
            }
        }
    }

    #[test]
    fn positive_border_elements_are_maximal_frequent() {
        let (u, db) = sample();
        let kappa = 2;
        for &b in &positive_border(&db, kappa) {
            assert!(db.support(b) >= kappa);
            for i in 0..u.len() {
                if !b.contains(i) {
                    assert!(db.support(b.with(i)) < kappa);
                }
            }
        }
    }

    #[test]
    fn negative_border_elements_are_minimal_infrequent() {
        let (_u, db) = sample();
        let kappa = 2;
        for &b in &negative_border(&db, kappa) {
            assert!(db.support(b) < kappa);
            for i in b.iter() {
                assert!(db.support(b.without(i)) >= kappa);
            }
        }
    }

    #[test]
    fn negative_border_matches_apriori() {
        let (_u, db) = sample();
        for kappa in [1usize, 2, 3, 4] {
            let from_apriori = crate::apriori::apriori(&db, kappa).negative_border;
            assert_eq!(negative_border(&db, kappa), from_apriori, "kappa={kappa}");
        }
    }

    #[test]
    fn count_frequent_matches_apriori() {
        let (_u, db) = sample();
        for kappa in [1usize, 2, 3] {
            assert_eq!(
                count_frequent(&db, kappa),
                crate::apriori::apriori(&db, kappa).num_frequent()
            );
        }
    }

    #[test]
    fn degenerate_thresholds() {
        let (u, db) = sample();
        // kappa = 0: everything frequent; positive border is {S}, negative empty.
        assert_eq!(positive_border(&db, 0), vec![u.full_set()]);
        assert!(negative_border(&db, 0).is_empty());
        // kappa > |B|: nothing frequent; negative border is {∅}, positive empty.
        assert!(positive_border(&db, db.len() + 1).is_empty());
        assert_eq!(negative_border(&db, db.len() + 1), vec![AttrSet::EMPTY]);
    }
}
