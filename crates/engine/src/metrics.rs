//! Process-wide serving metrics: one lock-free [`EngineMetrics`] registry
//! every pipeline, connection, cache, planner, and session publishes into,
//! rendered on demand as a Prometheus-text exposition.
//!
//! # Why a process-wide registry
//!
//! The serving stack is a tree of per-connection state — each TCP connection
//! owns a [`crate::server_state::Pipeline`], each session its own caches and
//! [`crate::planner::Planner`] — but a scrape wants the process view: total
//! requests, the latency distribution across *all* connections, cache
//! traffic across *all* sessions.  Per-session accounting already exists
//! (the `stats` verb reports it); this module is the aggregate layer.  Every
//! recording site therefore writes twice — its local accounting and the
//! global registry — and both writes are relaxed atomics, so the double
//! bookkeeping costs a few nanoseconds against query latencies measured in
//! microseconds.
//!
//! # What is recorded where
//!
//! | source                  | metrics                                          |
//! |-------------------------|--------------------------------------------------|
//! | [`crate::server_state`] | requests, parse errors, replies, waves, wave size, queue depth, deferred-query age, evaluation latency, slow queries |
//! | [`crate::net`]          | connections, bytes, frames, framing errors, idle flushes, frame-read and reply-write latency |
//! | [`crate::planner`]      | per-route decision counts and latency (implication routes and the bound ladder), trivial short-circuits |
//! | [`crate::cache`]        | per-family hit/miss/eviction/collision counters   |
//! | [`crate::session`]      | snapshot epoch publications                       |
//!
//! The exposition ([`EngineMetrics::exposition`]) renders counters and
//! gauges directly and histograms as summary families (`quantile` labels
//! plus `_sum`/`_count`); `diffcond serve --metrics-addr HOST:PORT` serves
//! it over one-shot HTTP GET via [`diffcon_obs::TextServer`].

use crate::cache::CacheStats;
use diffcon::procedure::{self, ProcedureKind};
use diffcon_bounds::DeriveRoute;
use diffcon_obs::{Counter, Exposition, Gauge, Histogram};
use std::sync::OnceLock;

/// Which engine cache family a [`crate::cache::ShardedCache`] serves, for
/// per-family attribution of the global cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheFamily {
    /// Full query answers.
    Answer,
    /// Goal lattice decompositions.
    Lattice,
    /// Propositional translations.
    Prop,
    /// Bound intervals.
    Bound,
}

impl CacheFamily {
    /// Every family, in exposition order.
    pub const ALL: [CacheFamily; 4] = [
        CacheFamily::Answer,
        CacheFamily::Lattice,
        CacheFamily::Prop,
        CacheFamily::Bound,
    ];

    /// The family's label value in the exposition.
    pub fn name(self) -> &'static str {
        match self {
            CacheFamily::Answer => "answer",
            CacheFamily::Lattice => "lattice",
            CacheFamily::Prop => "prop",
            CacheFamily::Bound => "bound",
        }
    }

    fn index(self) -> usize {
        match self {
            CacheFamily::Answer => 0,
            CacheFamily::Lattice => 1,
            CacheFamily::Prop => 2,
            CacheFamily::Bound => 3,
        }
    }
}

/// Global per-family cache traffic counters.
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// Verified cache hits.
    pub hits: Counter,
    /// Misses (including rejected collisions).
    pub misses: Counter,
    /// Entries displaced at capacity.
    pub evictions: Counter,
    /// Present-but-rejected fingerprint collisions (each one forced a
    /// recomputation).
    pub collisions: Counter,
}

impl CacheCounters {
    /// Accumulates the counter movement of one cache operation.
    pub fn absorb_delta(&self, delta: CacheStats) {
        if delta.hits > 0 {
            self.hits.add(delta.hits);
        }
        if delta.misses > 0 {
            self.misses.add(delta.misses);
        }
        if delta.evictions > 0 {
            self.evictions.add(delta.evictions);
        }
        if delta.collisions > 0 {
            self.collisions.add(delta.collisions);
        }
    }
}

/// Labels for the implication routes, indexed like
/// [`procedure::ALL_PROCEDURES`].
const ROUTE_LABELS: [&str; 4] = ["fd", "lattice", "semantic", "sat"];

/// Labels for the pipeline stage histograms, aligned with
/// [`EngineMetrics::stage_histograms`].
const STAGE_LABELS: [&str; 4] = ["frame", "queue", "plan", "reply"];

fn proc_index(kind: ProcedureKind) -> usize {
    procedure::ALL_PROCEDURES
        .iter()
        .position(|&k| k == kind)
        .expect("every ProcedureKind appears in ALL_PROCEDURES")
}

/// The process-wide metrics registry.  All fields are lock-free; recording
/// sites access them through [`EngineMetrics::global`].
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Requests entering a pipeline (well-formed or not).
    pub requests: Counter,
    /// Requests rejected by the protocol parser.
    pub parse_errors: Counter,
    /// Reply lines released to clients (silent replies excluded).
    pub replies: Counter,
    /// Deferred queries whose evaluation exceeded the slow-query threshold.
    pub slow_queries: Counter,
    /// Evaluation waves run.
    pub waves: Counter,
    /// Deferred queries per wave.
    pub wave_size: Histogram,
    /// Deferred queries currently queued (last observed).
    pub queue_depth: Gauge,
    /// Nanoseconds spent framing a request off the socket when input was
    /// already buffered (client think-time excluded).
    pub frame_ns: Histogram,
    /// Nanoseconds a deferred query waited between enqueue and evaluation.
    pub queue_ns: Histogram,
    /// Nanoseconds evaluating one deferred query.
    pub plan_ns: Histogram,
    /// Nanoseconds writing and flushing a batch of replies.
    pub reply_ns: Histogram,
    /// Connections served (completed).
    pub connections: Counter,
    /// Request bytes read off sockets (including discarded oversized lines).
    pub bytes_read: Counter,
    /// Reply bytes written to sockets.
    pub bytes_written: Counter,
    /// Well-formed request frames read.
    pub frames: Counter,
    /// Framing violations (oversized lines, invalid UTF-8).
    pub framing_errors: Counter,
    /// Idle flushes (waves forced because the read buffer ran dry).
    pub idle_flushes: Counter,
    /// Snapshot publications (every session mutation).
    pub epoch_publishes: Counter,
    /// Goals answered inline as trivial.
    pub trivial: Counter,
    /// Per-route decision latency, indexed like
    /// [`procedure::ALL_PROCEDURES`]; each histogram's count is the route's
    /// decided-query total.
    pub route_ns: [Histogram; 4],
    /// Bound-ladder decision latency: `[propagation, relaxed]`.
    pub bound_ns: [Histogram; 2],
    /// Per-family cache counters, indexed by [`CacheFamily::index`].
    caches: [CacheCounters; 4],
}

static GLOBAL: OnceLock<EngineMetrics> = OnceLock::new();

impl EngineMetrics {
    /// The process-wide registry.
    pub fn global() -> &'static EngineMetrics {
        GLOBAL.get_or_init(EngineMetrics::default)
    }

    /// The counters of one cache family.
    pub fn cache(&self, family: CacheFamily) -> &CacheCounters {
        &self.caches[family.index()]
    }

    /// The latency histogram of one implication route.
    pub fn route_latency(&self, kind: ProcedureKind) -> &Histogram {
        &self.route_ns[proc_index(kind)]
    }

    /// The latency histogram of one bound-ladder route.
    pub fn bound_latency(&self, route: DeriveRoute) -> &Histogram {
        match route {
            DeriveRoute::Propagation => &self.bound_ns[0],
            DeriveRoute::Relaxed => &self.bound_ns[1],
        }
    }

    /// The pipeline stage histograms in [`STAGE_LABELS`] order.
    fn stage_histograms(&self) -> [&Histogram; 4] {
        [
            &self.frame_ns,
            &self.queue_ns,
            &self.plan_ns,
            &self.reply_ns,
        ]
    }

    /// Renders the registry as a Prometheus-text (0.0.4) exposition.
    /// Latency summaries are in microseconds.
    pub fn exposition(&self) -> String {
        let mut exp = Exposition::new();
        exp.counter("diffcond_requests_total", &[], self.requests.get());
        exp.counter("diffcond_parse_errors_total", &[], self.parse_errors.get());
        exp.counter("diffcond_replies_total", &[], self.replies.get());
        exp.counter("diffcond_slow_queries_total", &[], self.slow_queries.get());
        exp.counter("diffcond_waves_total", &[], self.waves.get());
        exp.gauge("diffcond_queue_depth", &[], self.queue_depth.get());
        exp.summary("diffcond_wave_size", &[], &self.wave_size.snapshot(), 1.0);
        for (label, histogram) in STAGE_LABELS.iter().zip(self.stage_histograms()) {
            exp.summary(
                "diffcond_stage_latency_us",
                &[("stage", label)],
                &histogram.snapshot(),
                1e3,
            );
        }
        exp.counter("diffcond_connections_total", &[], self.connections.get());
        exp.counter(
            "diffcond_bytes_total",
            &[("direction", "read")],
            self.bytes_read.get(),
        );
        exp.counter(
            "diffcond_bytes_total",
            &[("direction", "written")],
            self.bytes_written.get(),
        );
        exp.counter("diffcond_frames_total", &[], self.frames.get());
        exp.counter(
            "diffcond_framing_errors_total",
            &[],
            self.framing_errors.get(),
        );
        exp.counter("diffcond_idle_flushes_total", &[], self.idle_flushes.get());
        exp.counter(
            "diffcond_epoch_publishes_total",
            &[],
            self.epoch_publishes.get(),
        );
        exp.counter("diffcond_trivial_queries_total", &[], self.trivial.get());
        for (label, histogram) in ROUTE_LABELS.iter().zip(self.route_ns.iter()) {
            exp.summary(
                "diffcond_route_latency_us",
                &[("route", label)],
                &histogram.snapshot(),
                1e3,
            );
        }
        for (label, histogram) in ["propagation", "relaxed"].iter().zip(self.bound_ns.iter()) {
            exp.summary(
                "diffcond_bound_latency_us",
                &[("route", label)],
                &histogram.snapshot(),
                1e3,
            );
        }
        for family in CacheFamily::ALL {
            let counters = self.cache(family);
            for (outcome, value) in [
                ("hit", counters.hits.get()),
                ("miss", counters.misses.get()),
                ("eviction", counters.evictions.get()),
                ("collision", counters.collisions.get()),
            ] {
                exp.counter(
                    "diffcond_cache_ops_total",
                    &[("cache", family.name()), ("outcome", outcome)],
                    value,
                );
            }
        }
        exp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffcon_obs::{parse_exposition, Series};

    #[test]
    fn exposition_parses_and_has_unique_series() {
        let metrics = EngineMetrics::default();
        metrics.requests.add(3);
        metrics.cache(CacheFamily::Answer).absorb_delta(CacheStats {
            hits: 2,
            misses: 1,
            evictions: 0,
            collisions: 1,
        });
        metrics.route_latency(ProcedureKind::Lattice).record(25_000);
        metrics
            .bound_latency(DeriveRoute::Propagation)
            .record(40_000);
        let text = metrics.exposition();
        let series = parse_exposition(&text).expect("exposition must parse");
        let mut keys: Vec<String> = series.iter().map(Series::key).collect();
        let total = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), total, "duplicate series in exposition");
        let requests = series
            .iter()
            .find(|s| s.name == "diffcond_requests_total")
            .unwrap();
        assert_eq!(requests.value, 3.0);
        let collision = series
            .iter()
            .find(|s| {
                s.name == "diffcond_cache_ops_total"
                    && s.labels.contains(&("outcome".into(), "collision".into()))
                    && s.labels.contains(&("cache".into(), "answer".into()))
            })
            .unwrap();
        assert_eq!(collision.value, 1.0);
        let lattice_count = series
            .iter()
            .find(|s| {
                s.name == "diffcond_route_latency_us_count"
                    && s.labels.contains(&("route".into(), "lattice".into()))
            })
            .unwrap();
        assert_eq!(lattice_count.value, 1.0);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = EngineMetrics::global() as *const EngineMetrics;
        let b = EngineMetrics::global() as *const EngineMetrics;
        assert_eq!(a, b);
    }
}
