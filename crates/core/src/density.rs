//! Density-decomposition helpers: which density variables does a constraint
//! set force to zero?
//!
//! By Definition 3.1, a set function `f` satisfies `X → 𝒴` exactly when its
//! density function `d_f` vanishes on the lattice decomposition `L(X, 𝒴)`.  A
//! whole constraint set `C` therefore zeroes `d_f` on the union
//! `L(C) = ⋃ L(X_i, 𝒴_i)`, and every question about the *values* `f` can take
//! under `C` reduces to linear reasoning over the **surviving** (alive)
//! density terms — the sets outside `L(C)`.  The `diffcon-bounds` crate builds
//! its interval-derivation engine on exactly this reduction; this module
//! exposes the decomposition primitives it needs:
//!
//! * [`zeroed_at`] — is the density variable at one set forced to zero?
//!   (`O(Σ|𝒴_i|)` bitset work per query, no enumeration);
//! * [`alive_table`] — the full alive/dead classification of all `2^{|S|}`
//!   density variables, as a mask-indexed table;
//! * [`alive_supersets`] — the surviving support of one zeta-transform row
//!   `f(X) = Σ_{X ⊆ U} d_f(U)`;
//! * [`zeroed_count`] — how many density variables the constraint set kills
//!   (the "strength" of the premise set for bound derivation).
//!
//! ```
//! use diffcon::{density, DiffConstraint};
//! use setlat::Universe;
//!
//! let u = Universe::of_size(2);
//! let c = vec![DiffConstraint::parse("A -> {B}", &u).unwrap()];
//! // L(A, {B}) = {A}: the only killed density variable is d(A)…
//! assert!(density::zeroed_at(&c, u.parse_set("A").unwrap()));
//! assert_eq!(density::zeroed_count(&u, &c), 1);
//! // …so f(A) = d(AB): one surviving term.
//! let alive = density::alive_supersets(&u, &c, u.parse_set("A").unwrap());
//! assert_eq!(alive, vec![u.parse_set("AB").unwrap()]);
//! ```

use crate::constraint::DiffConstraint;
use setlat::{powerset, AttrSet, Universe};

/// Returns `true` iff the density variable at `u_set` is forced to zero by
/// some constraint, i.e. `u_set ∈ L(C)`.
///
/// `O(Σ_i |𝒴_i|)` bitset operations; no enumeration.
#[inline]
pub fn zeroed_at(constraints: &[DiffConstraint], u_set: AttrSet) -> bool {
    constraints.iter().any(|c| c.lattice_contains(u_set))
}

/// Classifies every density variable of the universe: `table[mask]` is `true`
/// iff the variable at `AttrSet::from_bits(mask)` *survives* the constraint
/// set (lies outside `L(C)`).
///
/// `O(2^{|S|} · Σ|𝒴_i|)` time and `2^{|S|}` bytes; intended for the bounded
/// universes the bound-derivation engine enumerates (the engine's budget
/// router keeps `|S|` small on this path).
///
/// # Panics
/// Panics if the universe exceeds [`setlat::setfn::MAX_DENSE_UNIVERSE`]
/// attributes — the same cap as dense set functions, since a caller holding
/// the full table is doing dense work.
pub fn alive_table(universe: &Universe, constraints: &[DiffConstraint]) -> Vec<bool> {
    let n = universe.len();
    assert!(
        n <= setlat::setfn::MAX_DENSE_UNIVERSE,
        "alive_table supports at most {} attributes (got {n})",
        setlat::setfn::MAX_DENSE_UNIVERSE
    );
    (0..1usize << n)
        .map(|mask| !zeroed_at(constraints, AttrSet::from_bits(mask as u64)))
        .collect()
}

/// The surviving support of the zeta row at `x`: all `U ⊇ x` with `U ∉ L(C)`,
/// in increasing mask order.  These are exactly the density terms that
/// contribute to `f(x)` under the constraint set.
pub fn alive_supersets(
    universe: &Universe,
    constraints: &[DiffConstraint],
    x: AttrSet,
) -> Vec<AttrSet> {
    powerset::supersets_within(x, universe.len())
        .filter(|&u_set| !zeroed_at(constraints, u_set))
        .collect()
}

/// Counts the density variables the constraint set forces to zero,
/// `|L(C)|`, by enumeration.
pub fn zeroed_count(universe: &Universe, constraints: &[DiffConstraint]) -> usize {
    universe
        .all_subsets()
        .filter(|&u_set| zeroed_at(constraints, u_set))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlat::{lattice, Family};

    fn parse(u: &Universe, texts: &[&str]) -> Vec<DiffConstraint> {
        texts
            .iter()
            .map(|t| DiffConstraint::parse(t, u).unwrap())
            .collect()
    }

    #[test]
    fn zeroed_iff_in_some_lattice() {
        let u = Universe::of_size(4);
        let c = parse(&u, &["A -> {B}", "C -> {D, AB}"]);
        let union = lattice::lattice_union(
            &u,
            &c.iter()
                .map(|k| (k.lhs, k.rhs.clone()))
                .collect::<Vec<(AttrSet, Family)>>(),
        );
        for s in u.all_subsets() {
            assert_eq!(zeroed_at(&c, s), union.contains(&s), "mismatch at {s:?}");
        }
        assert_eq!(zeroed_count(&u, &c), union.len());
    }

    #[test]
    fn alive_table_complements_the_lattice_union() {
        let u = Universe::of_size(5);
        let c = parse(&u, &["A -> {B}", "BC -> {D}", "E -> {A, B}"]);
        let table = alive_table(&u, &c);
        assert_eq!(table.len(), 32);
        for (mask, &alive) in table.iter().enumerate() {
            assert_eq!(alive, !zeroed_at(&c, AttrSet::from_bits(mask as u64)));
        }
        assert_eq!(table.iter().filter(|&&a| !a).count(), zeroed_count(&u, &c));
    }

    #[test]
    fn alive_supersets_filters_the_zeta_row() {
        let u = Universe::of_size(3);
        let c = parse(&u, &["A -> {B}"]);
        // L(A, {B}) = {A, AC}: f(A)'s surviving terms are AB and ABC.
        let alive = alive_supersets(&u, &c, u.parse_set("A").unwrap());
        assert_eq!(
            alive,
            vec![u.parse_set("AB").unwrap(), u.parse_set("ABC").unwrap()]
        );
    }

    #[test]
    fn empty_constraint_set_kills_nothing() {
        let u = Universe::of_size(4);
        assert_eq!(zeroed_count(&u, &[]), 0);
        assert!(alive_table(&u, &[]).iter().all(|&a| a));
        assert_eq!(alive_supersets(&u, &[], AttrSet::EMPTY).len(), 1 << u.len());
    }

    #[test]
    fn trivial_constraints_kill_nothing() {
        let u = Universe::of_size(3);
        let c = parse(&u, &["AB -> {B}"]);
        assert_eq!(zeroed_count(&u, &c), 0);
    }
}
