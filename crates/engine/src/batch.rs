//! Batch evaluation: decide many goals against one frozen snapshot, in
//! parallel.
//!
//! This module is the stateless core [`crate::snapshot::Snapshot`]
//! dispatches to.  A snapshot plans one [`Job`] per goal (attaching any
//! memoized propositional translation or goal lattice from the shared
//! caches) and hands the batch to [`decide_many`], which fans the jobs out
//! with rayon.  Workers are pure: they read the shared `&Snapshot` and
//! return per-goal [`JobResult`]s carrying any freshly computed derived data
//! (goal lattices, propositional translations), which the snapshot then
//! writes back into the sharded caches.  Workers never touch a cache shard
//! themselves, so a batch's parallel section takes no locks at all.

use crate::snapshot::Snapshot;
use diffcon::procedure::ProcedureKind;
use diffcon::{implication, prop_bridge, DiffConstraint};
use diffcon_obs::profile::{self, StageTag};
use proplogic::implication::ImplicationConstraint;
use rayon::prelude::*;
use relational::fd;
use setlat::{lattice, AttrSet, Universe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Profiling tags for the implication decision routes, so a profile
/// attributes worker time to the procedure actually burning it.
static STAGE_FD: StageTag = StageTag::new("planner.fd");
static STAGE_LATTICE: StageTag = StageTag::new("planner.lattice");
static STAGE_SEMANTIC: StageTag = StageTag::new("planner.semantic");
static STAGE_SAT: StageTag = StageTag::new("planner.sat");

/// The profiling tag of one decision route.
pub fn route_stage_tag(kind: ProcedureKind) -> &'static StageTag {
    match kind {
        ProcedureKind::FdFragment => &STAGE_FD,
        ProcedureKind::Lattice => &STAGE_LATTICE,
        ProcedureKind::Semantic => &STAGE_SEMANTIC,
        ProcedureKind::Sat => &STAGE_SAT,
    }
}

/// One planned unit of work: a goal plus the procedure chosen for it and any
/// cached derived data the snapshot already holds.
pub struct Job {
    /// The goal constraint.
    pub goal: DiffConstraint,
    /// The procedure the planner selected.
    pub procedure: ProcedureKind,
    /// The goal's memoized lattice decomposition, if the caches hold it.
    pub cached_lattice: Option<Arc<[AttrSet]>>,
    /// The goal's memoized propositional translation, if the caches hold it.
    pub cached_prop: Option<Arc<ImplicationConstraint>>,
}

/// The outcome of one job.
pub struct JobResult {
    /// Whether the premises imply the goal.
    pub implied: bool,
    /// The procedure that decided it.
    pub procedure: ProcedureKind,
    /// Wall-clock time spent deciding.
    pub elapsed: Duration,
    /// A goal lattice computed by the worker (for cache write-back).
    pub computed_lattice: Option<Arc<[AttrSet]>>,
    /// A goal translation computed by the worker (for cache write-back).
    pub computed_prop: Option<Arc<ImplicationConstraint>>,
}

/// Decides a single job against the snapshot.
pub fn decide_one(snapshot: &Snapshot, job: &Job) -> JobResult {
    let start = Instant::now();
    let _route = profile::stage(route_stage_tag(job.procedure));
    let mut computed_lattice = None;
    let mut computed_prop = None;
    let implied = match job.procedure {
        ProcedureKind::FdFragment => {
            let fds = snapshot
                .premise_fds()
                .expect("planner routed to FD without a fragment index");
            let goal_fd = diffcon::fd_fragment::to_fd(&job.goal)
                .expect("planner routed a wide goal to the FD procedure");
            fd::implies(fds, &goal_fd)
        }
        ProcedureKind::Lattice => match &job.cached_lattice {
            Some(l) => covered_by_premises(l, snapshot.premises()),
            None => {
                // Enumerate L(goal) once, decide from it, and hand the
                // materialization back for the caches to memoize — repeat
                // queries then skip the 2^{|S|−|X|} superset sweep entirely.
                let l = goal_lattice(snapshot.universe(), &job.goal);
                let implied = covered_by_premises(&l, snapshot.premises());
                computed_lattice = Some(l);
                implied
            }
        },
        ProcedureKind::Semantic => {
            implication::implies_semantic(snapshot.universe(), snapshot.premises(), &job.goal)
        }
        ProcedureKind::Sat => {
            let prop = match &job.cached_prop {
                Some(p) => Arc::clone(p),
                None => {
                    let p = Arc::new(prop_bridge::to_implication_constraint(&job.goal));
                    computed_prop = Some(Arc::clone(&p));
                    p
                }
            };
            prop.implied_by_sat(snapshot.premise_props(), snapshot.universe())
        }
    };
    JobResult {
        implied,
        procedure: job.procedure,
        elapsed: start.elapsed(),
        computed_lattice,
        computed_prop,
    }
}

/// Decides a whole batch, fanning out across the rayon pool.  Results are
/// index-aligned with `jobs`.
pub fn decide_many(snapshot: &Snapshot, jobs: &[Job]) -> Vec<JobResult> {
    jobs.par_iter()
        .map(|job| decide_one(snapshot, job))
        .collect()
}

/// Materializes `L(X, 𝒴)` of a goal as a shared slice.
pub fn goal_lattice(universe: &Universe, goal: &DiffConstraint) -> Arc<[AttrSet]> {
    lattice::lattice_decomposition(universe, goal.lhs, &goal.rhs).into()
}

/// Theorem 3.5 over a materialized goal lattice: `C ⊨ goal` iff every member
/// of `L(goal)` lies in some premise's lattice.
fn covered_by_premises(goal_lattice: &[AttrSet], premises: &[DiffConstraint]) -> bool {
    goal_lattice
        .iter()
        .all(|&u| premises.iter().any(|p| p.lattice_contains(u)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use diffcon::procedure;

    fn parse(u: &Universe, texts: &[&str]) -> Vec<DiffConstraint> {
        texts
            .iter()
            .map(|t| DiffConstraint::parse(t, u).unwrap())
            .collect()
    }

    /// A snapshot frozen over the given premise texts.
    fn snapshot_of(u: &Universe, premises: &[DiffConstraint]) -> Arc<Snapshot> {
        let mut session = Session::new(u.clone());
        for p in premises {
            session.assert_constraint(p);
        }
        session.snapshot()
    }

    fn job(goal: DiffConstraint, procedure: ProcedureKind) -> Job {
        Job {
            goal,
            procedure,
            cached_lattice: None,
            cached_prop: None,
        }
    }

    #[test]
    fn every_procedure_agrees_with_the_reference() {
        let u = Universe::of_size(5);
        let premises = parse(&u, &["A -> {B}", "B -> {C, DE}", "AC -> {D}"]);
        let snapshot = snapshot_of(&u, &premises);
        let goals = parse(
            &u,
            &["A -> {C, DE}", "C -> {A}", "AB -> {C, DE}", "E -> {A}"],
        );
        for goal in &goals {
            let expected = implication::implies(&u, &premises, goal);
            for kind in [
                ProcedureKind::Lattice,
                ProcedureKind::Semantic,
                ProcedureKind::Sat,
            ] {
                let r = decide_one(&snapshot, &job(goal.clone(), kind));
                assert_eq!(r.implied, expected, "{kind} wrong on {}", goal.format(&u));
            }
        }
    }

    #[test]
    fn cached_and_uncached_lattice_paths_agree() {
        let u = Universe::of_size(5);
        let premises = parse(&u, &["A -> {B}", "B -> {C}"]);
        let snapshot = snapshot_of(&u, &premises);
        let goal = DiffConstraint::parse("A -> {C}", &u).unwrap();
        let cold = decide_one(&snapshot, &job(goal.clone(), ProcedureKind::Lattice));
        let materialized = cold.computed_lattice.expect("cold run materializes");
        let warm = decide_one(
            &snapshot,
            &Job {
                goal,
                procedure: ProcedureKind::Lattice,
                cached_lattice: Some(Arc::clone(&materialized)),
                cached_prop: None,
            },
        );
        assert!(
            warm.computed_lattice.is_none(),
            "warm run must not recompute"
        );
        assert_eq!(cold.implied, warm.implied);
    }

    #[test]
    fn fd_jobs_use_the_fragment_index() {
        let u = Universe::of_size(5);
        let premises = parse(&u, &["A -> {B}", "B -> {C}"]);
        let snapshot = snapshot_of(&u, &premises);
        assert!(snapshot.premise_fds().is_some());
        for (text, expected) in [("A -> {C}", true), ("C -> {A}", false)] {
            let goal = DiffConstraint::parse(text, &u).unwrap();
            let r = decide_one(&snapshot, &job(goal, ProcedureKind::FdFragment));
            assert_eq!(r.implied, expected, "wrong on {text}");
        }
    }

    #[test]
    fn batches_preserve_order_and_agree_with_serial() {
        let u = Universe::of_size(6);
        let premises = parse(&u, &["A -> {B}", "BC -> {D, EF}", "D -> {E}"]);
        let snapshot = snapshot_of(&u, &premises);
        let mut gen = diffcon::random::ConstraintGenerator::new(11, &u);
        let shape = diffcon::random::ConstraintShape::default();
        let goals = gen.constraint_set(64, &shape);
        let jobs: Vec<Job> = goals
            .iter()
            .map(|g| job(g.clone(), ProcedureKind::Lattice))
            .collect();
        let results = decide_many(&snapshot, &jobs);
        assert_eq!(results.len(), goals.len());
        for (goal, result) in goals.iter().zip(&results) {
            assert_eq!(
                result.implied,
                implication::implies(&u, &premises, goal),
                "batch wrong on {}",
                goal.format(&u)
            );
        }
    }

    #[test]
    fn procedure_module_and_batch_agree_on_semantic() {
        let u = Universe::of_size(4);
        let premises = parse(&u, &["A -> {B, CD}"]);
        let snapshot = snapshot_of(&u, &premises);
        let goal = DiffConstraint::parse("AC -> {B, CD}", &u).unwrap();
        let r = decide_one(&snapshot, &job(goal.clone(), ProcedureKind::Semantic));
        assert_eq!(
            r.implied,
            procedure::decide(ProcedureKind::Semantic, &u, &premises, &goal)
        );
    }
}
