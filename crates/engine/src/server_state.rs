//! Multi-session server state: the session registry behind the `session`
//! protocol verbs, and the deferred-query machinery that lets `diffcond
//! --threads N` execute interleaved requests from many sessions concurrently
//! against their snapshots.
//!
//! # Registry
//!
//! A [`SessionRegistry`] holds numbered slots, each optionally containing a
//! live [`Session`] (a slot is empty until its first `universe` request).
//! Exactly one slot is *current*; the classic single-session verbs operate
//! on it.  The registry maintains the invariant that a current slot always
//! exists — closing the last slot immediately opens a fresh empty one — so
//! a server never has to special-case "no slot".
//!
//! # Deferred queries and the pipeline
//!
//! Query verbs (`implies`, `batch`, `bound`, `witness`, `derive`) are pure
//! reads of a session snapshot.  [`crate::protocol::Server::begin`] therefore
//! returns them as [`DeferredQuery`] values — the parsed query plus the
//! `Arc<Snapshot>` of its target session *at its position in the request
//! order* — instead of answering inline.  Because the snapshot is captured
//! at scan time, later mutations (even to the same session) cannot change a
//! deferred answer: evaluating it on any thread, at any later moment, yields
//! exactly what serial execution would have yielded.  That is what makes the
//! reordering safe without locks.
//!
//! [`Pipeline`] drives this: it scans request lines serially through the
//! server (mutations apply immediately and publish fresh snapshots), queues
//! deferred queries, evaluates them in waves on a rayon pool, and releases
//! replies strictly in input order.  `stats` and `quit` flush the pending
//! wave first so their view includes all previously issued queries.
//!
//! **Batching contract:** replies after the first pending query are
//! withheld until a wave boundary — [`Pipeline::DEFAULT_WAVE`] pending
//! queries, a `stats`/`quit` line, or [`Pipeline::finish`] at end of
//! input.  The pipeline therefore suits *piped* workloads, where the whole
//! request stream is available; a strict request/response client that
//! waits for each reply before sending the next line would wait forever
//! (use the serial server for interactive traffic — `diffcond` without
//! `--threads` — or interleave a `stats` probe to force a flush).  The TCP
//! front-end ([`crate::net`]) sidesteps the contract by flushing whenever
//! its input buffer runs dry ([`Pipeline::pending`] + [`Pipeline::finish`]),
//! so socket clients may be strict or pipelined at will.

use crate::metrics::{EngineMetrics, FlightRecord};
use crate::protocol::{self, Reply};
use crate::session::{Session, SessionConfig};
use crate::snapshot::Snapshot;
use diffcon::DiffConstraint;
use diffcon_discover::MinerConfig;
use diffcon_obs::profile::{self, StageTag};
use rayon::prelude::*;
use setlat::AttrSet;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Profiling tag for the serial request-scan stage (parse + begin).
static STAGE_SCAN: StageTag = StageTag::new("pipeline.scan");
/// Profiling tag for deferred-query evaluation inside a wave.
static STAGE_WAVE: StageTag = StageTag::new("pipeline.wave");

/// One registry slot: a numbered home for at most one live session.
#[derive(Debug, Default)]
struct Slot {
    session: Option<Session>,
}

/// Numbered session slots with one current slot.
#[derive(Debug)]
pub struct SessionRegistry {
    slots: BTreeMap<u64, Slot>,
    current: u64,
    next_id: u64,
}

impl Default for SessionRegistry {
    fn default() -> Self {
        SessionRegistry::new()
    }
}

impl SessionRegistry {
    /// A registry with one empty slot (id 0), current.
    pub fn new() -> Self {
        let mut slots = BTreeMap::new();
        slots.insert(0, Slot::default());
        SessionRegistry {
            slots,
            current: 0,
            next_id: 1,
        }
    }

    /// The id of the current slot.
    pub fn current_id(&self) -> u64 {
        self.current
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// A registry always holds at least one slot.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The current slot's session, if a `universe` request has opened one.
    pub fn session(&self) -> Option<&Session> {
        self.slots
            .get(&self.current)
            .and_then(|slot| slot.session.as_ref())
    }

    /// Mutable access to the current slot's session.
    pub fn session_mut(&mut self) -> Option<&mut Session> {
        self.slots
            .get_mut(&self.current)
            .and_then(|slot| slot.session.as_mut())
    }

    /// Installs (or replaces) the current slot's session.
    pub fn install(&mut self, session: Session) {
        self.slots
            .get_mut(&self.current)
            .expect("a current slot always exists")
            .session = Some(session);
    }

    /// Opens a fresh empty slot and makes it current; returns its id.
    pub fn open(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.slots.insert(id, Slot::default());
        self.current = id;
        id
    }

    /// Switches the current slot.  Returns `false` when the id is unknown.
    pub fn switch(&mut self, id: u64) -> bool {
        if self.slots.contains_key(&id) {
            self.current = id;
            true
        } else {
            false
        }
    }

    /// Closes a slot, dropping its session.  Returns `false` when the id is
    /// unknown.  If the current slot is closed, the lowest remaining id
    /// becomes current; closing the last slot opens a fresh empty one (ids
    /// are never reused).
    pub fn close(&mut self, id: u64) -> bool {
        if self.slots.remove(&id).is_none() {
            return false;
        }
        if self.slots.is_empty() {
            let fresh = self.next_id;
            self.next_id += 1;
            self.slots.insert(fresh, Slot::default());
        }
        if !self.slots.contains_key(&self.current) {
            self.current = *self
                .slots
                .keys()
                .next()
                .expect("registry is never left empty");
        }
        true
    }

    /// The slots in id order, with each slot's session if open.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Option<&Session>)> {
        self.slots
            .iter()
            .map(|(&id, slot)| (id, slot.session.as_ref()))
    }
}

/// The query of a deferred (read-only) request.
#[derive(Debug, Clone)]
pub(crate) enum QueryKind {
    Implies(DiffConstraint),
    Batch(Vec<DiffConstraint>),
    Bound(AttrSet),
    Witness(DiffConstraint),
    Derive(DiffConstraint),
    /// `explain` is `implies` with trace marks: same caches, same planner
    /// accounting, plus a per-stage latency decomposition in the reply.
    Explain(DiffConstraint),
    /// `mine` reads only the frozen dataset handle, so the heaviest verb
    /// the server accepts runs on a worker instead of stalling the scan.
    Mine(MinerConfig),
    /// `analyze` is a pure read of the frozen premise/known state (the
    /// premise-core static analysis), deferred like any other query.
    Analyze,
}

impl QueryKind {
    /// The wire verb, as the flight recorder names it.
    pub(crate) fn verb_name(&self) -> &'static str {
        match self {
            QueryKind::Implies(_) => "implies",
            QueryKind::Batch(_) => "batch",
            QueryKind::Bound(_) => "bound",
            QueryKind::Witness(_) => "witness",
            QueryKind::Derive(_) => "derive",
            QueryKind::Explain(_) => "explain",
            QueryKind::Mine(_) => "mine",
            QueryKind::Analyze => "analyze",
        }
    }
}

/// Per-query telemetry the reply formatters don't carry: where the planner
/// routed the query, whether a cache answered, and the decision time —
/// the flight record's route/cache/decide fields.
struct QueryMeta {
    route: &'static str,
    cached: bool,
    decide_ns: u64,
}

/// A read-only request captured with the snapshot of its target session at
/// its position in the request order.  [`DeferredQuery::run`] evaluates it
/// on the calling thread; any thread, any time — the answer is fixed by the
/// captured snapshot.
#[derive(Debug)]
pub struct DeferredQuery {
    snapshot: Arc<Snapshot>,
    kind: QueryKind,
    traced: bool,
    queued: Instant,
    /// Flight-record identity: the request's trace id and the connection
    /// and session slot it arrived on (zero until
    /// [`DeferredQuery::with_origin`]).
    trace: u64,
    conn: u64,
    slot: u64,
    /// Flight-record transport stage: request bytes on the wire and frame
    /// read time (zero for in-process drivers, set by
    /// [`DeferredQuery::with_io`]).
    bytes_in: u64,
    frame_ns: u64,
}

impl DeferredQuery {
    pub(crate) fn new(snapshot: Arc<Snapshot>, kind: QueryKind) -> Self {
        DeferredQuery {
            snapshot,
            kind,
            traced: false,
            queued: Instant::now(),
            trace: 0,
            conn: 0,
            slot: 0,
            bytes_in: 0,
            frame_ns: 0,
        }
    }

    /// Marks the query as issued under `trace on`: its reply line gains an
    /// ` epoch=<n>` suffix naming the snapshot that answered.
    pub(crate) fn traced(mut self, traced: bool) -> Self {
        self.traced = traced;
        self
    }

    /// Stamps the flight-record identity fields: the minted trace id plus
    /// the connection and session slot the request arrived on.
    pub(crate) fn with_origin(mut self, trace: u64, conn: u64, slot: u64) -> Self {
        self.trace = trace;
        self.conn = conn;
        self.slot = slot;
        self
    }

    /// Stamps the flight-record transport fields: request bytes on the wire
    /// and the frame read time.
    fn with_io(mut self, bytes_in: u64, frame_ns: u64) -> Self {
        self.bytes_in = bytes_in;
        self.frame_ns = frame_ns;
        self
    }

    /// The snapshot this query will answer against.
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.snapshot
    }

    /// Evaluates the query against its captured snapshot, producing the same
    /// reply line the serial server would have produced at the capture
    /// point (up to the non-semantic `cached=`/`us=` telemetry fields).
    pub fn run(&self) -> Reply {
        self.run_timed().0
    }

    /// [`DeferredQuery::run`] plus the evaluation wall-clock, recording
    /// queue age and evaluation latency in the process-wide
    /// [`EngineMetrics`] registry (`queue`/`plan` stages), charging the
    /// target session's cost counters, and attaching the request's flight
    /// record to the reply (committed when the transport writes it, or on
    /// drop for in-process drivers).
    pub(crate) fn run_timed(&self) -> (Reply, Duration) {
        let metrics = EngineMetrics::global();
        let queue = self.queued.elapsed();
        metrics.queue_ns.record_duration(queue);
        let start = Instant::now();
        let (mut reply, meta) = self.answer(queue);
        let eval = start.elapsed();
        metrics.plan_ns.record_duration(eval);
        let costs = self.snapshot.costs();
        costs.queries.inc();
        costs.queue_ns.add(queue.as_nanos() as u64);
        costs.decide_ns.add(meta.decide_ns);
        // The reply stage is filled in by the transport at write time; the
        // byte count here is the in-process answer (text plus newline), so
        // a record committed without crossing a wire is still accurate.
        let bytes_out = if reply.text.is_empty() {
            0
        } else {
            reply.text.len() as u64 + 1
        };
        reply.attach_flight(FlightRecord {
            trace: self.trace,
            conn: self.conn,
            slot: self.slot,
            verb: self.kind.verb_name(),
            route: meta.route,
            cached: meta.cached,
            bytes_in: self.bytes_in,
            bytes_out,
            frame_ns: self.frame_ns,
            queue_ns: queue.as_nanos() as u64,
            plan_ns: eval.as_nanos() as u64,
            decide_ns: meta.decide_ns,
            reply_ns: 0,
            epoch: self.snapshot.epoch(),
        });
        (reply, eval)
    }

    fn answer(&self, queue: Duration) -> (Reply, QueryMeta) {
        let scan = |route, elapsed: Duration| QueryMeta {
            route,
            cached: false,
            decide_ns: elapsed.as_nanos() as u64,
        };
        let (mut reply, meta) = match &self.kind {
            QueryKind::Implies(goal) => {
                let outcome = self.snapshot.implies(goal);
                let meta = QueryMeta {
                    route: outcome.route_name(),
                    cached: outcome.cached,
                    decide_ns: outcome.elapsed.as_nanos() as u64,
                };
                (protocol::implies_reply(&outcome), meta)
            }
            QueryKind::Batch(goals) => {
                let outcomes = self.snapshot.implies_batch(goals);
                let decided: Duration = outcomes.iter().map(|o| o.elapsed).sum();
                (protocol::batch_reply(&outcomes), scan("batch", decided))
            }
            QueryKind::Bound(set) => {
                let outcome = self.snapshot.bound(*set);
                let meta = match &outcome {
                    Ok(b) => QueryMeta {
                        route: b.route_name(),
                        cached: b.cached,
                        decide_ns: b.elapsed.as_nanos() as u64,
                    },
                    Err(_) => scan("bound", Duration::ZERO),
                };
                (protocol::bound_reply(outcome), meta)
            }
            QueryKind::Witness(goal) => (
                protocol::witness_reply(
                    self.snapshot.universe(),
                    self.snapshot.refutation_witness(goal),
                ),
                scan("witness", Duration::ZERO),
            ),
            QueryKind::Derive(goal) => (
                protocol::derive_reply(self.snapshot.derive(goal)),
                scan("derive", Duration::ZERO),
            ),
            QueryKind::Explain(goal) => {
                let outcome = self.snapshot.explain(goal);
                let meta = QueryMeta {
                    route: outcome.outcome.route_name(),
                    cached: outcome.outcome.cached,
                    decide_ns: outcome.decide.as_nanos() as u64,
                };
                (protocol::explain_reply(outcome, self.trace, queue), meta)
            }
            QueryKind::Mine(config) => (
                protocol::mined_reply(self.snapshot.universe(), self.snapshot.mine_dataset(config)),
                scan("mine", Duration::ZERO),
            ),
            QueryKind::Analyze => {
                let outcome = self.snapshot.analyze();
                let elapsed = outcome.elapsed;
                (
                    protocol::analyze_reply(self.snapshot.universe(), &outcome),
                    scan("analyze", elapsed),
                )
            }
        };
        // `explain` and `analyze` already name their epoch; every other
        // traced reply gains the suffix.  The epoch is fixed by the captured
        // snapshot, so the suffix is identical under serial and pipelined
        // execution.
        if self.traced && !matches!(self.kind, QueryKind::Explain(_) | QueryKind::Analyze) {
            reply
                .text
                .push_str(&format!(" epoch={}", self.snapshot.epoch()));
        }
        (reply, meta)
    }

    /// Reconstructs the canonical request line — for the slow-query log,
    /// so the hot path never carries the raw request text around.
    pub fn describe(&self) -> String {
        let universe = self.snapshot.universe();
        let wire = |goal: &DiffConstraint| protocol::format_wire(goal, universe);
        match &self.kind {
            QueryKind::Implies(goal) => format!("implies {}", wire(goal)),
            QueryKind::Batch(goals) => {
                let texts: Vec<String> = goals.iter().map(&wire).collect();
                format!("batch {}", texts.join(" ; "))
            }
            QueryKind::Bound(set) => format!("bound {}", universe.format_set(*set)),
            QueryKind::Witness(goal) => format!("witness {}", wire(goal)),
            QueryKind::Derive(goal) => format!("derive {}", wire(goal)),
            QueryKind::Explain(goal) => format!("explain {}", wire(goal)),
            QueryKind::Mine(config) => format!("mine {} {}", config.max_lhs, config.max_rhs),
            QueryKind::Analyze => "analyze".into(),
        }
    }
}

/// One queued reply slot: already answered, or awaiting its wave.
#[derive(Debug)]
enum Queued {
    Ready(Reply),
    Deferred(DeferredQuery),
}

/// Token-bucket rate limiter for the slow-query stderr log.  Slow queries
/// cluster exactly when the server is overloaded, and an unbounded stderr
/// stream (a synchronous write per line) amplifies the overload it reports;
/// the bucket caps the log at a short burst plus a steady trickle, and every
/// suppressed line is counted in [`EngineMetrics::slow_log_dropped`] so the
/// `stats` verb can surface how much was withheld.
#[derive(Debug)]
struct SlowLogLimiter {
    tokens: f64,
    last: Instant,
}

impl SlowLogLimiter {
    /// Lines the bucket releases back-to-back from full.
    const BURST: f64 = 8.0;
    /// Sustained lines per second once the burst is spent.
    const PER_SEC: f64 = 8.0;

    fn new() -> SlowLogLimiter {
        SlowLogLimiter {
            tokens: SlowLogLimiter::BURST,
            last: Instant::now(),
        }
    }

    fn allow(&mut self) -> bool {
        self.allow_at(Instant::now())
    }

    fn allow_at(&mut self, now: Instant) -> bool {
        let refill =
            now.saturating_duration_since(self.last).as_secs_f64() * SlowLogLimiter::PER_SEC;
        self.tokens = (self.tokens + refill).min(SlowLogLimiter::BURST);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// A concurrent request driver: serial scan, parallel query waves, in-order
/// replies.  See the module docs for the execution model.
#[derive(Debug)]
pub struct Pipeline {
    server: protocol::Server,
    pool: rayon::ThreadPool,
    queue: Vec<Queued>,
    deferred: usize,
    /// Deferred queries per wave before a flush is forced.
    max_wave: usize,
    /// Queries whose evaluation takes at least this many microseconds are
    /// reported on stderr after their wave (`None` disables the log).
    slow_query_us: Option<u64>,
    /// Rate limiter for the slow-query stderr lines.
    slow_log: SlowLogLimiter,
}

impl Pipeline {
    /// Default number of deferred queries per evaluation wave.
    pub const DEFAULT_WAVE: usize = 256;

    /// Creates a pipeline over a fresh server with `threads` workers.
    pub fn new(config: SessionConfig, threads: usize) -> Self {
        Pipeline {
            server: protocol::Server::new(config),
            pool: rayon::ThreadPoolBuilder::new()
                .num_threads(threads.max(1))
                .build()
                .expect("the rayon shim's pool build is infallible"),
            queue: Vec::new(),
            deferred: 0,
            max_wave: Pipeline::DEFAULT_WAVE,
            slow_query_us: None,
            slow_log: SlowLogLimiter::new(),
        }
    }

    /// Sets the slow-query threshold: deferred queries whose evaluation
    /// takes at least `threshold` microseconds are logged to stderr (with
    /// their reconstructed request line) after their wave completes, and
    /// counted in [`EngineMetrics::slow_queries`].  `None` disables the log.
    pub fn set_slow_query_us(&mut self, threshold: Option<u64>) {
        self.slow_query_us = threshold;
    }

    /// `stats` and `quit` observe query accounting, so the wave in flight
    /// must complete before they run for their view to match serial
    /// execution (the invariant `stats_flushes_pending_wave_before_reporting`
    /// pins).  The same holds for the other observability verbs: `session
    /// list` reports per-slot query counts, and `stats recent` / `debug`
    /// read windowed stats and the flight recorder.
    fn flushes_pending_wave(request: &protocol::Request) -> bool {
        matches!(
            request,
            protocol::Request::Stats
                | protocol::Request::StatsRecent
                | protocol::Request::DebugRecent(_)
                | protocol::Request::DebugTrace(_)
                | protocol::Request::DebugProfile(_)
                | protocol::Request::SessionList
                | protocol::Request::Quit
        )
    }

    /// The worker count of the underlying pool.
    pub fn threads(&self) -> usize {
        self.pool.current_num_threads()
    }

    /// The server being driven (the current slot's session, etc.).
    pub fn server(&self) -> &protocol::Server {
        &self.server
    }

    /// Replies queued but not yet released: ready replies waiting behind an
    /// earlier deferred query, plus the deferred queries themselves.
    ///
    /// Transports serving strict request/response clients (the TCP
    /// front-end in [`crate::net`]) use this to decide whether a
    /// [`Pipeline::finish`] flush is needed before blocking for more input:
    /// `pending() > 0` exactly when a flush would release something.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues an already-formed reply at this position in the request
    /// order and returns whatever becomes releasable.
    ///
    /// This is how a byte transport injects *framing-level* error replies
    /// (oversized lines, undecodable bytes — failures that never reach
    /// [`protocol::parse_request`]) without reordering them ahead of
    /// deferred queries from earlier request positions.
    pub fn push_reply(&mut self, reply: Reply) -> (Vec<Reply>, bool) {
        self.queue.push(Queued::Ready(reply));
        let replies = self.drain_ready();
        let quit = replies.iter().any(|r| r.quit);
        (replies, quit)
    }

    /// Feeds one request line.  Returns the replies released by this line —
    /// strictly in input order — and whether the conversation should end.
    pub fn push_line(&mut self, line: &str) -> (Vec<Reply>, bool) {
        self.push_line_io(line, line.len() as u64, 0)
    }

    /// [`Pipeline::push_line`] with transport framing telemetry: the
    /// request's size on the wire and the time spent reading its frame,
    /// recorded in the query's flight record.  In-process drivers use
    /// [`Pipeline::push_line`], which stamps the line length and a zero
    /// frame time.
    pub fn push_line_io(&mut self, line: &str, bytes_in: u64, frame_ns: u64) -> (Vec<Reply>, bool) {
        EngineMetrics::global().requests.inc();
        let scan_guard = profile::stage(&STAGE_SCAN);
        let step = match protocol::parse_request(line) {
            Ok(request) => {
                if Pipeline::flushes_pending_wave(&request) {
                    self.run_wave();
                }
                self.server.begin(request)
            }
            Err(message) => {
                EngineMetrics::global().parse_errors.inc();
                protocol::Step::Done(Reply::err(message))
            }
        };
        drop(scan_guard);
        self.push_step(step, bytes_in, frame_ns)
    }

    /// Feeds one binary-framed request (see [`protocol::binary`]): `00`
    /// line frames run through the exact text path (UTF-8 validation,
    /// parse), while the fixed-width mask verbs skip text entirely and
    /// defer into the same waves — the reply stream is identical to the
    /// textual spelling of the same requests.
    pub fn push_binary_io(
        &mut self,
        frame: &protocol::binary::BinRequest<'_>,
        bytes_in: u64,
        frame_ns: u64,
    ) -> (Vec<Reply>, bool) {
        use protocol::binary::BinRequest;
        if let BinRequest::Line(bytes) = frame {
            return match protocol::decode_request(bytes) {
                Ok(text) => self.push_line_io(text, bytes_in, frame_ns),
                Err(message) => {
                    EngineMetrics::global().framing_errors.inc();
                    self.push_reply(Reply::err(message))
                }
            };
        }
        EngineMetrics::global().requests.inc();
        let scan_guard = profile::stage(&STAGE_SCAN);
        let step = match frame {
            BinRequest::Line(_) => unreachable!("line frames are handled above"),
            BinRequest::Implies { lhs, rhs } => self.server.begin_implies_mask(*lhs, rhs.iter()),
            BinRequest::Bound { set } => self.server.begin_bound_mask(*set),
            BinRequest::Assert { lhs, rhs } => {
                protocol::Step::Done(self.server.assert_mask(*lhs, rhs.iter()))
            }
        };
        drop(scan_guard);
        self.push_step(step, bytes_in, frame_ns)
    }

    /// Queues one begun step with its transport telemetry and releases the
    /// ready prefix — the shared tail of every `push_*` entry point.
    fn push_step(
        &mut self,
        step: protocol::Step,
        bytes_in: u64,
        frame_ns: u64,
    ) -> (Vec<Reply>, bool) {
        match step {
            protocol::Step::Done(reply) => self.queue.push(Queued::Ready(reply)),
            protocol::Step::Deferred(query) => {
                self.queue
                    .push(Queued::Deferred(query.with_io(bytes_in, frame_ns)));
                self.deferred += 1;
            }
        }
        if self.deferred >= self.max_wave {
            self.run_wave();
        }
        let replies = self.drain_ready();
        let quit = replies.iter().any(|r| r.quit);
        (replies, quit)
    }

    /// Evaluates and releases everything still queued (end of input).
    pub fn finish(&mut self) -> Vec<Reply> {
        self.run_wave();
        self.drain_ready()
    }

    /// Evaluates every queued deferred query on the pool, in one parallel
    /// wave, and marks the slots ready.
    fn run_wave(&mut self) {
        if self.deferred == 0 {
            return;
        }
        let metrics = EngineMetrics::global();
        metrics.waves.inc();
        metrics.wave_size.record(self.deferred as u64);
        let targets: Vec<usize> = self
            .queue
            .iter()
            .enumerate()
            .filter_map(|(i, q)| matches!(q, Queued::Deferred(_)).then_some(i))
            .collect();
        let outcomes: Vec<(Reply, Duration)> = {
            let jobs: Vec<&DeferredQuery> = targets
                .iter()
                .map(|&i| match &self.queue[i] {
                    Queued::Deferred(d) => d,
                    Queued::Ready(_) => unreachable!("targets are deferred slots"),
                })
                .collect();
            self.pool.install(|| {
                jobs.par_iter()
                    .map(|d| {
                        let _wave = profile::stage(&STAGE_WAVE);
                        d.run_timed()
                    })
                    .collect()
            })
        };
        for (&i, (reply, eval)) in targets.iter().zip(outcomes) {
            let slow = self
                .slow_query_us
                .is_some_and(|threshold| eval.as_micros() as u64 >= threshold);
            if slow {
                if let Queued::Deferred(d) = &self.queue[i] {
                    metrics.slow_queries.inc();
                    if self.slow_log.allow() {
                        let flight = reply
                            .flight_ref()
                            .map(|record| format!(" {}", record.render()))
                            .unwrap_or_default();
                        eprintln!(
                            "diffcond: slow query us={} request=`{}`{flight}",
                            eval.as_micros(),
                            d.describe()
                        );
                    } else {
                        metrics.slow_log_dropped.inc();
                    }
                }
            }
            self.queue[i] = Queued::Ready(reply);
        }
        self.deferred = 0;
        metrics.observe_recent();
    }

    /// Removes and returns the longest ready prefix of the queue.
    fn drain_ready(&mut self) -> Vec<Reply> {
        let ready = self
            .queue
            .iter()
            .take_while(|q| matches!(q, Queued::Ready(_)))
            .count();
        let replies: Vec<Reply> = self
            .queue
            .drain(..ready)
            .map(|q| match q {
                Queued::Ready(reply) => reply,
                Queued::Deferred(_) => unreachable!("prefix is ready"),
            })
            .collect();
        let metrics = EngineMetrics::global();
        metrics.replies.add(replies.len() as u64);
        metrics.queue_depth.set(self.queue.len() as u64);
        replies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_opens_switches_and_closes() {
        let mut r = SessionRegistry::new();
        assert_eq!(r.current_id(), 0);
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
        assert!(r.session().is_none(), "slots start without a session");
        let a = r.open();
        let b = r.open();
        assert_eq!((a, b), (1, 2));
        assert_eq!(r.current_id(), 2);
        assert!(r.switch(0));
        assert!(!r.switch(99));
        assert_eq!(r.current_id(), 0);
        // Closing the current slot falls back to the lowest remaining id.
        assert!(r.close(0));
        assert_eq!(r.current_id(), 1);
        assert!(!r.close(0), "double close reports absence");
        // Closing a non-current slot leaves current alone.
        assert!(r.close(2));
        assert_eq!(r.current_id(), 1);
        // Closing the last slot opens a fresh one; ids are never reused.
        assert!(r.close(1));
        assert_eq!(r.len(), 1);
        assert_eq!(r.current_id(), 3);
    }

    #[test]
    fn push_reply_keeps_request_order_behind_deferred_queries() {
        let mut p = Pipeline::new(SessionConfig::default(), 2);
        p.push_line("universe 4");
        p.push_line("assert A->{B}");
        let (replies, _) = p.push_line("implies A->{B}");
        assert!(replies.is_empty(), "query replies wait for their wave");
        assert_eq!(p.pending(), 1);
        // A framing-level error injected now must not overtake the query.
        let (replies, quit) = p.push_reply(Reply::err("oversized"));
        assert!(replies.is_empty(), "framing error released early");
        assert!(!quit);
        assert_eq!(p.pending(), 2);
        let replies = p.finish();
        assert_eq!(replies.len(), 2);
        assert!(
            replies[0].text.starts_with("yes"),
            "got {}",
            replies[0].text
        );
        assert_eq!(replies[1].text, "err oversized");
        assert_eq!(p.pending(), 0);
    }

    /// Regression pin for the mid-wave `stats` ordering invariant: a
    /// `stats` line arriving while queries are still deferred must flush
    /// the pending wave *before* the stats snapshot is taken, so its
    /// `queries=` count includes every earlier-issued query — exactly what
    /// serial execution reports.
    #[test]
    fn stats_flushes_pending_wave_before_reporting() {
        let mut p = Pipeline::new(SessionConfig::default(), 2);
        p.push_line("universe 4");
        p.push_line("assert A->{B}");
        let (replies, _) = p.push_line("implies A->{C}");
        assert!(replies.is_empty(), "query replies wait for their wave");
        let (replies, _) = p.push_line("bound A");
        assert!(replies.is_empty());
        assert_eq!(p.pending(), 2, "two queries deferred mid-wave");
        let (replies, quit) = p.push_line("stats");
        assert!(!quit);
        assert_eq!(
            replies.len(),
            3,
            "stats releases the flushed wave plus itself"
        );
        assert!(replies[0].text.starts_with("no"), "got {}", replies[0].text);
        assert!(
            replies[1].text.starts_with("bound"),
            "got {}",
            replies[1].text
        );
        let stats = &replies[2].text;
        assert!(
            stats.starts_with("stats queries=1"),
            "stats must count the already-flushed implies query: {stats}"
        );
        assert!(
            stats.contains(" bound=1p"),
            "stats must count the already-flushed bound query: {stats}"
        );
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn slow_query_threshold_counts_slow_queries() {
        let before = crate::metrics::EngineMetrics::global().slow_queries.get();
        let mut p = Pipeline::new(SessionConfig::default(), 1);
        p.set_slow_query_us(Some(0));
        p.push_line("universe 4");
        p.push_line("implies A->{B}");
        let replies = p.finish();
        assert_eq!(replies.len(), 1);
        let after = crate::metrics::EngineMetrics::global().slow_queries.get();
        assert!(
            after > before,
            "a zero-microsecond threshold marks every query slow"
        );
    }

    #[test]
    fn registry_iterates_in_id_order() {
        let mut r = SessionRegistry::new();
        r.open();
        r.open();
        r.close(1);
        let ids: Vec<u64> = r.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn slow_log_limiter_bursts_throttles_and_refills() {
        let mut limiter = SlowLogLimiter::new();
        let t0 = Instant::now();
        let count_at = |limiter: &mut SlowLogLimiter, at: Instant| {
            (0..100).filter(|_| limiter.allow_at(at)).count() as f64
        };
        // From full, exactly the burst passes; the rest are refused.
        assert_eq!(count_at(&mut limiter, t0), SlowLogLimiter::BURST);
        // One quiet second buys the steady rate back.
        let t1 = t0 + Duration::from_secs(1);
        assert_eq!(count_at(&mut limiter, t1), SlowLogLimiter::PER_SEC);
        // A long idle stretch refills to the burst cap, never beyond.
        let t2 = t1 + Duration::from_secs(3600);
        assert_eq!(count_at(&mut limiter, t2), SlowLogLimiter::BURST);
        // Clock going backwards (monotone in practice, but saturate anyway)
        // must not mint tokens.
        assert_eq!(count_at(&mut limiter, t0), 0.0);
    }
}
